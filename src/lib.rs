//! # walk-not-wait
//!
//! Facade crate of the reproduction of *"Walk, Not Wait: Faster Sampling
//! Over Online Social Networks"* (Nazi, Zhou, Thirumuruganathan, Zhang, Das —
//! VLDB 2015).
//!
//! The workspace implements the paper's contribution — the **WALK-ESTIMATE**
//! sampler — together with every substrate it needs: a graph store and
//! generators, the restricted local-neighborhood access interface with query
//! accounting, the traditional random-walk baselines (SRW / MHRW with
//! Geweke-monitored burn-in), aggregate estimators and bias measurement, and
//! an experiment harness that regenerates every table and figure of the
//! paper's evaluation.
//!
//! This crate simply re-exports the member crates under short names so
//! examples and downstream users can depend on a single package:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `wnw-graph` | CSR graph, generators, metrics, I/O |
//! | [`access`] | `wnw-access` | restricted OSN interface, budgets, rate limits |
//! | [`catalog`] | `wnw-catalog` | CSR substrate, binary on-disk network catalogs |
//! | [`mcmc`] | `wnw-mcmc` | SRW/MHRW, convergence, rejection sampling, baselines |
//! | [`core`] | `wnw-core` | WALK-ESTIMATE (the paper's contribution) |
//! | [`runtime`] | `wnw-runtime` | persistent round-barrier worker pool (zero-spawn rounds) |
//! | [`engine`] | `wnw-engine` | concurrent, cache-sharing sampling engine |
//! | [`service`] | `wnw-service` | multi-job sampling service: scheduling, streaming, metrics |
//! | [`gateway`] | `wnw-gateway` | std-only HTTP/1.1 streaming frontend over the service |
//! | [`loadgen`] | `wnw-loadgen` | deterministic open-loop load generator with SLO scoring |
//! | [`telemetry`] | `wnw-telemetry` | quantile histograms, lifecycle tracing, Prometheus exposition |
//! | [`analytics`] | `wnw-analytics` | Lambert W, statistics, estimators, bias |
//! | [`experiments`] | `wnw-experiments` | per-figure reproduction drivers |
//!
//! ## Quickstart
//!
//! ```
//! use walk_not_wait::prelude::*;
//!
//! // A stand-in for the online social network: only `neighbors(v)` is
//! // observable, and every distinct node fetched counts as one query.
//! let graph = wnw_graph::generators::random::barabasi_albert(500, 5, 1).unwrap();
//! let osn = SimulatedOsn::new(graph);
//!
//! // WALK-ESTIMATE as a drop-in replacement for a Metropolis-Hastings walk:
//! // same (uniform) target distribution, far fewer queries per sample.
//! let mut sampler = WalkEstimateSampler::new(
//!     osn.clone(),
//!     RandomWalkKind::MetropolisHastings,
//!     WalkEstimateConfig::default(),
//!     42,
//! );
//! let run = collect_samples(&mut sampler, 20).unwrap();
//! assert_eq!(run.len(), 20);
//! println!("20 samples for {} queries", osn.query_cost());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wnw_access as access;
pub use wnw_analytics as analytics;
pub use wnw_catalog as catalog;
pub use wnw_core as core;
pub use wnw_engine as engine;
pub use wnw_experiments as experiments;
pub use wnw_gateway as gateway;
pub use wnw_graph as graph;
pub use wnw_loadgen as loadgen;
pub use wnw_mcmc as mcmc;
pub use wnw_runtime as runtime;
pub use wnw_service as service;
pub use wnw_telemetry as telemetry;

/// The most commonly used items, for `use walk_not_wait::prelude::*`.
pub mod prelude {
    pub use wnw_access::{
        CachedNetwork, MeteredNetwork, QueryBudget, SimulatedOsn, SocialNetwork, ThreadedNetwork,
    };
    pub use wnw_analytics::aggregates::{
        estimate_average, relative_error, SampleValue, WeightingScheme,
    };
    pub use wnw_catalog::{CatalogNetwork, CsrGraph, GraphSpec};
    pub use wnw_core::{
        WalkEstimateConfig, WalkEstimateSampler, WalkEstimateVariant, WalkLengthPolicy,
    };
    pub use wnw_engine::{
        Engine, EngineObserver, HistoryMode, HistoryPolicy, HistoryStore, HistoryStoreStats,
        JobReport, ReuseCorrection, RoundProgress, SampleJob, SamplerSpec,
    };
    pub use wnw_gateway::{GatewayConfig, GatewayServer};
    pub use wnw_graph::{Graph, GraphBuilder, NodeId};
    pub use wnw_mcmc::{
        collect_samples, RandomWalkKind, Sampler, ScalingFactorPolicy, TargetDistribution,
    };
    pub use wnw_runtime::{PoolStats, WorkerPool};
    pub use wnw_service::{
        AdmissionError, JobOutcome, JobRegistry, JobStatus, Priority, SampleEvent, SampleRequest,
        SamplingService, ServiceMetricsSnapshot,
    };
    pub use wnw_telemetry::{Histogram, HistogramSnapshot, TraceEvent, TraceEventKind, TraceLog};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let graph = crate::graph::generators::classic::cycle(12);
        let osn = SimulatedOsn::new(graph);
        let mut sampler = WalkEstimateSampler::new(
            osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default().with_crawl_depth(1),
            7,
        )
        .with_diameter_estimate(6);
        let run = collect_samples(&mut sampler, 3).unwrap();
        assert_eq!(run.len(), 3);
    }
}
