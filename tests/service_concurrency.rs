//! Acceptance bar of the `wnw-service` subsystem, through the facade crate:
//!
//! * per-request accepted-sample multisets are identical at any pool thread
//!   count and regardless of which other jobs are co-running (and match a
//!   direct `Engine::run` of the same job);
//! * a `SampleStream` yields every sample before `Done`, with monotone
//!   progress snapshots whose final totals equal the outcome's;
//! * N concurrent jobs through one service pay a lower aggregate
//!   unique-query cost than the sum of the same jobs run in isolation
//!   (cross-job shared cache);
//! * mid-job cancellation releases the job's walker slots and refunds its
//!   unused budget;
//! * a high-priority small job finishes before a low-priority large one
//!   submitted earlier.

use std::collections::BTreeMap;
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::graph::NodeId;
use walk_not_wait::prelude::*;
use walk_not_wait::service::Priority;

fn osn(n: usize, seed: u64) -> SimulatedOsn {
    SimulatedOsn::new(barabasi_albert(n, 3, seed).unwrap())
}

fn we_job(samples: usize, walkers: usize, seed: u64) -> SampleJob {
    SampleJob::walk_estimate(RandomWalkKind::Simple, samples, seed)
        .with_walkers(walkers)
        .with_diameter_estimate(5)
}

fn sorted_nodes(samples: &[walk_not_wait::mcmc::sampler::SampleRecord]) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = samples.iter().map(|s| s.node).collect();
    nodes.sort_unstable();
    nodes
}

/// The request mix used by the determinism load test: different sampler
/// kinds, sizes, seeds, and one budgeted job.
fn request_mix() -> Vec<SampleRequest> {
    vec![
        SampleRequest::new(we_job(24, 4, 0xA1)),
        SampleRequest::new(we_job(10, 2, 0xB2)).with_priority(Priority::High),
        SampleRequest::new(
            SampleJob::walk_estimate(RandomWalkKind::MetropolisHastings, 16, 0xC3)
                .with_walkers(3)
                .with_diameter_estimate(5),
        ),
        SampleRequest::new(we_job(4000, 4, 0xD4).with_budget(300)).with_priority(Priority::Low),
    ]
}

/// Runs the whole mix on a fresh service with `threads` pool threads and
/// returns each request's sorted accepted-sample multiset.
fn run_mix(threads: usize) -> Vec<Vec<NodeId>> {
    let service = SamplingService::builder(osn(1_000, 7))
        .pool_threads(threads)
        .start_paused()
        .build();
    let tickets: Vec<_> = request_mix()
        .into_iter()
        .map(|request| service.submit(request).unwrap())
        .collect();
    service.resume();
    tickets
        .into_iter()
        .map(|t| {
            let (samples, outcome) = t.stream.collect_all();
            assert!(outcome.is_some());
            sorted_nodes(&samples)
        })
        .collect()
}

/// (a) The load test: same request set, thread counts 1/2/8 — every
/// request's multiset is identical, co-load changes nothing, and each
/// matches the engine running the same job alone on a fresh network.
#[test]
fn per_request_multisets_survive_thread_count_and_coload() {
    let reference = run_mix(1);
    for threads in [2usize, 8] {
        assert_eq!(
            reference,
            run_mix(threads),
            "request multisets diverged at {threads} pool threads"
        );
    }

    // Each request solo on its own service: co-load must not matter.
    for (i, request) in request_mix().into_iter().enumerate() {
        let service = SamplingService::builder(osn(1_000, 7))
            .pool_threads(2)
            .build();
        let (samples, _) = service.submit(request).unwrap().stream.collect_all();
        assert_eq!(
            reference[i],
            sorted_nodes(&samples),
            "request {i} diverged when run without co-load"
        );
    }

    // And each matches a direct Engine::run of the same job.
    for (i, request) in request_mix().into_iter().enumerate() {
        let network = osn(1_000, 7);
        let report = Engine::with_threads(2).run(&network, &request.job).unwrap();
        assert_eq!(
            reference[i],
            report.sorted_nodes(),
            "request {i} diverged from a direct engine run"
        );
    }
}

/// (b) Stream protocol: every sample precedes Done, progress is monotone,
/// and the final progress totals equal the outcome's.
#[test]
fn stream_yields_every_sample_before_done_with_monotone_progress() {
    let service = SamplingService::builder(osn(600, 11))
        .pool_threads(2)
        .build();
    let ticket = service
        .submit(SampleRequest::new(we_job(30, 3, 0xE5)))
        .unwrap();

    let mut samples_seen = 0usize;
    let mut last_progress: Option<walk_not_wait::service::ProgressUpdate> = None;
    let mut outcome = None;
    let mut per_walker: BTreeMap<usize, usize> = BTreeMap::new();
    for event in ticket.stream {
        match event {
            SampleEvent::Sample { walker, .. } => {
                assert!(outcome.is_none(), "sample delivered after Done");
                samples_seen += 1;
                *per_walker.entry(walker).or_default() += 1;
            }
            SampleEvent::Progress(update) => {
                assert!(outcome.is_none(), "progress delivered after Done");
                assert_eq!(
                    update.samples, samples_seen,
                    "progress must count exactly the samples already streamed"
                );
                if let Some(previous) = &last_progress {
                    assert!(update.samples >= previous.samples);
                    assert_eq!(update.rounds, previous.rounds + 1);
                    assert!(update.budget_consumed >= previous.budget_consumed);
                    assert!(update.query_cost >= previous.query_cost);
                }
                assert_eq!(update.requested, 30);
                last_progress = Some(update);
            }
            SampleEvent::Done(done) => outcome = Some(done),
        }
    }
    let outcome = outcome.expect("stream must end with Done");
    let last = last_progress.expect("at least one progress event");
    assert_eq!(samples_seen, 30, "every sample arrives before Done");
    assert_eq!(outcome.samples, 30);
    assert_eq!(last.samples, outcome.samples);
    assert_eq!(last.rounds, outcome.rounds);
    assert_eq!(last.budget_consumed, outcome.budget_consumed);
    assert_eq!(last.query_cost, outcome.query_cost);
    assert_eq!(last.live_walkers, 0);
    assert_eq!(per_walker.len(), 3, "all three walkers contributed");
}

/// (c) Shared-cache economics: N concurrent jobs through one service cost
/// less, in aggregate unique-node queries, than the same jobs isolated
/// (what `examples/sampling_service.rs` prints).
#[test]
fn concurrent_jobs_cost_less_than_isolated_runs() {
    let jobs: Vec<SampleJob> = (0..4).map(|i| we_job(25, 4, 0xF0 + i)).collect();

    // Isolated: each job on a fresh engine + fresh cache.
    let isolated_total: u64 = jobs
        .iter()
        .map(|job| {
            let network = osn(2_000, 13);
            Engine::with_threads(2)
                .run(&network, job)
                .unwrap()
                .query_cost()
        })
        .sum();

    // Concurrent: all jobs through one service sharing one cache.
    let service = SamplingService::builder(osn(2_000, 13))
        .pool_threads(2)
        .build();
    let tickets: Vec<_> = jobs
        .iter()
        .map(|job| service.submit(SampleRequest::new(job.clone())).unwrap())
        .collect();
    let outcomes: Vec<JobOutcome> = tickets
        .into_iter()
        .map(|t| t.stream.wait().unwrap())
        .collect();
    let metrics = service.shutdown();

    // Every job's own view matches its isolated cost...
    let per_job_total: u64 = outcomes.iter().map(|o| o.query_cost).sum();
    assert_eq!(
        metrics.isolated_query_cost, per_job_total,
        "metrics must aggregate per-job costs"
    );
    assert_eq!(per_job_total, isolated_total);
    // ...but the pool paid strictly less than their sum.
    assert!(
        metrics.aggregate_query_cost < isolated_total,
        "shared cache must save queries: pool paid {}, isolated sum {}",
        metrics.aggregate_query_cost,
        isolated_total
    );
    assert_eq!(
        metrics.shared_cache_savings(),
        isolated_total - metrics.aggregate_query_cost
    );
}

/// Cancelling a running job releases its walker slots (the service drains
/// and other jobs finish) and refunds its unused budget.
#[test]
fn cancellation_releases_slots_and_refunds_budget() {
    let service = SamplingService::builder(osn(800, 17))
        .pool_threads(2)
        .start_paused()
        .build();
    let mut huge = service
        .submit(
            SampleRequest::new(we_job(1_000_000, 4, 0x11).with_budget(10_000))
                .with_priority(Priority::High),
        )
        .unwrap();
    let small = service
        .submit(SampleRequest::new(we_job(8, 2, 0x22)).with_priority(Priority::Low))
        .unwrap();
    service.resume();

    // Let the huge job make some progress, then cancel it mid-flight.
    let mut progressed = false;
    for event in huge.stream.by_ref() {
        if let SampleEvent::Progress(update) = &event {
            if update.samples > 0 {
                progressed = true;
                huge.handle.cancel();
                break;
            }
        }
    }
    assert!(progressed);
    let huge_outcome = huge.stream.wait().expect("cancelled job still sends Done");
    assert_eq!(huge_outcome.status, JobStatus::Cancelled);
    assert!(huge_outcome.samples > 0, "delivered samples are kept");
    assert!(
        huge_outcome.budget_refunded > 0,
        "unused budget must be refunded"
    );
    assert_eq!(
        huge_outcome.budget_consumed + huge_outcome.budget_refunded,
        10_000,
        "consumed + refunded covers the whole budget"
    );

    // The walker slots are free again: the small job completes normally.
    let small_outcome = small.stream.wait().unwrap();
    assert_eq!(small_outcome.status, JobStatus::Completed);
    assert_eq!(small_outcome.samples, 8);

    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_cancelled, 1);
    assert_eq!(metrics.jobs_completed, 1);
    assert_eq!(metrics.jobs_running, 0);
    assert_eq!(metrics.budget_refunded, huge_outcome.budget_refunded);
}

/// Dropping a `SampleStream` mid-job (the consumer hanging up, which is
/// also what the HTTP gateway does when a client's connection dies) must
/// release the job's walker slots and refund its unused budget —
/// `tests/http_gateway.rs` asserts the identical behavior through the HTTP
/// path.
#[test]
fn dropping_the_stream_mid_job_frees_slots_and_refunds_budget() {
    let service = SamplingService::builder(osn(800, 23))
        .pool_threads(1)
        .max_active(1)
        .start_paused()
        .build();
    // The doomed job holds the single active slot; the follower can only
    // run once the hang-up releases it.
    let mut doomed = service
        .submit(SampleRequest::new(
            we_job(1_000_000, 4, 0x41).with_budget(50_000),
        ))
        .unwrap();
    let follower = service
        .submit(SampleRequest::new(we_job(6, 2, 0x42)))
        .unwrap();
    service.resume();

    // Consume a few samples, then hang up mid-stream.
    let mut streamed = 0usize;
    for event in doomed.stream.by_ref() {
        if let SampleEvent::Sample { .. } = event {
            streamed += 1;
            if streamed >= 3 {
                break;
            }
        }
    }
    assert_eq!(streamed, 3, "the job was mid-flight when we hung up");
    drop(doomed.stream);

    // The walker slots are released: the follower completes normally.
    let follower_outcome = follower.stream.wait().expect("follower reaches Done");
    assert_eq!(follower_outcome.status, JobStatus::Completed);
    assert_eq!(follower_outcome.samples, 6);
    assert!(
        follower_outcome.queue_wait >= std::time::Duration::ZERO
            && follower_outcome.queue_wait <= follower_outcome.latency,
        "queue wait is the scheduling share of the total latency"
    );

    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_cancelled, 1, "hang-up cancels the job");
    assert_eq!(metrics.jobs_completed, 1);
    assert_eq!(metrics.jobs_running, 0);
    assert!(
        metrics.budget_refunded > 0,
        "the dropped job's unused budget must be refunded"
    );
    // Budgets are charged per walker view; even if all 4 walkers touched
    // every one of the 800 nodes, most of the 50k budget is unspent.
    assert!(metrics.budget_refunded >= 50_000 - 4 * 800);
    assert_eq!(metrics.jobs_started, 2, "both jobs left the queue");
    assert!(metrics.max_queue_wait >= metrics.mean_queue_wait);
}

/// Pins the promotion order of the scheduler's priority-indexed pending
/// queue: highest priority first, FIFO within a priority, and every 4th
/// promotion aged (taking the globally oldest submission regardless of
/// priority). With one active slot the jobs run — and therefore finish —
/// exactly in promotion order, so `finish_index` exposes the policy.
///
/// Hand-computed for priorities [L, L, N, H, N, H, L, N] (submission order
/// 0..8): promotions pick 3, 5, 2, then aged 0, then 4, 7, 1, then aged 6.
/// This is the regression test for the O(pending)-scan → indexed-bucket
/// replacement: any behavioral drift in the new queue changes this order.
#[test]
fn promotion_order_is_priority_fifo_with_aging() {
    use walk_not_wait::service::Priority::{High, Low, Normal};
    let priorities = [Low, Low, Normal, High, Normal, High, Low, Normal];
    let expected_order = [3usize, 5, 2, 0, 4, 7, 1, 6];

    let service = SamplingService::builder(osn(400, 29))
        .pool_threads(1)
        .max_active(1)
        .max_in_flight(16)
        .start_paused()
        .build();
    let tickets: Vec<_> = priorities
        .iter()
        .enumerate()
        .map(|(i, &priority)| {
            service
                .submit(SampleRequest::new(we_job(2, 1, 0x50 + i as u64)).with_priority(priority))
                .unwrap()
        })
        .collect();
    service.resume();

    let finish_indices: Vec<u64> = tickets
        .into_iter()
        .map(|t| {
            let outcome = t.stream.wait().unwrap();
            assert_eq!(outcome.status, JobStatus::Completed);
            outcome.finish_index
        })
        .collect();

    // Sort submissions by the order they finished; that is the promotion
    // order under a single active slot.
    let mut by_finish: Vec<usize> = (0..priorities.len()).collect();
    by_finish.sort_by_key(|&i| finish_indices[i]);
    assert_eq!(
        by_finish, expected_order,
        "promotion order drifted (finish indices: {finish_indices:?})"
    );
}

/// Priority-weighted fairness: a high-priority small job finishes before a
/// low-priority large job submitted earlier.
#[test]
fn high_priority_small_job_overtakes_earlier_large_job() {
    let service = SamplingService::builder(osn(900, 19))
        .pool_threads(2)
        .start_paused()
        .build();
    let large = service
        .submit(SampleRequest::new(we_job(120, 2, 0x31)).with_priority(Priority::Low))
        .unwrap();
    let small = service
        .submit(SampleRequest::new(we_job(8, 2, 0x32)).with_priority(Priority::High))
        .unwrap();
    service.resume();

    let small_outcome = small.stream.wait().unwrap();
    let large_outcome = large.stream.wait().unwrap();
    assert_eq!(small_outcome.status, JobStatus::Completed);
    assert_eq!(large_outcome.status, JobStatus::Completed);
    assert!(
        small_outcome.finish_index < large_outcome.finish_index,
        "high-priority job must finish first (small: {}, large: {})",
        small_outcome.finish_index,
        large_outcome.finish_index
    );
}
