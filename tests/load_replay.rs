//! Acceptance bar of the `wnw-loadgen` workload-replay harness, at smoke
//! scale over real loopback sockets:
//!
//! * a driven scenario produces a fully populated report — every offered
//!   request accounted for, client-side latency summaries present, the
//!   Prometheus scrape validated and consistent with `/v1/metrics`;
//! * a seeded rerun of the same scenario submits the identical job
//!   multiset (plan fingerprints match across independent expansions);
//! * the `hot_key` preset's Zipf-skewed start nodes concentrate work on
//!   the celebrity nodes, so cross-job history reuse shows real savings.

use walk_not_wait::loadgen::{scenario, testbed, Scale};

#[test]
fn steady_smoke_run_reports_and_meets_its_slo() {
    let steady = scenario::steady(Scale::Smoke);
    let report = testbed::run_scenario(&steady).expect("steady smoke run");

    // Every offered request is accounted for exactly once.
    assert!(report.offered > 0, "the plan must offer requests");
    assert_eq!(
        report.submitted + report.shed + report.submit_errors,
        report.offered
    );
    assert_eq!(
        report.completed + report.cancelled + report.failed,
        report.submitted
    );
    assert!(report.completed > 0, "steady load must complete jobs");
    assert!(report.samples_delivered > 0);

    // The three latency series the SLO judges are populated, with sane
    // ordering (a job's first sample cannot arrive after its last event).
    for (name, summary) in [
        ("queue_wait", &report.queue_wait_ms),
        ("e2e", &report.e2e_ms),
        ("ttfs", &report.ttfs_ms),
    ] {
        assert!(summary.count > 0, "{name} summary must have observations");
        assert!(summary.p50 <= summary.p99 && summary.p99 <= summary.max);
    }
    assert!(report.ttfs_ms.p50 <= report.e2e_ms.max);

    // The server's view agrees with the client's, and the Prometheus
    // scrape cross-checks against the JSON metrics document.
    assert_eq!(report.server.jobs_submitted as usize, report.submitted);
    assert_eq!(report.server.jobs_completed as usize, report.completed);
    assert!(report.server.prometheus_series > 0);
    assert!(
        report.server.prometheus_consistent,
        "prometheus scrape must validate and agree with /v1/metrics"
    );

    // Five objectives, each judged.
    assert_eq!(report.slo.checks.len(), 5);
    assert!(
        report.slo.pass,
        "steady smoke must meet its SLO: {:?}",
        report.slo.checks
    );
}

/// The catalog-backed testbed drives the same smoke workload end to end:
/// CSR substrate underneath, identical gateway/service/driver above — the
/// whole stack runs on a loaded catalog with its SLO intact.
#[test]
fn steady_smoke_run_on_catalog_testbed_meets_its_slo() {
    let steady = scenario::steady(Scale::Smoke);
    let report = testbed::run_scenario_catalog(&steady).expect("catalog smoke run");

    assert!(report.offered > 0);
    assert_eq!(
        report.submitted + report.shed + report.submit_errors,
        report.offered
    );
    assert!(
        report.completed > 0,
        "catalog-backed steady load completes jobs"
    );
    assert!(report.samples_delivered > 0);
    assert!(
        report.server.prometheus_consistent,
        "prometheus scrape must validate on the catalog substrate too"
    );
    assert!(
        report.slo.pass,
        "catalog-backed steady smoke must meet the same SLO: {:?}",
        report.slo.checks
    );
}

#[test]
fn seeded_rerun_submits_the_identical_job_multiset() {
    for preset in scenario::presets(Scale::Smoke) {
        let first = preset.plan();
        let second = preset.plan();
        assert_eq!(
            first.fingerprint(),
            second.fingerprint(),
            "{}: rerun fingerprints diverged",
            preset.name
        );
        assert_eq!(first.requests, second.requests);
    }
    // And a driven run reports exactly the plan's fingerprint, so the
    // bench artifact alone proves which workload was replayed.
    let steady = scenario::steady(Scale::Smoke);
    let report = testbed::run_scenario(&steady).expect("steady smoke run");
    assert_eq!(report.plan_fingerprint, steady.plan().fingerprint());
}

#[test]
fn hot_key_skew_produces_cross_job_history_reuse() {
    let hot = scenario::hot_key(Scale::Smoke);
    let report = testbed::run_scenario(&hot).expect("hot_key smoke run");
    assert!(report.completed > 0);
    assert!(
        report.server.history_hits > 0,
        "Zipf-skewed shared_publish jobs must hit the shared walk history"
    );
    assert!(
        report.server.history_reuse_savings > 0,
        "history reuse must save real queries (got {:?})",
        report.server
    );
}
