//! Acceptance bar of the `wnw-catalog` subsystem, through the facade crate:
//!
//! * **CSR conformance (property, 3 seeds):** a `CsrGraph` built from a
//!   seeded BA generator presents exactly the per-node-Vec graph's degree
//!   sequence and neighbor multisets — the substrate swap changes layout,
//!   never topology;
//! * **catalog roundtrip:** save → load through the filesystem is
//!   lossless, and the loaded graph is byte-for-byte the saved one;
//! * **spec cache:** `load_or_build_in` builds on a cold directory, loads
//!   on a warm one, and recovers from a stomped cache file;
//! * **service on a catalog:** a `SamplingService` over `CatalogNetwork`
//!   delivers the same accepted-sample multiset as the same service over
//!   `SimulatedOsn` on the same topology — nothing above the access layer
//!   can tell the substrates apart.

use std::path::PathBuf;
use walk_not_wait::catalog::{CatalogSource, GraphModel, GraphSpec};
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wnwcat-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Satellite (c): identical degree sequences and neighbor multisets between
/// the CSR build and the per-node-Vec graph, across 3 generator seeds.
#[test]
fn csr_conforms_to_per_node_vec_graph_at_three_seeds() {
    for seed in [0xA11CE, 0xB0B, 0xC0FFEE] {
        let graph = barabasi_albert(2_000, 3, seed).unwrap();
        let csr = CsrGraph::from_graph(&graph);
        assert_eq!(csr.node_count(), graph.node_count(), "seed {seed:#x}");
        assert_eq!(csr.edge_count(), graph.edge_count(), "seed {seed:#x}");
        for v in graph.nodes() {
            assert_eq!(
                csr.degree(v),
                graph.degree(v),
                "degree of {v:?}, seed {seed:#x}"
            );
            // Both sides keep neighbor lists sorted, so multiset equality
            // is slice equality.
            let expected: Vec<u32> = graph.neighbors(v).iter().map(|u| u.0).collect();
            assert_eq!(
                csr.neighbor_slice(v),
                &expected[..],
                "neighbors of {v:?}, seed {seed:#x}"
            );
        }
    }
}

/// Satellite (e)'s test-gate leg: catalog save → load → verify roundtrip
/// through the real filesystem.
#[test]
fn catalog_roundtrip_through_filesystem_is_lossless() {
    let dir = temp_dir("roundtrip");
    let path = dir.join("roundtrip.wnwcat");
    let graph = CsrGraph::from_graph(&barabasi_albert(3_000, 3, 0xD15C).unwrap());

    walk_not_wait::catalog::format::save(&graph, &path).unwrap();
    let loaded = walk_not_wait::catalog::format::load(&path).unwrap();
    assert_eq!(loaded, graph);

    // Verify the loaded graph is usable, not just equal: walk a few nodes.
    for v in [0u32, 1, 1_500, 2_999] {
        let v = walk_not_wait::graph::NodeId(v);
        assert_eq!(loaded.degree(v), graph.degree(v));
        assert_eq!(loaded.nth_neighbor(v, 0), graph.nth_neighbor(v, 0));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The spec cache lifecycle: cold build, warm load, corrupt-file recovery.
#[test]
fn spec_cache_builds_loads_and_self_heals() {
    let dir = temp_dir("cache");
    let spec = GraphSpec::new(
        "it_cache",
        GraphModel::BarabasiAlbert { m: 3 },
        1_000,
        0xFEED,
    );

    let (built, src) = spec.load_or_build_in(&dir).unwrap();
    assert_eq!(src, CatalogSource::Built);
    let (loaded, src) = spec.load_or_build_in(&dir).unwrap();
    assert_eq!(src, CatalogSource::Loaded);
    assert_eq!(built, loaded);

    std::fs::write(spec.path_in(&dir), b"\x00garbage").unwrap();
    let (healed, src) = spec.load_or_build_in(&dir).unwrap();
    assert_eq!(src, CatalogSource::Built);
    assert_eq!(healed, built);
    std::fs::remove_dir_all(&dir).ok();
}

/// The substrate-indifference guarantee, end to end: the sampling service
/// produces the identical accepted-sample multiset whether the network
/// under it is `SimulatedOsn` (per-node-Vec) or `CatalogNetwork` (CSR) on
/// the same topology — and pays the same unique-node query cost.
#[test]
fn service_on_catalog_matches_service_on_simulated_osn() {
    let graph = barabasi_albert(1_500, 3, 0x5EED).unwrap();
    let csr = CsrGraph::from_graph(&graph);

    let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 40, 0xAB)
        .with_walkers(4)
        .with_diameter_estimate(5);

    let run = |outcome_samples: &mut Vec<NodeId>, cost: &mut u64, on_catalog: bool| {
        macro_rules! drive {
            ($network:expr) => {{
                let service = SamplingService::builder($network).pool_threads(2).build();
                let ticket = service.submit(SampleRequest::new(job.clone())).unwrap();
                let (samples, outcome) = ticket.stream.collect_all();
                let outcome = outcome.unwrap();
                assert_eq!(outcome.status, JobStatus::Completed);
                let mut nodes: Vec<NodeId> = samples.iter().map(|s| s.node).collect();
                nodes.sort_unstable();
                *outcome_samples = nodes;
                *cost = outcome.query_cost;
            }};
        }
        if on_catalog {
            drive!(CatalogNetwork::new(csr.clone()));
        } else {
            drive!(SimulatedOsn::new(graph.clone()));
        }
    };

    let (mut sim_nodes, mut sim_cost) = (Vec::new(), 0u64);
    let (mut cat_nodes, mut cat_cost) = (Vec::new(), 0u64);
    run(&mut sim_nodes, &mut sim_cost, false);
    run(&mut cat_nodes, &mut cat_cost, true);

    assert_eq!(
        sim_nodes, cat_nodes,
        "sample multisets must be substrate-invariant"
    );
    assert_eq!(
        sim_cost, cat_cost,
        "query accounting must be substrate-invariant"
    );
    assert!(!cat_nodes.is_empty());
}
