//! Cross-crate integration tests: the full sampling pipeline from graph
//! generation through the restricted access layer, the samplers, and the
//! aggregate estimators.

use walk_not_wait::mcmc::burn_in::{BurnInConfig, ManyShortRunsSampler};
use walk_not_wait::prelude::*;

fn sample_values(graph: &Graph, nodes: &[NodeId]) -> Vec<SampleValue> {
    nodes
        .iter()
        .map(|&v| SampleValue {
            node: v,
            value: graph.degree(v) as f64,
            degree: graph.degree(v),
        })
        .collect()
}

#[test]
fn walk_estimate_is_cheaper_than_burn_in_for_the_same_sample_count() {
    // The headline claim of the paper, end to end: for the same number of
    // samples and the same target distribution, WALK-ESTIMATE spends fewer
    // queries than the traditional burn-in sampler.
    let graph = walk_not_wait::graph::generators::random::barabasi_albert(2_000, 5, 11).unwrap();
    let samples = 30;

    let osn_baseline = SimulatedOsn::new(graph.clone());
    let mut baseline = ManyShortRunsSampler::new(
        osn_baseline.clone(),
        RandomWalkKind::MetropolisHastings,
        BurnInConfig::default(),
        3,
    );
    let baseline_run = collect_samples(&mut baseline, samples).unwrap();
    assert_eq!(baseline_run.len(), samples);
    let baseline_cost = osn_baseline.query_cost();

    let osn_we = SimulatedOsn::new(graph.clone());
    let mut we = WalkEstimateSampler::new(
        osn_we.clone(),
        RandomWalkKind::MetropolisHastings,
        WalkEstimateConfig::default(),
        3,
    )
    .with_diameter_estimate(5);
    let we_run = collect_samples(&mut we, samples).unwrap();
    assert_eq!(we_run.len(), samples);
    let we_cost = osn_we.query_cost();

    assert!(
        we_cost < baseline_cost,
        "WALK-ESTIMATE should be cheaper: {we_cost} vs {baseline_cost} queries"
    );
}

#[test]
fn both_samplers_recover_the_average_degree() {
    let graph = walk_not_wait::graph::generators::random::barabasi_albert(1_500, 5, 13).unwrap();
    let truth = graph.average_degree();
    let samples = 150;

    // SRW samples are degree-biased: the harmonic-style estimator fixes that.
    let osn = SimulatedOsn::new(graph.clone());
    let mut srw =
        ManyShortRunsSampler::new(osn, RandomWalkKind::Simple, BurnInConfig::default(), 5);
    let srw_run = collect_samples(&mut srw, samples).unwrap();
    let srw_estimate = estimate_average(
        &sample_values(&graph, &srw_run.nodes()),
        WeightingScheme::InverseDegree,
    );
    assert!(
        relative_error(srw_estimate, truth) < 0.35,
        "SRW estimate {srw_estimate} vs truth {truth}"
    );

    // WE targeting the uniform distribution uses the plain mean.
    let osn = SimulatedOsn::new(graph.clone());
    let mut we = WalkEstimateSampler::new(
        osn,
        RandomWalkKind::MetropolisHastings,
        WalkEstimateConfig::default(),
        5,
    )
    .with_diameter_estimate(5);
    let we_run = collect_samples(&mut we, samples).unwrap();
    let we_estimate = estimate_average(
        &sample_values(&graph, &we_run.nodes()),
        WeightingScheme::Uniform,
    );
    assert!(
        relative_error(we_estimate, truth) < 0.35,
        "WE estimate {we_estimate} vs truth {truth}"
    );
}

#[test]
fn budgeted_pipeline_stops_cleanly_and_keeps_partial_results() {
    let graph = walk_not_wait::graph::generators::random::barabasi_albert(800, 4, 17).unwrap();
    let osn = SimulatedOsn::builder(graph.clone())
        .budget(QueryBudget(100))
        .build();
    let mut sampler = WalkEstimateSampler::new(
        osn.clone(),
        RandomWalkKind::Simple,
        WalkEstimateConfig::default(),
        7,
    )
    .with_diameter_estimate(5);
    let run = collect_samples(&mut sampler, 10_000).unwrap();
    assert!(run.budget_exhausted);
    assert!(osn.query_cost() <= 100);
    assert!(run.samples.iter().all(|s| graph.contains(s.node)));
}

#[test]
fn surrogate_datasets_flow_through_the_whole_stack() {
    let dataset = walk_not_wait::graph::generators::surrogate::yelp_like(600, 23).unwrap();
    let graph = dataset.graph;
    let truth = graph.attributes().column("stars").unwrap().mean();
    let osn = SimulatedOsn::new(graph.clone());
    let mut sampler = WalkEstimateSampler::new(
        osn.clone(),
        RandomWalkKind::MetropolisHastings,
        WalkEstimateConfig::default(),
        29,
    )
    .with_diameter_estimate(5);
    let run = collect_samples(&mut sampler, 120).unwrap();
    let values: Vec<SampleValue> = run
        .samples
        .iter()
        .map(|s| SampleValue {
            node: s.node,
            value: osn.attribute("stars", s.node).unwrap(),
            degree: graph.degree(s.node),
        })
        .collect();
    let estimate = estimate_average(&values, WeightingScheme::Uniform);
    assert!(
        relative_error(estimate, truth) < 0.2,
        "star estimate {estimate} vs truth {truth}"
    );
}

#[test]
fn restrictions_and_rate_limits_compose_with_sampling() {
    use walk_not_wait::access::{NeighborRestriction, RateLimitPolicy, RateLimiter};
    let graph = walk_not_wait::graph::generators::random::barabasi_albert(500, 6, 31).unwrap();
    let osn = SimulatedOsn::builder(graph)
        .restriction(NeighborRestriction::Truncated { l: 50 })
        .rate_limiter(RateLimiter::new(RateLimitPolicy {
            requests_per_window: 100,
            window_secs: 60,
        }))
        .build();
    let mut sampler = WalkEstimateSampler::new(
        osn.clone(),
        RandomWalkKind::Simple,
        WalkEstimateConfig::default(),
        37,
    )
    .with_diameter_estimate(5);
    let run = collect_samples(&mut sampler, 10).unwrap();
    assert_eq!(run.len(), 10);
    // The rate limiter advanced the simulated clock (many more than 100 calls
    // were made), and the restriction never broke the walk.
    assert!(osn.rate_limiter().elapsed_secs() > 0 || osn.query_stats().api_calls <= 100);
}
