//! Cross-crate property-based tests on the core invariants of the
//! reproduction: graph structure, transition-matrix stochasticity, stationary
//! distributions, estimator unbiasedness bookkeeping, and sampler validity.
//!
//! The offline build has no proptest, so each property runs over a seeded
//! stream of randomized cases (24 per property, matching the previous
//! `ProptestConfig::with_cases(24)`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use walk_not_wait::analytics::bias::EmpiricalDistribution;
use walk_not_wait::graph::generators::random::{barabasi_albert, erdos_renyi};
use walk_not_wait::mcmc::distribution::TransitionMatrix;
use walk_not_wait::prelude::*;

const CASES: usize = 24;

/// Generators always produce simple undirected graphs: symmetric
/// adjacency, no self-loops, degree sum equals twice the edge count.
#[test]
fn prop_generated_graphs_are_simple_and_consistent() {
    let mut rng = StdRng::seed_from_u64(0x1A01);
    for _ in 0..CASES {
        let n = rng.gen_range(5usize..120);
        let m = rng.gen_range(1usize..4);
        let seed = rng.gen_range(0u64..1_000);
        let graph = barabasi_albert(n.max(m + 2), m, seed).unwrap();
        let degree_sum: usize = graph.nodes().map(|v| graph.degree(v)).sum();
        assert_eq!(degree_sum, 2 * graph.edge_count());
        for (u, v) in graph.edges() {
            assert!(u != v, "self-loop {u}");
            assert!(graph.has_edge(v, u), "missing reverse edge {v}->{u}");
        }
    }
}

/// Transition matrices are row-stochastic and keep their stationary
/// distribution fixed, for both walk designs and arbitrary graphs.
#[test]
fn prop_transition_matrices_are_stochastic_fixed_points() {
    let mut rng = StdRng::seed_from_u64(0x1A02);
    for _ in 0..CASES {
        let n = rng.gen_range(10usize..80);
        let p = rng.gen_range(0.05..0.4);
        let seed = rng.gen_range(0u64..500);
        let mhrw: bool = rng.gen();
        let graph = erdos_renyi(n, p, seed).unwrap();
        let kind = if mhrw {
            RandomWalkKind::MetropolisHastings
        } else {
            RandomWalkKind::Simple
        };
        let matrix = TransitionMatrix::new(&graph, kind);
        for v in graph.nodes() {
            let sum: f64 = matrix.row(v).iter().map(|&(_, p)| p).sum::<f64>() + matrix.self_loop(v);
            assert!((sum - 1.0).abs() < 1e-9, "row {v} sums to {sum}");
        }
        // Restrict the fixed-point check to connected graphs: the closed-form
        // stationary distribution assumes one.
        if walk_not_wait::graph::metrics::connected_components(&graph) == 1 {
            let pi = TransitionMatrix::stationary_distribution(&graph, kind);
            let next = matrix.step_distribution(&pi);
            for (a, b) in pi.iter().zip(&next) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

/// Walk-length policies always resolve to at least one step and scale
/// monotonically with the diameter bound.
#[test]
fn prop_walk_length_policy_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0x1A03);
    for _ in 0..CASES {
        let multiplier = rng.gen_range(1usize..5);
        let offset = rng.gen_range(0usize..5);
        let d1 = rng.gen_range(1usize..30);
        let d2 = rng.gen_range(1usize..30);
        let policy = WalkLengthPolicy::DiameterMultiple {
            multiplier,
            offset,
            assumed_diameter: 10,
        };
        let lo = d1.min(d2);
        let hi = d1.max(d2);
        assert!(policy.resolve(Some(lo)) >= 1);
        assert!(policy.resolve(Some(hi)) >= policy.resolve(Some(lo)));
    }
}

/// Every sample produced by WALK-ESTIMATE is a valid node, query costs
/// are monotone across samples, and the empirical distribution of the
/// samples is a probability distribution.
#[test]
fn prop_walk_estimate_samples_are_valid() {
    let mut rng = StdRng::seed_from_u64(0x1A04);
    for _ in 0..CASES {
        let n = rng.gen_range(30usize..150);
        let seed = rng.gen_range(0u64..200);
        let graph = barabasi_albert(n, 3, seed).unwrap();
        let osn = SimulatedOsn::new(graph.clone());
        let mut sampler = WalkEstimateSampler::new(
            osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default().with_crawl_depth(1),
            seed,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 8).unwrap();
        assert_eq!(run.len(), 8);
        let mut last_cost = 0;
        for s in &run.samples {
            assert!(graph.contains(s.node));
            assert!(s.query_cost >= last_cost);
            assert!(s.attempts >= 1);
            last_cost = s.query_cost;
        }
        let dist = EmpiricalDistribution::from_samples(graph.node_count(), &run.nodes());
        let sum: f64 = dist.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

/// Aggregate estimators never produce values outside the range of the
/// observed sample values, whichever weighting scheme is used.
#[test]
fn prop_estimators_stay_within_observed_range() {
    let mut rng = StdRng::seed_from_u64(0x1A05);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..40);
        let values: Vec<(f64, usize)> = (0..len)
            .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(1usize..50)))
            .collect();
        let samples: Vec<SampleValue> = values
            .iter()
            .enumerate()
            .map(|(i, &(v, d))| SampleValue {
                node: NodeId::new(i),
                value: v,
                degree: d,
            })
            .collect();
        let lo = values.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let hi = values.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        for scheme in [WeightingScheme::Uniform, WeightingScheme::InverseDegree] {
            let est = estimate_average(&samples, scheme);
            assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }
}
