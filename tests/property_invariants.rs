//! Cross-crate property-based tests on the core invariants of the
//! reproduction: graph structure, transition-matrix stochasticity, stationary
//! distributions, estimator unbiasedness bookkeeping, and sampler validity.

use proptest::prelude::*;
use walk_not_wait::analytics::bias::EmpiricalDistribution;
use walk_not_wait::graph::generators::random::{barabasi_albert, erdos_renyi};
use walk_not_wait::mcmc::distribution::TransitionMatrix;
use walk_not_wait::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generators always produce simple undirected graphs: symmetric
    /// adjacency, no self-loops, degree sum equals twice the edge count.
    #[test]
    fn prop_generated_graphs_are_simple_and_consistent(
        n in 5usize..120,
        m in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let graph = barabasi_albert(n.max(m + 2), m, seed).unwrap();
        let degree_sum: usize = graph.nodes().map(|v| graph.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * graph.edge_count());
        for (u, v) in graph.edges() {
            prop_assert!(u != v, "self-loop {u}");
            prop_assert!(graph.has_edge(v, u), "missing reverse edge {v}->{u}");
        }
    }

    /// Transition matrices are row-stochastic and keep their stationary
    /// distribution fixed, for both walk designs and arbitrary graphs.
    #[test]
    fn prop_transition_matrices_are_stochastic_fixed_points(
        n in 10usize..80,
        p in 0.05f64..0.4,
        seed in 0u64..500,
        mhrw in proptest::bool::ANY,
    ) {
        let graph = erdos_renyi(n, p, seed).unwrap();
        let kind = if mhrw { RandomWalkKind::MetropolisHastings } else { RandomWalkKind::Simple };
        let matrix = TransitionMatrix::new(&graph, kind);
        for v in graph.nodes() {
            let sum: f64 = matrix.row(v).iter().map(|&(_, p)| p).sum::<f64>() + matrix.self_loop(v);
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {v} sums to {sum}");
        }
        // Restrict the fixed-point check to connected graphs: the closed-form
        // stationary distribution assumes one.
        if walk_not_wait::graph::metrics::connected_components(&graph) == 1 {
            let pi = TransitionMatrix::stationary_distribution(&graph, kind);
            let next = matrix.step_distribution(&pi);
            for (a, b) in pi.iter().zip(&next) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// Walk-length policies always resolve to at least one step and scale
    /// monotonically with the diameter bound.
    #[test]
    fn prop_walk_length_policy_is_monotone(
        multiplier in 1usize..5,
        offset in 0usize..5,
        d1 in 1usize..30,
        d2 in 1usize..30,
    ) {
        let policy = WalkLengthPolicy::DiameterMultiple {
            multiplier,
            offset,
            assumed_diameter: 10,
        };
        let lo = d1.min(d2);
        let hi = d1.max(d2);
        prop_assert!(policy.resolve(Some(lo)) >= 1);
        prop_assert!(policy.resolve(Some(hi)) >= policy.resolve(Some(lo)));
    }

    /// Every sample produced by WALK-ESTIMATE is a valid node, query costs
    /// are monotone across samples, and the empirical distribution of the
    /// samples is a probability distribution.
    #[test]
    fn prop_walk_estimate_samples_are_valid(
        n in 30usize..150,
        seed in 0u64..200,
    ) {
        let graph = barabasi_albert(n, 3, seed).unwrap();
        let osn = SimulatedOsn::new(graph.clone());
        let mut sampler = WalkEstimateSampler::new(
            osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default().with_crawl_depth(1),
            seed,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 8).unwrap();
        prop_assert_eq!(run.len(), 8);
        let mut last_cost = 0;
        for s in &run.samples {
            prop_assert!(graph.contains(s.node));
            prop_assert!(s.query_cost >= last_cost);
            prop_assert!(s.attempts >= 1);
            last_cost = s.query_cost;
        }
        let dist = EmpiricalDistribution::from_samples(graph.node_count(), &run.nodes());
        let sum: f64 = dist.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Aggregate estimators never produce values outside the range of the
    /// observed sample values, whichever weighting scheme is used.
    #[test]
    fn prop_estimators_stay_within_observed_range(
        values in proptest::collection::vec((1.0f64..100.0, 1usize..50), 1..40),
    ) {
        let samples: Vec<SampleValue> = values
            .iter()
            .enumerate()
            .map(|(i, &(v, d))| SampleValue { node: NodeId::new(i), value: v, degree: d })
            .collect();
        let lo = values.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let hi = values.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        for scheme in [WeightingScheme::Uniform, WeightingScheme::InverseDegree] {
            let est = estimate_average(&samples, scheme);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }
}
