//! Cross-crate property-based tests on the core invariants of the
//! reproduction: graph structure, transition-matrix stochasticity, stationary
//! distributions, estimator unbiasedness bookkeeping, and sampler validity.
//!
//! The offline build has no proptest, so each property runs over a seeded
//! stream of randomized cases (24 per property, matching the previous
//! `ProptestConfig::with_cases(24)`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use walk_not_wait::analytics::bias::EmpiricalDistribution;
use walk_not_wait::graph::generators::random::{barabasi_albert, erdos_renyi};
use walk_not_wait::mcmc::distribution::TransitionMatrix;
use walk_not_wait::prelude::*;

const CASES: usize = 24;

/// Generators always produce simple undirected graphs: symmetric
/// adjacency, no self-loops, degree sum equals twice the edge count.
#[test]
fn prop_generated_graphs_are_simple_and_consistent() {
    let mut rng = StdRng::seed_from_u64(0x1A01);
    for _ in 0..CASES {
        let n = rng.gen_range(5usize..120);
        let m = rng.gen_range(1usize..4);
        let seed = rng.gen_range(0u64..1_000);
        let graph = barabasi_albert(n.max(m + 2), m, seed).unwrap();
        let degree_sum: usize = graph.nodes().map(|v| graph.degree(v)).sum();
        assert_eq!(degree_sum, 2 * graph.edge_count());
        for (u, v) in graph.edges() {
            assert!(u != v, "self-loop {u}");
            assert!(graph.has_edge(v, u), "missing reverse edge {v}->{u}");
        }
    }
}

/// Transition matrices are row-stochastic and keep their stationary
/// distribution fixed, for both walk designs and arbitrary graphs.
#[test]
fn prop_transition_matrices_are_stochastic_fixed_points() {
    let mut rng = StdRng::seed_from_u64(0x1A02);
    for _ in 0..CASES {
        let n = rng.gen_range(10usize..80);
        let p = rng.gen_range(0.05..0.4);
        let seed = rng.gen_range(0u64..500);
        let mhrw: bool = rng.gen();
        let graph = erdos_renyi(n, p, seed).unwrap();
        let kind = if mhrw {
            RandomWalkKind::MetropolisHastings
        } else {
            RandomWalkKind::Simple
        };
        let matrix = TransitionMatrix::new(&graph, kind);
        for v in graph.nodes() {
            let sum: f64 = matrix.row(v).iter().map(|&(_, p)| p).sum::<f64>() + matrix.self_loop(v);
            assert!((sum - 1.0).abs() < 1e-9, "row {v} sums to {sum}");
        }
        // Restrict the fixed-point check to connected graphs: the closed-form
        // stationary distribution assumes one.
        if walk_not_wait::graph::metrics::connected_components(&graph) == 1 {
            let pi = TransitionMatrix::stationary_distribution(&graph, kind);
            let next = matrix.step_distribution(&pi);
            for (a, b) in pi.iter().zip(&next) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

/// Walk-length policies always resolve to at least one step and scale
/// monotonically with the diameter bound.
#[test]
fn prop_walk_length_policy_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0x1A03);
    for _ in 0..CASES {
        let multiplier = rng.gen_range(1usize..5);
        let offset = rng.gen_range(0usize..5);
        let d1 = rng.gen_range(1usize..30);
        let d2 = rng.gen_range(1usize..30);
        let policy = WalkLengthPolicy::DiameterMultiple {
            multiplier,
            offset,
            assumed_diameter: 10,
        };
        let lo = d1.min(d2);
        let hi = d1.max(d2);
        assert!(policy.resolve(Some(lo)) >= 1);
        assert!(policy.resolve(Some(hi)) >= policy.resolve(Some(lo)));
    }
}

/// Every sample produced by WALK-ESTIMATE is a valid node, query costs
/// are monotone across samples, and the empirical distribution of the
/// samples is a probability distribution.
#[test]
fn prop_walk_estimate_samples_are_valid() {
    let mut rng = StdRng::seed_from_u64(0x1A04);
    for _ in 0..CASES {
        let n = rng.gen_range(30usize..150);
        let seed = rng.gen_range(0u64..200);
        let graph = barabasi_albert(n, 3, seed).unwrap();
        let osn = SimulatedOsn::new(graph.clone());
        let mut sampler = WalkEstimateSampler::new(
            osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default().with_crawl_depth(1),
            seed,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 8).unwrap();
        assert_eq!(run.len(), 8);
        let mut last_cost = 0;
        for s in &run.samples {
            assert!(graph.contains(s.node));
            assert!(s.query_cost >= last_cost);
            assert!(s.attempts >= 1);
            last_cost = s.query_cost;
        }
        let dist = EmpiricalDistribution::from_samples(graph.node_count(), &run.nodes());
        let sum: f64 = dist.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

/// Shared/overlay history merging is order-independent: merging a random
/// set of per-walker histories into a `SharedWalkHistory` from 1, 2, or 4
/// threads (arbitrary arrival orders) always reproduces the counts of a
/// sequential width-1 oracle, and an overlay (shared + pending) is always
/// the exact sum of its layers.
#[test]
fn prop_shared_history_merge_is_order_independent_at_any_width() {
    use std::sync::Arc;
    use walk_not_wait::core::{HistoryView, OverlayHistory, SharedWalkHistory, WalkHistory};

    let mut rng = StdRng::seed_from_u64(0x1A06);
    for _ in 0..CASES {
        let walkers = rng.gen_range(2usize..6);
        // Each walker's batch of forward walks, with random lengths/nodes.
        let batches: Vec<Vec<Vec<NodeId>>> = (0..walkers)
            .map(|_| {
                (0..rng.gen_range(1usize..8))
                    .map(|_| {
                        (0..rng.gen_range(1usize..7))
                            .map(|_| NodeId(rng.gen_range(0u32..25)))
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Width-1 oracle: one private history records everything in order.
        let mut oracle = WalkHistory::new();
        for batch in &batches {
            for walk in batch {
                oracle.record_walk(walk);
            }
        }

        for width in [1usize, 2, 4] {
            let shared = Arc::new(SharedWalkHistory::new());
            std::thread::scope(|scope| {
                for chunk in batches.chunks(batches.len().div_ceil(width)) {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        for batch in chunk {
                            let mut local = WalkHistory::new();
                            for walk in batch {
                                local.record_walk(walk);
                            }
                            shared.merge(&local);
                        }
                    });
                }
            });
            assert_eq!(HistoryView::walk_count(&*shared), oracle.walk_count());
            for step in 0..oracle.max_recorded_length() + 1 {
                for node in 0..25u32 {
                    assert_eq!(
                        HistoryView::count_at(&*shared, NodeId(node), step),
                        oracle.count_at(NodeId(node), step),
                        "width {width} diverged at ({node}, {step})"
                    );
                }
            }
            // The export round-trips the same counts.
            let export = shared.export();
            assert_eq!(export.walk_count(), oracle.walk_count());
            assert_eq!(export.max_recorded_length(), oracle.max_recorded_length());

            // Overlay = shared + pending, exactly.
            let mut pending = WalkHistory::new();
            pending.record_walk(&[NodeId(rng.gen_range(0u32..25))]);
            let overlay = OverlayHistory::new(&shared, &pending);
            for node in 0..25u32 {
                assert_eq!(
                    overlay.count_at(NodeId(node), 0),
                    HistoryView::count_at(&*shared, NodeId(node), 0)
                        + pending.count_at(NodeId(node), 0)
                );
            }
        }
    }
}

/// A cooperative engine job's accepted-node multiset is pinned to the
/// width-1 oracle at pool widths 1, 2, and 4 — the engine-level face of the
/// merge-order independence above.
#[test]
fn prop_cooperative_jobs_match_width_one_oracle_at_widths_1_2_4() {
    let mut rng = StdRng::seed_from_u64(0x1A07);
    for _ in 0..4 {
        let n = rng.gen_range(150usize..400);
        let graph_seed = rng.gen_range(0u64..500);
        let samples = rng.gen_range(6usize..16);
        let walkers = rng.gen_range(2usize..5);
        let job_seed = rng.gen_range(0u64..1_000);
        let osn = SimulatedOsn::new(barabasi_albert(n, 3, graph_seed).unwrap());
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, samples, job_seed)
            .with_walkers(walkers)
            .with_history(HistoryMode::Cooperative)
            .with_diameter_estimate(4);
        let oracle = Engine::with_threads(1).run(&osn, &job).unwrap();
        for width in [2usize, 4] {
            osn.reset_counters();
            let run = Engine::with_threads(width).run(&osn, &job).unwrap();
            assert_eq!(
                oracle.sorted_nodes(),
                run.sorted_nodes(),
                "width {width} diverged for (n={n}, samples={samples}, walkers={walkers})"
            );
        }
    }
}

/// Aggregate estimators never produce values outside the range of the
/// observed sample values, whichever weighting scheme is used.
#[test]
fn prop_estimators_stay_within_observed_range() {
    let mut rng = StdRng::seed_from_u64(0x1A05);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..40);
        let values: Vec<(f64, usize)> = (0..len)
            .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(1usize..50)))
            .collect();
        let samples: Vec<SampleValue> = values
            .iter()
            .enumerate()
            .map(|(i, &(v, d))| SampleValue {
                node: NodeId::new(i),
                value: v,
                degree: d,
            })
            .collect();
        let lo = values.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let hi = values.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        for scheme in [WeightingScheme::Uniform, WeightingScheme::InverseDegree] {
            let est = estimate_average(&samples, scheme);
            assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }
}
