//! Acceptance bar of the `wnw-telemetry` observability layer:
//!
//! * histogram quantiles stay within one log-bucket (≤ 35 % relative error
//!   here, with margin over the 25 % design bound) of the exact order
//!   statistic on seeded uniform and heavy-tailed (zipf-like) draws;
//! * a real `SamplingService` run leaves every finished job a well-formed
//!   lifecycle trace — exactly one `submitted` and one `finished`, in that
//!   order, with monotone timestamps — and fills the latency histograms;
//! * turning telemetry off silences the trace log and the per-round
//!   histogram without touching the sampling results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::prelude::*;
use walk_not_wait::telemetry::prometheus::validate;
use wnw_access::SimulatedOsn;

/// Exact empirical quantile of a sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_quantiles_close(values: Vec<u64>, what: &str) {
    let hist = Histogram::new();
    for &v in &values {
        hist.record(v);
    }
    let mut sorted = values;
    sorted.sort_unstable();
    let snap = hist.snapshot();
    assert_eq!(snap.count, sorted.len() as u64);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let exact = exact_quantile(&sorted, q) as f64;
        let estimate = snap.quantile(q) as f64;
        let error = (estimate - exact).abs() / exact;
        assert!(
            error <= 0.35,
            "{what} q={q}: estimate {estimate} vs exact {exact} (error {error:.3})"
        );
    }
    assert_eq!(snap.quantile(0.0), sorted[0], "{what}: exact min");
    assert_eq!(
        snap.quantile(1.0),
        *sorted.last().unwrap(),
        "{what}: exact max"
    );
}

#[test]
fn quantiles_track_seeded_uniform_draws() {
    let mut rng = StdRng::seed_from_u64(61);
    let values: Vec<u64> = (0..20_000)
        .map(|_| rng.gen_range(1u64..1_000_000))
        .collect();
    assert_quantiles_close(values, "uniform");
}

#[test]
fn quantiles_track_seeded_heavy_tailed_draws() {
    // Zipf-like tail via inverse-CDF of a power law: most mass near 1, a
    // few draws orders of magnitude out — the adversarial case for a
    // log-bucketed histogram's relative error.
    let mut rng = StdRng::seed_from_u64(62);
    let values: Vec<u64> = (0..20_000)
        .map(|_| {
            let u: f64 = rng.gen();
            ((1.0 / (1.0 - u)).powf(1.7) as u64).clamp(1, u64::MAX)
        })
        .collect();
    assert_quantiles_close(values, "zipf");
}

/// One service round-trip: submit `jobs` requests, wait them out, return
/// the service (so the caller can inspect metrics and traces) plus the ids.
fn run_jobs(service: &SamplingService<SimulatedOsn>, jobs: usize) -> Vec<u64> {
    let mut ids = Vec::new();
    let mut streams = Vec::new();
    for i in 0..jobs {
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 6, 100 + i as u64)
            .with_walkers(2)
            .with_diameter_estimate(5);
        let ticket = service.submit(SampleRequest::new(job)).expect("admitted");
        ids.push(ticket.id.0);
        streams.push(ticket.stream);
    }
    for stream in streams {
        let outcome = stream.wait().expect("outcome");
        assert_eq!(outcome.status, JobStatus::Completed);
    }
    ids
}

#[test]
fn service_traces_are_well_formed_and_histograms_fill() {
    let osn = SimulatedOsn::new(barabasi_albert(400, 3, 9).unwrap());
    let service = SamplingService::builder(osn).pool_threads(2).build();
    let ids = run_jobs(&service, 3);

    for id in &ids {
        let events = service.trace().events_for(*id);
        assert!(!events.is_empty(), "job {id} left a trace");
        let labels: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels.iter().filter(|l| **l == "submitted").count(),
            1,
            "job {id}: exactly one submitted, got {labels:?}"
        );
        assert_eq!(
            labels.iter().filter(|l| **l == "finished").count(),
            1,
            "job {id}: exactly one finished, got {labels:?}"
        );
        assert_eq!(labels.first(), Some(&"submitted"), "{labels:?}");
        assert_eq!(labels.last(), Some(&"finished"), "{labels:?}");
        assert!(labels.contains(&"admitted"), "{labels:?}");
        assert!(labels.contains(&"first_round"), "{labels:?}");
        assert!(labels.contains(&"sample_published"), "{labels:?}");
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "job {id}: timestamps are monotone"
        );
        // The finished event carries the terminal label.
        assert!(matches!(
            events.last().unwrap().kind,
            TraceEventKind::Finished {
                status: "completed"
            }
        ));
        // `first_round` precedes `sample_published`: no sample before work.
        let first_round = labels.iter().position(|l| *l == "first_round").unwrap();
        let first_sample = labels
            .iter()
            .position(|l| *l == "sample_published")
            .unwrap();
        assert!(first_round < first_sample, "{labels:?}");
    }

    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_completed, 3);
    assert_eq!(metrics.queue_wait_histogram.count, 3);
    assert_eq!(metrics.latency_histogram.count, 3);
    assert_eq!(metrics.first_sample_histogram.count, 3);
    assert_eq!(metrics.job_cost_histogram.count, 3);
    assert!(
        metrics.round_duration_histogram.count > 0,
        "telemetry defaults on: rounds are timed"
    );
    assert!(
        metrics.latency_histogram.min >= metrics.queue_wait_histogram.min,
        "a job's latency includes its queue wait"
    );
}

#[test]
fn shared_read_jobs_trace_history_lookups() {
    let osn = SimulatedOsn::new(barabasi_albert(400, 3, 9).unwrap());
    let service = SamplingService::builder(osn).pool_threads(1).build();
    let job = |seed| {
        SampleJob::walk_estimate(RandomWalkKind::Simple, 5, seed)
            .with_walkers(2)
            .with_diameter_estimate(5)
    };
    // First publisher misses the store; a second reader hits it.
    let first = service
        .submit(SampleRequest::new(job(1)).with_history_policy(HistoryPolicy::SharedPublish))
        .unwrap();
    let first_id = first.id.0;
    assert!(first.stream.wait().is_some());
    let second = service
        .submit(SampleRequest::new(job(2)).with_history_policy(HistoryPolicy::SharedReadOnly))
        .unwrap();
    let second_id = second.id.0;
    assert!(second.stream.wait().is_some());

    let miss: Vec<&str> = service
        .trace()
        .events_for(first_id)
        .iter()
        .map(|e| e.kind.label())
        .collect::<Vec<_>>();
    assert!(miss.contains(&"history_miss"), "{miss:?}");
    let hit: Vec<&str> = service
        .trace()
        .events_for(second_id)
        .iter()
        .map(|e| e.kind.label())
        .collect::<Vec<_>>();
    assert!(hit.contains(&"history_hit"), "{hit:?}");
    service.shutdown();
}

#[test]
fn telemetry_off_disables_tracing_and_round_timing() {
    let osn = SimulatedOsn::new(barabasi_albert(400, 3, 9).unwrap());
    let service = SamplingService::builder(osn)
        .pool_threads(1)
        .telemetry(false)
        .build();
    let ids = run_jobs(&service, 2);
    assert!(!service.trace().enabled());
    for id in &ids {
        assert!(
            service.trace().events_for(*id).is_empty(),
            "telemetry off: no trace for job {id}"
        );
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_completed, 2, "sampling is unaffected");
    assert!(
        metrics.round_duration_histogram.is_empty(),
        "per-round timing is gated off"
    );
    // Job-level distributions stay on: they cost a few atomics per job.
    assert_eq!(metrics.latency_histogram.count, 2);
}

#[test]
fn live_service_snapshot_renders_to_valid_prometheus_text() {
    let osn = SimulatedOsn::new(barabasi_albert(400, 3, 9).unwrap());
    let service = SamplingService::builder(osn).pool_threads(1).build();
    run_jobs(&service, 2);
    let metrics = service.shutdown();
    let text = walk_not_wait::gateway::prom::exposition(&metrics);
    let stats = validate(&text).expect("live snapshot validates");
    assert!(stats.series >= 20, "got {} series", stats.series);
    // Five latency/cost histograms plus the resilience layer's
    // retries-per-call distribution.
    assert_eq!(stats.histograms, 6);
    assert!(text.contains("wnw_jobs_completed_total 2"));
    assert!(text.contains("wnw_time_to_first_sample_us_count 2"));
}
