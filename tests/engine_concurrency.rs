//! Engine-level integration tests through the facade crate: same-seed
//! determinism across worker-thread counts, and exact query accounting on a
//! shared cache under contention.

use std::sync::Arc;
use walk_not_wait::access::QueryStats;
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::graph::NodeId;
use walk_not_wait::prelude::*;

fn osn(n: usize, seed: u64) -> SimulatedOsn {
    SimulatedOsn::new(barabasi_albert(n, 3, seed).unwrap())
}

/// The acceptance bar of the engine: for a fixed seed, the accepted-sample
/// multiset of a job is identical at 1, 2, and 8 worker threads — in both
/// history modes — and the pool's query cost never exceeds what the same
/// walkers would pay uncached.
#[test]
fn same_seed_same_samples_at_1_2_and_8_threads() {
    let network = osn(1_000, 5);
    for history in [HistoryMode::Cooperative, HistoryMode::Independent] {
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 48, 0xD5)
            .with_walkers(8)
            .with_history(history)
            .with_diameter_estimate(5);
        let mut reports = Vec::new();
        for threads in [1usize, 2, 8] {
            network.reset_counters();
            reports.push(Engine::with_threads(threads).run(&network, &job).unwrap());
        }
        let reference = &reports[0];
        assert_eq!(reference.len(), 48);
        for report in &reports[1..] {
            assert_eq!(
                reference.sorted_nodes(),
                report.sorted_nodes(),
                "multiset diverged under {history:?}"
            );
            // Even the per-walker sequences and metering agree.
            for (a, b) in reference.walkers.iter().zip(&report.walkers) {
                assert_eq!(a.samples, b.samples);
                assert_eq!(a.stats, b.stats);
            }
            assert_eq!(
                reference.pool_stats.unique_nodes,
                report.pool_stats.unique_nodes
            );
        }
        for report in &reports {
            assert!(report.query_cost() <= report.uncached_query_cost());
        }
    }
}

/// 8 walkers hammering one `CachedNetwork`: `unique_nodes` must count every
/// node exactly once (no double-charging from racing misses, no lost
/// updates), and `api_calls` must account for every call.
#[test]
fn cache_stress_unique_nodes_is_exact() {
    let n = 1_000usize;
    let network = osn(n, 9);
    let cache = Arc::new(CachedNetwork::new(network));
    let sweeps = 4;
    std::thread::scope(|scope| {
        for walker in 0..8usize {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                // Each walker sweeps the whole graph several times, starting
                // at a different offset so misses collide across threads.
                for sweep in 0..sweeps {
                    for i in 0..n {
                        let v = NodeId(((i * 7 + walker * 131 + sweep * 17) % n) as u32);
                        cache.neighbors(v).unwrap();
                    }
                }
            });
        }
    });
    let stats = cache.query_stats();
    assert_eq!(
        stats.unique_nodes, n as u64,
        "each node charged exactly once"
    );
    assert_eq!(
        stats.api_calls,
        (8 * sweeps * n) as u64,
        "every call accounted for"
    );
    assert_eq!(stats.api_calls - stats.cache_hits, stats.unique_nodes);
    // The wrapped network was consulted exactly once per node as well.
    assert_eq!(cache.inner().query_stats().unique_nodes, n as u64);
    assert_eq!(cache.inner().query_stats().api_calls, n as u64);
}

/// Per-walker metered views over one cache stay exact under contention.
#[test]
fn metered_views_stay_exact_under_contention() {
    let n = 500usize;
    let network = osn(n, 13);
    let cache = CachedNetwork::new(network);
    let per_walker: Vec<QueryStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8usize)
            .map(|walker| {
                let cache = &cache;
                scope.spawn(move || {
                    let view = MeteredNetwork::new(cache);
                    for i in 0..n {
                        let v = NodeId(((i + walker * 61) % n) as u32);
                        view.neighbors(v).unwrap();
                    }
                    view.query_stats()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for stats in &per_walker {
        assert_eq!(stats.unique_nodes, n as u64);
        assert_eq!(stats.api_calls, n as u64);
    }
    assert_eq!(cache.query_stats().unique_nodes, n as u64);
}
