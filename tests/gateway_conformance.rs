//! Gateway wire-protocol conformance:
//!
//! * **Stream invariants** over the chunked NDJSON protocol, for isolated
//!   and shared-history jobs alike: `progress` totals are monotone
//!   non-decreasing, exactly one terminal `done` event is delivered, and no
//!   event ever follows it;
//! * **Registry TTL sweep end to end**: an unclaimed fire-and-forget job is
//!   reaped after the claim TTL, its (partial) walk history is still
//!   published to the cross-job store, and a `DELETE` after the reap
//!   answers `404`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};
use walk_not_wait::gateway::json::Json;
use walk_not_wait::gateway::{client, GatewayConfig, GatewayServer};
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::prelude::*;

fn server_with(claim_ttl: Duration) -> GatewayServer<SimulatedOsn> {
    let osn = SimulatedOsn::new(barabasi_albert(500, 3, 13).unwrap());
    let service = SamplingService::builder(osn).pool_threads(2).build();
    let config = GatewayConfig {
        claim_ttl,
        ..GatewayConfig::default()
    };
    GatewayServer::bind_with(service, "127.0.0.1:0", config).expect("bind loopback")
}

fn submit(addr: SocketAddr, body: &Json) -> (u64, String) {
    let resp = client::post(addr, "/v1/jobs", body).expect("POST /v1/jobs");
    assert_eq!(resp.status, 202);
    let doc = resp.json().unwrap();
    (
        doc.get("job_id").unwrap().as_u64().unwrap(),
        doc.get("stream").unwrap().as_str().unwrap().to_string(),
    )
}

fn job_body(samples: u64, seed: u64, history_policy: Option<&str>) -> Json {
    let mut fields = vec![
        ("samples", Json::UInt(samples)),
        ("seed", Json::UInt(seed)),
        ("walkers", Json::UInt(3)),
        ("diameter_estimate", Json::UInt(4)),
    ];
    if let Some(policy) = history_policy {
        fields.push(("history_policy", Json::str(policy)));
    }
    Json::obj(fields)
}

/// Walks one job's NDJSON stream asserting every protocol invariant, and
/// returns how many samples were streamed.
fn assert_stream_conformance(addr: SocketAddr, path: &str, requested: u64) -> u64 {
    let mut samples = 0u64;
    let mut done_events = 0u64;
    let mut events_after_done = 0u64;
    let mut last_progress_samples = 0u64;
    let mut last_progress_rounds = 0u64;
    let mut last_query_cost = 0u64;
    for event in client::open_stream(addr, path).expect("open stream") {
        let event = event.expect("well-formed NDJSON line");
        if done_events > 0 {
            events_after_done += 1;
            continue;
        }
        match event.get("event").and_then(Json::as_str) {
            Some("sample") => samples += 1,
            Some("progress") => {
                let progress_samples = event.get("samples").unwrap().as_u64().unwrap();
                let rounds = event.get("rounds").unwrap().as_u64().unwrap();
                let query_cost = event.get("query_cost").unwrap().as_u64().unwrap();
                assert!(
                    progress_samples >= last_progress_samples,
                    "progress samples regressed: {progress_samples} < {last_progress_samples}"
                );
                assert!(
                    rounds > last_progress_rounds,
                    "progress rounds must strictly advance"
                );
                assert!(query_cost >= last_query_cost, "query cost regressed");
                assert_eq!(
                    progress_samples, samples,
                    "progress must count exactly the samples already streamed"
                );
                assert_eq!(event.get("requested").unwrap().as_u64(), Some(requested));
                last_progress_samples = progress_samples;
                last_progress_rounds = rounds;
                last_query_cost = query_cost;
            }
            Some("done") => {
                done_events += 1;
                assert_eq!(event.get("status").unwrap().as_str(), Some("completed"));
                assert_eq!(event.get("samples").unwrap().as_u64(), Some(samples));
                assert_eq!(event.get("requested").unwrap().as_u64(), Some(requested));
            }
            other => panic!("unknown event discriminator {other:?}"),
        }
    }
    assert_eq!(done_events, 1, "exactly one terminal done event");
    assert_eq!(events_after_done, 0, "no events after done");
    assert_eq!(samples, requested);
    samples
}

/// Stream invariants hold for an isolated job, a publishing job, and a
/// reusing job admitted after the publication — the shared-history path
/// changes what walkers compute, never the event protocol.
#[test]
fn ndjson_streams_conform_for_isolated_and_shared_jobs() {
    let server = server_with(Duration::from_secs(60));
    let addr = server.local_addr();

    let (_, isolated_path) = submit(addr, &job_body(17, 0x10, None));
    assert_stream_conformance(addr, &isolated_path, 17);

    let (_, publish_path) = submit(addr, &job_body(20, 0x11, Some("shared_publish")));
    assert_stream_conformance(addr, &publish_path, 20);

    // Admitted after the publisher's Done: snapshots epoch 1 and reuses.
    let (_, reuse_path) = submit(addr, &job_body(14, 0x12, Some("shared_read")));
    assert_stream_conformance(addr, &reuse_path, 14);

    let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
    let history = metrics.get("history").expect("history object");
    assert_eq!(history.get("publications").unwrap().as_u64(), Some(1));
    assert_eq!(history.get("hits").unwrap().as_u64(), Some(1));
    assert!(history.get("reuse_savings").unwrap().as_u64().unwrap() > 0);
    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_completed, 3);
}

/// End-to-end registry TTL sweep: a fire-and-forget `shared_publish` job
/// whose stream is never claimed is reaped on the next submission (TTL 0),
/// its partial history still lands in the store, and both `DELETE` and the
/// stream route answer `404` afterwards.
#[test]
fn ttl_sweep_reaps_unclaimed_job_but_still_publishes_its_history() {
    let server = server_with(Duration::ZERO);
    let addr = server.local_addr();

    // Fire and forget: a huge publishing job nobody ever streams.
    let (abandoned_id, abandoned_path) =
        submit(addr, &job_body(1_000_000, 0x21, Some("shared_publish")));

    // Give the scheduler time to run at least one round so the abandoned
    // job has recorded walks to publish when it is reaped.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
        if metrics
            .get("pool")
            .unwrap()
            .get("unique_nodes")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
        {
            break;
        }
        assert!(Instant::now() < deadline, "job never started sampling");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The next submission sweeps the unclaimed entry (TTL zero): the
    // abandoned job is cancelled via the hang-up path and reaped.
    let (_, small_path) = submit(addr, &job_body(5, 0x22, None));
    assert_stream_conformance(addr, &small_path, 5);

    // The reap cancelled the job and its partial history was published.
    let deadline = Instant::now() + Duration::from_secs(20);
    let metrics = loop {
        let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
        if metrics.get("jobs_cancelled").unwrap().as_u64() == Some(1) {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned job was never reaped; metrics: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    let history = metrics.get("history").expect("history object");
    assert_eq!(
        history.get("publications").unwrap().as_u64(),
        Some(1),
        "the reaped job's partial history must still be published"
    );
    assert!(history.get("published_walks").unwrap().as_u64().unwrap() > 0);

    // After the reap, the registry entry is gone: DELETE and the stream
    // route both answer 404.
    assert_eq!(
        client::delete(addr, &format!("/v1/jobs/{abandoned_id}"))
            .unwrap()
            .status,
        404,
        "DELETE after reap must be 404"
    );
    assert_eq!(client::get(addr, &abandoned_path).unwrap().status, 404);

    // A later publishing job is admitted at the bumped epoch and reuses the
    // reaped job's walks: cross-job savings survive abandonment.
    let (_, follow_path) = submit(addr, &job_body(6, 0x23, Some("shared_read")));
    assert_stream_conformance(addr, &follow_path, 6);
    let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
    let history = metrics.get("history").expect("history object");
    assert_eq!(history.get("hits").unwrap().as_u64(), Some(1));
    assert!(history.get("reuse_savings").unwrap().as_u64().unwrap() > 0);

    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_cancelled, 1);
    assert_eq!(snapshot.jobs_completed, 2);
    assert_eq!(snapshot.history.publications, 1);
}

/// `/healthz` is a structured liveness document, not a bare 200: probes
/// can log the build version and detect counter resets via the uptime.
#[test]
fn healthz_reports_status_version_and_uptime() {
    let server = server_with(Duration::from_secs(60));
    let addr = server.local_addr();
    let resp = client::get(addr, "/healthz").unwrap();
    assert_eq!(resp.status, 200);
    let doc = resp.json().unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    let version = doc.get("version").unwrap().as_str().unwrap();
    assert!(
        !version.is_empty() && version.split('.').count() == 3,
        "semver-shaped version, got {version:?}"
    );
    let uptime = doc.get("uptime_seconds").unwrap().as_u64().unwrap();
    assert!(uptime < 3600, "a fresh server reports a fresh uptime");
    server.shutdown();
}

/// A completed job's lifecycle replays over the wire: one `submitted`, one
/// `finished`, monotone microsecond timestamps in between.
#[test]
fn trace_endpoint_replays_a_completed_job() {
    let server = server_with(Duration::from_secs(60));
    let addr = server.local_addr();
    let (id, path) = submit(addr, &job_body(5, 0x31, None));
    assert_stream_conformance(addr, &path, 5);

    let resp = client::get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
    assert_eq!(resp.status, 200);
    let Json::Arr(events) = resp.json().unwrap() else {
        panic!("trace body must be a JSON array");
    };
    let labels: Vec<String> = events
        .iter()
        .map(|e| e.get("event").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(labels.iter().filter(|l| *l == "submitted").count(), 1);
    assert_eq!(labels.iter().filter(|l| *l == "finished").count(), 1);
    assert_eq!(labels.first().map(String::as_str), Some("submitted"));
    assert_eq!(labels.last().map(String::as_str), Some("finished"));
    let stamps: Vec<u64> = events
        .iter()
        .map(|e| e.get("at_us").unwrap().as_u64().unwrap())
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    // Every round_completed event carries its query charge.
    assert!(events
        .iter()
        .filter(|e| e.get("event").unwrap().as_str() == Some("round_completed"))
        .all(|e| e.get("queries").unwrap().as_u64().is_some()));
    assert_eq!(
        client::get(addr, "/v1/jobs/424242/trace").unwrap().status,
        404,
        "unknown jobs have no trace"
    );
    server.shutdown();
}
