//! Acceptance bar of cross-job walk-history reuse (the service-scoped
//! `HistoryStore`), property-style over seeded request streams:
//!
//! * with an **empty store**, `SharedReadOnly` jobs reproduce the exact
//!   multisets of `Isolated` jobs (and of direct engine runs) — opting in
//!   costs nothing until something has been published;
//! * results under shared policies are **deterministic given an admission
//!   order**: replaying a publish-then-reuse schedule reproduces every
//!   multiset, and the published history is what makes the reusing run
//!   differ from its isolated twin;
//! * the **snapshot-on-admit epoch rule**: jobs admitted in the same epoch
//!   are unaffected by each other's (later) publications;
//! * a second identical job admitted after the first publishes shows
//!   **measurable reuse savings** in `ServiceMetricsSnapshot.history`.

use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::graph::NodeId;
use walk_not_wait::prelude::*;

fn osn(seed: u64) -> SimulatedOsn {
    SimulatedOsn::new(barabasi_albert(600, 3, seed).unwrap())
}

fn service(paused: bool) -> SamplingService<SimulatedOsn> {
    let builder = SamplingService::builder(osn(7)).pool_threads(2);
    if paused {
        builder.start_paused().build()
    } else {
        builder.build()
    }
}

fn we_job(samples: usize, seed: u64) -> SampleJob {
    SampleJob::walk_estimate(RandomWalkKind::Simple, samples, seed)
        .with_walkers(3)
        .with_diameter_estimate(4)
}

fn run_one(
    service: &SamplingService<SimulatedOsn>,
    job: SampleJob,
    policy: HistoryPolicy,
) -> Vec<NodeId> {
    let ticket = service
        .submit(SampleRequest::new(job).with_history_policy(policy))
        .unwrap();
    let (samples, outcome) = ticket.stream.collect_all();
    assert_eq!(outcome.unwrap().status, JobStatus::Completed);
    let mut nodes: Vec<NodeId> = samples.iter().map(|s| s.node).collect();
    nodes.sort_unstable();
    nodes
}

/// Property: over a seeded stream of job shapes, a `SharedReadOnly` job on
/// a service whose store is still empty produces exactly the multiset of
/// the same request under `Isolated` — which in turn matches a direct
/// engine run of the same job.
#[test]
fn shared_read_only_on_an_empty_store_matches_isolated() {
    for (samples, seed) in [(12usize, 0xE1u64), (21, 0xE2), (9, 0xE3)] {
        let isolated = run_one(
            &service(false),
            we_job(samples, seed),
            HistoryPolicy::Isolated,
        );

        let svc = service(false);
        let shared = run_one(&svc, we_job(samples, seed), HistoryPolicy::SharedReadOnly);
        assert_eq!(
            isolated, shared,
            "empty-store SharedReadOnly must equal Isolated for ({samples}, {seed:#x})"
        );
        let stats = svc.history_stats();
        assert_eq!(stats.misses, 1, "the read policy consulted the store");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.publications, 0, "read-only jobs never publish");
        assert_eq!(stats.epoch, 0);

        let network = osn(7);
        let report = Engine::with_threads(2)
            .run(&network, &we_job(samples, seed))
            .unwrap();
        assert_eq!(isolated, report.sorted_nodes());
    }
}

/// Determinism given an admission order: the schedule "A publishes, then C
/// reuses" reproduces identical multisets when replayed on a fresh
/// service — and the reused history is real: C's seeded multiset differs
/// from C's empty-store (isolated-equal) multiset.
#[test]
fn admission_order_determines_results_deterministically() {
    let publisher = || we_job(24, 0xA0);
    let reuser = || we_job(18, 0xC0);

    let run_schedule = || {
        let svc = service(false);
        // Publication completes (Done observed) before the reuser is
        // submitted, so the reuser's admission snapshot is epoch 1.
        let a = run_one(&svc, publisher(), HistoryPolicy::SharedPublish);
        let c = run_one(&svc, reuser(), HistoryPolicy::SharedReadOnly);
        let stats = svc.history_stats();
        assert_eq!(stats.publications, 1);
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.hits, 1, "the reuser found the published history");
        assert!(stats.published_walks > 0);
        (a, c)
    };

    let (a1, c1) = run_schedule();
    let (a2, c2) = run_schedule();
    assert_eq!(a1, a2, "publisher multiset must replay identically");
    assert_eq!(
        c1, c2,
        "reusing multiset must replay identically given the same admission order"
    );

    // The snapshot C was admitted with is what shapes its results: with no
    // prior publication the same request draws a different multiset.
    let c_unseeded = run_one(&service(false), reuser(), HistoryPolicy::SharedReadOnly);
    assert_ne!(
        c1, c_unseeded,
        "published history must actually influence the reusing job"
    );
}

/// Snapshot-on-admit: two shared jobs admitted together (same epoch, empty
/// store) cannot observe each other's publications — each reproduces its
/// isolated twin exactly, even though both ran concurrently and both
/// published at reap.
#[test]
fn jobs_admitted_in_the_same_epoch_do_not_couple() {
    let job_x = || we_job(16, 0x51);
    let job_y = || we_job(11, 0x52);
    let isolated_x = run_one(&service(false), job_x(), HistoryPolicy::Isolated);
    let isolated_y = run_one(&service(false), job_y(), HistoryPolicy::Isolated);

    // Paused service: both jobs are pending when the scheduler resumes, so
    // both are promoted — and snapshot the (empty) store — in the same
    // scheduling cycle, before either publishes.
    let svc = service(true);
    let tx = svc
        .submit(SampleRequest::new(job_x()).with_history_policy(HistoryPolicy::SharedPublish))
        .unwrap();
    let ty = svc
        .submit(SampleRequest::new(job_y()).with_history_policy(HistoryPolicy::SharedPublish))
        .unwrap();
    svc.resume();
    let (sx, ox) = tx.stream.collect_all();
    let (sy, oy) = ty.stream.collect_all();
    assert_eq!(ox.unwrap().status, JobStatus::Completed);
    assert_eq!(oy.unwrap().status, JobStatus::Completed);
    let sorted = |records: &[walk_not_wait::mcmc::sampler::SampleRecord]| {
        let mut nodes: Vec<NodeId> = records.iter().map(|r| r.node).collect();
        nodes.sort_unstable();
        nodes
    };
    assert_eq!(
        sorted(&sx),
        isolated_x,
        "same-epoch job X must stay isolated"
    );
    assert_eq!(
        sorted(&sy),
        isolated_y,
        "same-epoch job Y must stay isolated"
    );
    let stats = svc.history_stats();
    assert_eq!(stats.publications, 2, "both jobs published at reap");
    assert_eq!(stats.hits, 0, "the store was empty when both were admitted");
    assert_eq!(stats.misses, 2);
}

/// The acceptance criterion: a second identical job admitted after the
/// first publishes demonstrates measurable query savings, surfaced in
/// `ServiceMetricsSnapshot.history`.
#[test]
fn second_identical_job_reuses_history_and_records_savings() {
    let svc = service(false);
    let job = || we_job(30, 0x99);

    let first = svc
        .submit(SampleRequest::new(job()).with_history_policy(HistoryPolicy::SharedPublish))
        .unwrap();
    let first_outcome = first.stream.wait().unwrap();
    assert_eq!(first_outcome.status, JobStatus::Completed);
    assert!(first_outcome.query_cost > 0);
    let after_first = svc.metrics();
    assert_eq!(after_first.history.publications, 1);
    assert!(after_first.history.published_walks > 0);
    assert_eq!(after_first.history.reuse_savings, 0, "nothing reused yet");

    let second = svc
        .submit(SampleRequest::new(job()).with_history_policy(HistoryPolicy::SharedReadOnly))
        .unwrap();
    let second_outcome = second.stream.wait().unwrap();
    assert_eq!(second_outcome.status, JobStatus::Completed);
    assert_eq!(second_outcome.samples, 30);

    let metrics = svc.metrics();
    assert_eq!(metrics.history.hits, 1);
    assert_eq!(
        metrics.history.reused_walks, after_first.history.published_walks,
        "the second job inherited every published walk"
    );
    assert_eq!(
        metrics.history.reuse_savings, first_outcome.query_cost,
        "the savings are the queries the first job spent building the reused history"
    );
    assert!(
        metrics.history.reuse_savings > 0,
        "savings must be measurable"
    );
    assert_eq!(svc.history_stats(), metrics.history);
}

/// Both correction modes complete and replay deterministically; the
/// correction is part of the request contract, so the two modes may
/// legitimately shape the multiset differently.
#[test]
fn reuse_correction_modes_are_deterministic_request_state() {
    let run_with = |correction: ReuseCorrection| {
        let svc = service(false);
        let _ = run_one(&svc, we_job(20, 0x71), HistoryPolicy::SharedPublish);
        let ticket = svc
            .submit(
                SampleRequest::new(we_job(14, 0x72))
                    .with_history_policy(HistoryPolicy::SharedReadOnly)
                    .with_reuse_correction(correction),
            )
            .unwrap();
        let (samples, outcome) = ticket.stream.collect_all();
        assert_eq!(outcome.unwrap().status, JobStatus::Completed);
        let mut nodes: Vec<NodeId> = samples.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes
    };
    assert_eq!(
        run_with(ReuseCorrection::Reweighted),
        run_with(ReuseCorrection::Reweighted)
    );
    assert_eq!(
        run_with(ReuseCorrection::Raw),
        run_with(ReuseCorrection::Raw)
    );
}
