//! Regression tests for the persistent round-barrier worker pool: the
//! zero-spawn guarantee (observable through [`PoolStats`]), the inline fast
//! path for width-1 and wound-down jobs, determinism of pool execution vs
//! the scoped-spawn dispatch it replaced, and the service-level round
//! accounting that ties every scheduled round to exactly one pool round.

use std::sync::Arc;
use walk_not_wait::engine::{scatter_map, Engine, SampleJob};
use walk_not_wait::prelude::*;
use wnw_graph::generators::random::barabasi_albert;

fn osn(n: usize, seed: u64) -> SimulatedOsn {
    SimulatedOsn::new(barabasi_albert(n, 3, seed).unwrap())
}

/// A 1-walker job on a wide shared pool: every round has a single live
/// task, so every round takes the inline spawnless path — the parked
/// workers are never woken for it.
#[test]
fn width_one_jobs_never_touch_the_pool_workers() {
    let pool = Arc::new(WorkerPool::new(4));
    let engine = Engine::with_pool(Arc::clone(&pool));
    let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 8, 11)
        .with_walkers(1)
        .with_diameter_estimate(4);
    let report = engine.run(&osn(300, 7), &job).unwrap();
    assert_eq!(report.len(), 8);

    let stats = pool.stats();
    assert_eq!(stats.workers, 3, "width-4 pool spawned exactly 3 workers");
    assert_eq!(
        stats.rounds_dispatched, 0,
        "a 1-walker job must never fan out: {stats:?}"
    );
    assert_eq!(stats.worker_wakeups, 0, "no worker ever woke: {stats:?}");
    assert!(stats.spawnless_rounds > 0, "rounds ran inline: {stats:?}");
}

/// A multi-walker job whose walkers finish unevenly: once it winds down to
/// one live walker, the remaining rounds run inline — the inline draw path
/// stays spawn-free even mid-job on a wide pool.
#[test]
fn wound_down_jobs_draw_inline() {
    let pool = Arc::new(WorkerPool::new(4));
    let engine = Engine::with_pool(Arc::clone(&pool));
    // 4 walkers, 9 samples: quotas split 3/2/2/2, so after two rounds the
    // job winds down to walker 0 alone for its third sample.
    let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 9, 13)
        .with_walkers(4)
        .with_diameter_estimate(4);
    let report = engine.run(&osn(300, 9), &job).unwrap();
    assert_eq!(report.len(), 9);

    let stats = pool.stats();
    assert!(
        stats.rounds_dispatched >= 1,
        "full-width rounds fan out: {stats:?}"
    );
    assert!(
        stats.spawnless_rounds >= 1,
        "the wind-down round runs inline: {stats:?}"
    );
    assert!(
        stats.worker_wakeups <= stats.rounds_dispatched * stats.workers,
        "wakeups only for dispatched rounds: {stats:?}"
    );
}

/// The zero-spawn guarantee, made observable: the pool's worker count is
/// fixed at startup and never grows, no matter how many rounds — engine
/// jobs and scatter_map fan-outs alike — run on it.
#[test]
fn pool_never_spawns_after_startup() {
    let pool = Arc::new(WorkerPool::new(3));
    assert_eq!(pool.stats().workers, 2);

    let engine = Engine::with_pool(Arc::clone(&pool));
    let network = osn(400, 21);
    for seed in 0..4u64 {
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 12, seed)
            .with_walkers(4)
            .with_diameter_estimate(4);
        engine.run(&network, &job).unwrap();
    }
    let doubled = scatter_map(&pool, (0..100u64).collect(), |i, x| {
        assert_eq!(i as u64, x);
        x * 2
    });
    assert_eq!(doubled.len(), 100);

    let stats = pool.stats();
    assert_eq!(
        stats.workers, 2,
        "worker count constant after {} dispatched + {} inline rounds",
        stats.rounds_dispatched, stats.spawnless_rounds
    );
    assert!(stats.rounds_dispatched > 0);
}

/// Determinism across dispatchers: the same items produce bit-identical
/// results under (a) a plain sequential loop, (b) the scoped-spawn dispatch
/// the pool replaced (reconstructed here), and (c) `scatter_map` on pools
/// of several widths.
#[test]
fn pool_execution_matches_scoped_spawn_dispatch() {
    fn work(i: usize, x: u64) -> u64 {
        // A deterministic per-item mix, order-sensitive in its inputs.
        let mut v = x ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for _ in 0..50 {
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
        }
        v
    }

    let items: Vec<u64> = (0..61).map(|i| i * 37 + 5).collect();
    let sequential: Vec<u64> = items.iter().enumerate().map(|(i, &x)| work(i, x)).collect();

    // The pre-pool dispatch: round-robin buckets, one scoped thread each.
    let scoped = {
        let threads = 4;
        let mut buckets: Vec<Vec<(usize, u64)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, &item) in items.iter().enumerate() {
            buckets[i % threads].push((i, item));
        }
        let mut slots: Vec<Option<u64>> = vec![None; items.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(i, x)| (i, work(i, x)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().unwrap() {
                    slots[i] = Some(result);
                }
            }
        });
        slots.into_iter().map(Option::unwrap).collect::<Vec<u64>>()
    };
    assert_eq!(scoped, sequential, "scoped-spawn reference self-check");

    for width in [1, 2, 4, 8] {
        let pool = WorkerPool::new(width);
        let pooled = scatter_map(&pool, items.clone(), work);
        assert_eq!(
            pooled, scoped,
            "WorkerPool width {width} diverged from scoped-spawn dispatch"
        );
    }
}

/// Determinism at the engine level: one job's accepted-sample multiset is
/// identical on the inline width-1 path (the sequential baseline the old
/// scoped-spawn dispatch was proven equal to) and on wide pools.
#[test]
fn engine_multisets_invariant_to_pool_width() {
    let network = osn(400, 33);
    let job = SampleJob::walk_estimate(RandomWalkKind::MetropolisHastings, 24, 77)
        .with_walkers(5)
        .with_diameter_estimate(4);
    let baseline = Engine::with_threads(1).run(&network, &job).unwrap();
    for width in [2, 4, 8] {
        let report = Engine::with_threads(width).run(&network, &job).unwrap();
        assert_eq!(
            baseline.sorted_nodes(),
            report.sorted_nodes(),
            "pool width {width} changed the sample multiset"
        );
    }
}

/// Service-level accounting: every round the scheduler steps lands on the
/// shared pool exactly once — dispatched or spawnless — so the pool's
/// counters reconcile with the jobs' reported round totals, and the
/// snapshot surfaces them.
#[test]
fn service_rounds_reconcile_with_pool_counters() {
    let service = SamplingService::builder(osn(500, 41))
        .pool_threads(2)
        .max_active(2)
        .build();
    let wide = service
        .submit(SampleRequest::new(
            walk_not_wait::engine::SampleJob::walk_estimate(RandomWalkKind::Simple, 20, 1)
                .with_walkers(4)
                .with_diameter_estimate(4),
        ))
        .unwrap();
    let narrow = service
        .submit(SampleRequest::new(
            walk_not_wait::engine::SampleJob::walk_estimate(RandomWalkKind::Simple, 6, 2)
                .with_walkers(1)
                .with_diameter_estimate(4),
        ))
        .unwrap();
    let wide_outcome = wide.stream.wait().expect("wide job completes");
    let narrow_outcome = narrow.stream.wait().expect("narrow job completes");
    assert_eq!(wide_outcome.samples, 20);
    assert_eq!(narrow_outcome.samples, 6);

    let metrics = service.shutdown();
    let pool = metrics.worker_pool;
    assert_eq!(pool.workers, 1, "pool_threads(2) spawned one worker");
    assert_eq!(
        pool.rounds_dispatched + pool.spawnless_rounds,
        (wide_outcome.rounds + narrow_outcome.rounds) as u64,
        "every scheduled round hit the pool exactly once: {pool:?}"
    );
    assert!(
        pool.spawnless_rounds >= narrow_outcome.rounds as u64,
        "the 1-walker job's rounds all ran inline: {pool:?}"
    );
    assert!(pool.rounds_dispatched > 0, "the 4-walker job fanned out");
}
