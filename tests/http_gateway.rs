//! Loopback acceptance bar of the `wnw-gateway` HTTP frontend:
//!
//! * two concurrent HTTP clients submit jobs and stream NDJSON samples, and
//!   each client's sample multiset is identical to a direct
//!   `SamplingService` run of the same request (any pool width, under
//!   co-load);
//! * `/v1/metrics` reflects nonzero `shared_cache_savings` and exposes the
//!   queue-wait aggregates and the persistent worker pool's round-dispatch
//!   counters;
//! * a killed connection cancels its job and refunds its unused budget —
//!   the HTTP twin of the drop-stream regression in
//!   `tests/service_concurrency.rs`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};
use walk_not_wait::gateway::json::Json;
use walk_not_wait::gateway::{client, GatewayConfig, GatewayServer};
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::graph::Graph;
use walk_not_wait::prelude::*;

fn graph(n: usize, seed: u64) -> Graph {
    barabasi_albert(n, 3, seed).unwrap()
}

/// The two requests the concurrent clients submit. Same graph region, so
/// the shared cache has something to share.
fn job(samples: usize, seed: u64) -> SampleJob {
    SampleJob::walk_estimate(RandomWalkKind::Simple, samples, seed)
        .with_walkers(3)
        .with_diameter_estimate(5)
}

fn job_body(samples: usize, seed: u64) -> Json {
    Json::obj(vec![
        ("samples", Json::UInt(samples as u64)),
        ("seed", Json::UInt(seed)),
        ("walkers", Json::UInt(3)),
        ("diameter_estimate", Json::UInt(5)),
    ])
}

/// Submits `body` and streams the job to completion, returning the sorted
/// sample-node multiset and the `done` event.
fn submit_and_stream(addr: SocketAddr, body: &Json) -> (Vec<u32>, Json) {
    let accepted = client::post(addr, "/v1/jobs", body).expect("POST /v1/jobs");
    assert_eq!(accepted.status, 202);
    let doc = accepted.json().unwrap();
    let path = doc.get("stream").unwrap().as_str().unwrap().to_string();
    let mut nodes = Vec::new();
    let mut done = None;
    for event in client::open_stream(addr, &path).expect("open stream") {
        let event = event.expect("well-formed NDJSON event");
        match event.get("event").and_then(Json::as_str) {
            Some("sample") => nodes.push(event.get("node").unwrap().as_u64().unwrap() as u32),
            Some("done") => done = Some(event.clone()),
            _ => {}
        }
    }
    nodes.sort_unstable();
    (nodes, done.expect("stream ends with a done event"))
}

/// Acceptance test: two concurrent HTTP clients, multiset equality against
/// direct service runs, and nonzero shared-cache savings in `/v1/metrics`.
#[test]
fn concurrent_http_clients_match_direct_runs_and_share_the_cache() {
    let jobs = [(40usize, 0xAA11u64), (28, 0xBB22)];

    // Reference: each request alone on a direct service (pool width 1).
    let mut direct = Vec::new();
    for &(samples, seed) in &jobs {
        let service = SamplingService::builder(SimulatedOsn::new(graph(1_000, 77)))
            .pool_threads(1)
            .build();
        let ticket = service
            .submit(SampleRequest::new(job(samples, seed)))
            .unwrap();
        let (records, outcome) = ticket.stream.collect_all();
        assert_eq!(outcome.unwrap().samples, samples);
        let mut nodes: Vec<u32> = records.iter().map(|r| r.node.0).collect();
        nodes.sort_unstable();
        direct.push(nodes);
    }

    // The gateway: same requests, submitted and streamed by two concurrent
    // HTTP clients against one service at a different pool width.
    let service = SamplingService::builder(SimulatedOsn::new(graph(1_000, 77)))
        .pool_threads(2)
        .build();
    let server = GatewayServer::bind(service, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    let via_http: Vec<(Vec<u32>, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(samples, seed)| {
                scope.spawn(move || submit_and_stream(addr, &job_body(samples, seed)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, ((nodes, done), reference)) in via_http.iter().zip(&direct).enumerate() {
        assert_eq!(
            done.get("status").unwrap().as_str(),
            Some("completed"),
            "job {i} must complete"
        );
        assert_eq!(
            done.get("samples").unwrap().as_u64().unwrap() as usize,
            jobs[i].0
        );
        assert_eq!(
            nodes, reference,
            "HTTP client {i}'s sample multiset diverged from the direct run"
        );
    }

    // The metrics endpoint shows the cross-job cache effect and queue-wait
    // aggregates.
    let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
    assert_eq!(metrics.get("jobs_completed").unwrap().as_u64(), Some(2));
    assert_eq!(
        metrics.get("samples_delivered").unwrap().as_u64(),
        Some((jobs[0].0 + jobs[1].0) as u64)
    );
    let savings = metrics
        .get("shared_cache_savings")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        savings > 0,
        "two jobs over one cache must save unique-node queries"
    );
    assert_eq!(metrics.get("jobs_started").unwrap().as_u64(), Some(2));
    assert!(metrics
        .get("mean_queue_wait_ms")
        .unwrap()
        .as_f64()
        .is_some());
    assert!(
        metrics.get("max_queue_wait_ms").unwrap().as_f64().unwrap()
            >= metrics.get("mean_queue_wait_ms").unwrap().as_f64().unwrap()
    );
    // The persistent worker pool's round-dispatch counters cross the wire:
    // width-2 pool → one parked worker, and with 2-walker jobs every round
    // either fanned out or (wind-down) ran spawnless — never zero of both.
    let worker_pool = metrics.get("worker_pool").expect("worker_pool object");
    assert_eq!(worker_pool.get("workers").unwrap().as_u64(), Some(1));
    let dispatched = worker_pool
        .get("rounds_dispatched")
        .unwrap()
        .as_u64()
        .unwrap();
    let spawnless = worker_pool
        .get("spawnless_rounds")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        dispatched + spawnless > 0,
        "completed jobs must have run rounds on the pool"
    );
    assert!(worker_pool
        .get("worker_wakeups")
        .unwrap()
        .as_u64()
        .is_some());
    // The latency distributions ride along in the same document.
    let latency = metrics.get("latency_histogram").expect("latency histogram");
    assert_eq!(latency.get("count").unwrap().as_u64(), Some(2));
    assert!(latency.get("p99").unwrap().as_u64().is_some());
    assert_eq!(
        metrics
            .get("first_sample_histogram")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64(),
        Some(2)
    );

    // The same snapshot as a Prometheus scrape: machine-validated grammar,
    // with the three latency histogram families the dashboards key on.
    let scrape = client::get(addr, "/v1/metrics/prometheus").unwrap();
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body.clone()).unwrap();
    let stats =
        walk_not_wait::telemetry::prometheus::validate(&text).expect("valid exposition document");
    assert!(stats.series >= 20, "got only {} series", stats.series);
    for family in [
        "wnw_queue_wait_us",
        "wnw_job_latency_us",
        "wnw_time_to_first_sample_us",
    ] {
        for suffix in ["_bucket{le=\"+Inf\"} 2", "_count 2"] {
            assert!(
                text.contains(&format!("{family}{suffix}")),
                "missing {family}{suffix} in scrape:\n{text}"
            );
        }
    }

    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_finished, 2);
    assert_eq!(snapshot.shared_cache_savings(), savings);
}

/// Killing the TCP connection mid-stream must cancel the job and refund its
/// unused budget through the same drop-hangup path the direct API uses.
#[test]
fn killed_connection_cancels_the_job_and_refunds_budget() {
    let service = SamplingService::builder(SimulatedOsn::new(graph(800, 23)))
        .pool_threads(1)
        .build();
    let server = GatewayServer::bind(service, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    let body = Json::obj(vec![
        ("samples", Json::UInt(1_000_000)),
        ("seed", Json::UInt(0x41)),
        ("walkers", Json::UInt(4)),
        ("budget", Json::UInt(50_000)),
        ("diameter_estimate", Json::UInt(5)),
    ]);
    let accepted = client::post(addr, "/v1/jobs", &body)
        .unwrap()
        .json()
        .unwrap();
    let path = accepted
        .get("stream")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Stream a few events to prove the job is mid-flight, then kill the
    // connection without closing the stream politely.
    let mut stream = client::open_stream(addr, &path).unwrap();
    let mut samples_seen = 0;
    for event in stream.by_ref() {
        if event.unwrap().get("event").unwrap().as_str() == Some("sample") {
            samples_seen += 1;
            if samples_seen >= 3 {
                break;
            }
        }
    }
    assert_eq!(samples_seen, 3);
    drop(stream); // closes the socket with data in flight

    // The gateway notices the dead client at the next write, drops the
    // claimed stream, and the scheduler cancels + refunds. Poll the metrics
    // endpoint until that happens.
    let deadline = Instant::now() + Duration::from_secs(20);
    let final_metrics = loop {
        let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
        if metrics.get("jobs_cancelled").unwrap().as_u64() == Some(1) {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "gateway never cancelled the abandoned job; metrics: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    let refunded = final_metrics
        .get("budget_refunded")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(refunded > 0, "unused budget must be refunded");
    assert!(
        refunded >= 50_000 - 4 * 800,
        "at most walkers x nodes of the budget can have been spent (got {refunded})"
    );

    // The walker slots are free again: a follow-up job completes.
    let (nodes, done) = submit_and_stream(addr, &job_body(6, 0x42));
    assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));
    assert_eq!(nodes.len(), 6);
    assert!(nodes.iter().all(|&n| (n as usize) < 800));

    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_cancelled, 1);
    assert_eq!(snapshot.jobs_completed, 1);
    assert_eq!(snapshot.jobs_running, 0);
    assert_eq!(snapshot.budget_refunded, refunded);
}

/// The full route surface responds sensibly from the facade crate's
/// prelude types (gateway config knobs included).
#[test]
fn gateway_routes_respond_through_the_facade() {
    let service = SamplingService::builder(SimulatedOsn::new(graph(300, 9)))
        .pool_threads(1)
        .build();
    let config = GatewayConfig {
        workers: 2,
        ..GatewayConfig::default()
    };
    let server = GatewayServer::bind_with(service, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    assert_eq!(client::get(addr, "/v1/metrics").unwrap().status, 200);
    assert_eq!(client::get(addr, "/unknown").unwrap().status, 404);
    assert_eq!(client::delete(addr, "/v1/jobs/7").unwrap().status, 404);

    // Invalid body → 400 with a useful message.
    let bad = client::post(addr, "/v1/jobs", &Json::obj(vec![("seed", Json::UInt(1))])).unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad
        .json()
        .unwrap()
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("samples"));

    // Submit + DELETE: cancelled jobs still deliver a terminal event.
    let accepted = client::post(addr, "/v1/jobs", &job_body(1_000_000, 5))
        .unwrap()
        .json()
        .unwrap();
    let id = accepted.get("job_id").unwrap().as_u64().unwrap();
    assert_eq!(
        client::delete(addr, &format!("/v1/jobs/{id}"))
            .unwrap()
            .status,
        200
    );
    let done = client::open_stream(addr, &format!("/v1/jobs/{id}/stream"))
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.get("event").unwrap().as_str() == Some("done"))
        .expect("cancelled job still sends done");
    assert_eq!(done.get("status").unwrap().as_str(), Some("cancelled"));

    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_cancelled, 1);
}

/// A client that stalls mid-stream must not delay anyone else: while the
/// slow reader sleeps on a claimed stream, a second client's
/// time-to-first-sample stays prompt.
#[test]
fn stalled_reader_does_not_delay_other_clients_first_sample() {
    let service = SamplingService::builder(SimulatedOsn::new(graph(800, 31)))
        .pool_threads(2)
        .build();
    let server = GatewayServer::bind(service, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    let (fast_ttfs, slow_done) = std::thread::scope(|scope| {
        // The slow reader: a biggish job, two events read, then a long
        // stall with the stream held open (the socket stays claimed and
        // its gateway worker stays occupied).
        let slow = scope.spawn(move || {
            let accepted = client::post(addr, "/v1/jobs", &job_body(150, 0x51))
                .unwrap()
                .json()
                .unwrap();
            let path = accepted
                .get("stream")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            let mut stream = client::open_stream(addr, &path).unwrap();
            let mut seen = 0;
            for event in stream.by_ref() {
                event.unwrap();
                seen += 1;
                if seen == 2 {
                    std::thread::sleep(Duration::from_millis(1_500));
                }
            }
            // After the stall the reader drains normally; the job must
            // still reach its terminal event.
            seen
        });

        // Give the slow reader time to claim its stream and begin stalling.
        std::thread::sleep(Duration::from_millis(250));

        // The well-behaved client, submitted mid-stall: its first sample
        // must arrive long before the stall ends.
        let submit = Instant::now();
        let accepted = client::post(addr, "/v1/jobs", &job_body(6, 0x52))
            .unwrap()
            .json()
            .unwrap();
        let path = accepted
            .get("stream")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let mut ttfs = None;
        // Record TTFS at the first sample, then drain politely so the job
        // finishes (breaking early would drop the stream and cancel it).
        for event in client::open_stream(addr, &path).unwrap() {
            if event.unwrap().get("event").unwrap().as_str() == Some("sample") && ttfs.is_none() {
                ttfs = Some(submit.elapsed());
            }
        }
        (
            ttfs.expect("fast client saw a sample"),
            slow.join().unwrap(),
        )
    });

    assert!(
        fast_ttfs < Duration::from_millis(1_000),
        "fast client's first sample took {fast_ttfs:?} — delayed by the stalled reader"
    );
    assert!(
        slow_done > 2,
        "slow reader must drain events after its stall"
    );

    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_completed, 2, "both jobs must complete");
}

/// A reader that stops reading altogether trips the server's write
/// timeout once the socket buffers fill: the gateway treats the client as
/// dead, cancels the job, and refunds its unused budget — the slow-reader
/// twin of `killed_connection_cancels_the_job_and_refunds_budget`.
#[test]
fn write_timeout_cancels_and_refunds_a_wedged_reader() {
    let service = SamplingService::builder(SimulatedOsn::new(graph(800, 41)))
        .pool_threads(1)
        .build();
    let config = GatewayConfig {
        // Short write timeout so the wedged reader is detected quickly.
        write_timeout: Duration::from_millis(300),
        ..GatewayConfig::default()
    };
    let server = GatewayServer::bind_with(service, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();

    // Only a *full* kernel send buffer makes the server's write block and
    // trip the timeout, and Linux autotunes those buffers into the
    // megabytes — so the job must produce event bytes fast even in a debug
    // build. `one_long_run` emits one sample per walk step (no per-sample
    // crawl phase), which floods the stream at tens of thousands of
    // events per second.
    let budget = 10_000_000u64;
    let body = Json::obj(vec![
        ("sampler", Json::str("one_long_run")),
        ("samples", Json::UInt(100_000_000)),
        ("seed", Json::UInt(0x61)),
        ("walkers", Json::UInt(64)),
        ("budget", Json::UInt(budget)),
    ]);
    let accepted = client::post(addr, "/v1/jobs", &body)
        .unwrap()
        .json()
        .unwrap();
    let path = accepted
        .get("stream")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Claim the stream, read a couple of events to prove it is live, then
    // wedge: never read again, but keep the socket open. The job keeps
    // producing, the socket buffers fill, the server's next write blocks
    // and times out.
    let mut stream = client::open_stream(addr, &path).unwrap();
    let mut seen = 0;
    for event in stream.by_ref() {
        event.unwrap();
        seen += 1;
        if seen >= 2 {
            break;
        }
    }
    assert_eq!(seen, 2);

    // Filling ~400 KB of kernel buffers at debug-build production rates
    // takes several seconds; give it generous headroom on a busy machine.
    let deadline = Instant::now() + Duration::from_secs(60);
    let final_metrics = loop {
        let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
        if metrics.get("jobs_cancelled").unwrap().as_u64() == Some(1) {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "gateway never cancelled the wedged reader's job; metrics: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    drop(stream);

    let refunded = final_metrics
        .get("budget_refunded")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        refunded > 0 && refunded < budget,
        "a mid-flight cancel must refund part of the budget (got {refunded})"
    );

    // The service is healthy afterwards: a follow-up job completes.
    let (nodes, done) = submit_and_stream(addr, &job_body(5, 0x62));
    assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));
    assert_eq!(nodes.len(), 5);

    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_cancelled, 1);
    assert_eq!(snapshot.jobs_completed, 1);
    assert_eq!(snapshot.budget_refunded, refunded);
}

/// The readiness loop's headline claim at integration scale: one
/// thousand NDJSON streams, every socket connected and its `GET` written
/// before any stream is drained, all served to completion on two I/O
/// threads with zero job loss. The multiplexed single-thread client in
/// `wnw_loadgen::streams` keeps the harness side at one thread, so the
/// gateway — not the test — carries the concurrency.
#[test]
fn a_thousand_concurrent_streams_complete_on_two_io_threads() {
    use walk_not_wait::loadgen::streams;

    // Loopback double-bills the fd limit (both ends live here), so clamp
    // on constrained runners rather than fail the build.
    let tier = 1_000.min(streams::max_open_streams());
    let server = walk_not_wait::loadgen::testbed::launch_streams(tier).expect("streams testbed");
    let report = streams::run_tier(server.local_addr(), tier).expect("streams tier");
    let snapshot = server.shutdown();

    assert_eq!(report.opened, tier, "every stream must open concurrently");
    assert!(
        report.clean(),
        "tier must run clean: shed {} submit_errors {} stream_errors {} lost {} completed {}/{}",
        report.shed,
        report.submit_errors,
        report.stream_errors,
        report.lost,
        report.completed,
        report.opened,
    );
    assert_eq!(report.ttfs_ms.count, tier, "every stream saw a sample");
    assert_eq!(snapshot.jobs_completed, tier as u64);
    assert_eq!(snapshot.jobs_cancelled, 0, "zero job loss, zero hangups");
}
