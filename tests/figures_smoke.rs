//! Smoke tests for the figure-reproduction drivers at quick scale: every
//! figure must run end to end, produce non-empty tables, and exhibit the
//! paper's qualitative outcome where that outcome is robust at small scale.

use walk_not_wait::experiments::figures;
use walk_not_wait::experiments::report::{Cell, ExperimentScale, FigureResult};

fn table<'a>(
    result: &'a FigureResult,
    name: &str,
) -> &'a walk_not_wait::experiments::report::Table {
    result
        .tables
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("table `{name}` missing from {}", result.id))
}

#[test]
fn every_figure_runs_at_quick_scale_and_produces_data() {
    for (id, run) in figures::all_figures() {
        // The heavier error-vs-cost figures are covered individually below;
        // still run them all here to catch panics and empty outputs.
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.id, id);
        assert!(!result.tables.is_empty(), "{id} produced no tables");
        for t in &result.tables {
            assert!(!t.is_empty(), "{id}/{} is empty", t.name);
        }
    }
}

#[test]
fn figure6_walk_estimate_beats_srw_on_average_degree() {
    let result = figures::fig06::run(ExperimentScale::Quick);
    let t = table(&result, "a_avg_degree_srw");
    let srw = mean_error(t, "SRW");
    let we = mean_error(t, "WE(SRW)");
    assert!(
        we <= srw * 1.5 + 0.05,
        "WE(SRW) mean error {we} should not be substantially worse than SRW {srw}"
    );
}

#[test]
fn figure12_table1_we_closer_to_uniform_than_srw() {
    let result = figures::fig12::run(ExperimentScale::Quick);
    let t = table(&result, "table1_distances");
    for row in &t.rows {
        let measure = match &row[0] {
            Cell::Text(s) => s.clone(),
            _ => continue,
        };
        let (srw, we) = match (&row[1], &row[2]) {
            (Cell::Number(a), Cell::Number(b)) => (*a, *b),
            _ => continue,
        };
        if measure == "kl_divergence" || measure == "total_variation" {
            assert!(
                we < srw,
                "{measure}: WE ({we}) should be closer to the uniform target than SRW ({srw})"
            );
        }
    }
}

fn mean_error(table: &walk_not_wait::experiments::report::Table, label: &str) -> f64 {
    let sampler_idx = table.columns.iter().position(|c| c == "sampler").unwrap();
    let err_idx = table
        .columns
        .iter()
        .position(|c| c == "relative_error")
        .unwrap();
    let mut sum = 0.0;
    let mut count = 0;
    for row in &table.rows {
        if matches!(&row[sampler_idx], Cell::Text(s) if s == label) {
            if let Cell::Number(e) = row[err_idx] {
                sum += e;
                count += 1;
            }
        }
    }
    assert!(count > 0, "no rows for sampler {label}");
    sum / count as f64
}
