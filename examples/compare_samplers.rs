//! Side-by-side comparison of every sampler in the workspace on the same
//! simulated social network: traditional SRW and MHRW (many short runs),
//! SRW one-long-run, and the four WALK-ESTIMATE variants of the Figure 9
//! ablation.
//!
//! For each sampler the example reports the query cost for a fixed number of
//! samples and the relative error of the average-degree estimate.
//!
//! ```text
//! cargo run --release --example compare_samplers
//! ```

use walk_not_wait::core::WalkEstimateVariant;
use walk_not_wait::experiments::measures::Aggregate;
use walk_not_wait::experiments::runner::{SamplerKind, Workbench};
use walk_not_wait::mcmc::collect_samples;
use walk_not_wait::prelude::*;

fn main() {
    let graph = walk_not_wait::graph::generators::random::barabasi_albert(2_000, 5, 21)
        .expect("valid generator parameters");
    let bench = Workbench::new(graph.clone(), WalkEstimateConfig::default());
    let truth = Aggregate::Degree.ground_truth(&graph);
    let samples = 40;
    println!(
        "graph: {} nodes, {} edges, true average degree {truth:.2}; drawing {samples} samples per sampler\n",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>16}",
        "sampler", "queries", "est. degree", "relative error"
    );

    let samplers = [
        SamplerKind::Srw,
        SamplerKind::Mhrw,
        SamplerKind::SrwOneLongRun,
        SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant: WalkEstimateVariant::None,
        },
        SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant: WalkEstimateVariant::CrawlOnly,
        },
        SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant: WalkEstimateVariant::WeightedOnly,
        },
        SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant: WalkEstimateVariant::Full,
        },
        SamplerKind::WalkEstimate {
            input: RandomWalkKind::MetropolisHastings,
            variant: WalkEstimateVariant::Full,
        },
    ];
    for kind in samplers {
        let osn = SimulatedOsn::new(graph.clone());
        let mut sampler = kind.build(osn.clone(), bench.diameter, &bench.config, 99);
        let run = collect_samples(sampler.as_mut(), samples).expect("unlimited budget");
        let values: Vec<SampleValue> = run
            .samples
            .iter()
            .map(|s| SampleValue {
                node: s.node,
                value: graph.degree(s.node) as f64,
                degree: graph.degree(s.node),
            })
            .collect();
        let estimate = estimate_average(&values, kind.weighting());
        println!(
            "{:<22} {:>10} {:>12.2} {:>15.1}%",
            kind.label(),
            osn.query_cost(),
            estimate,
            100.0 * relative_error(estimate, truth)
        );
    }

    println!(
        "\nNote: one-long-run is cheap but its samples are correlated; see the\n\
         effective-sample-size discussion in the paper's Section 6.1 and the\n\
         `ablation_one_long_run` bench."
    );
}
