//! The sampling service under concurrent load: N streaming requests, one
//! shared cache, per-job latency and the cross-job query savings.
//!
//! ```text
//! cargo run --release --example sampling_service
//! ```
//!
//! Submits N concurrent WALK-ESTIMATE requests (mixed priorities) to one
//! `SamplingService`, consumes every stream on its own thread, then compares
//! the service's aggregate unique-query cost against what the same jobs cost
//! as isolated engine runs — the shared neighbor cache means a node any job
//! has paid for is free for all of them.

use walk_not_wait::access::SimulatedOsn;
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::mcmc::RandomWalkKind;
use walk_not_wait::prelude::*;
use walk_not_wait::service::Priority;

fn main() {
    let nodes = 5_000;
    let jobs = 6;
    let samples_per_job = 60;

    println!("graph:   Barabasi-Albert, {nodes} nodes, m = 3");
    println!("load:    {jobs} concurrent WALK-ESTIMATE(SRW) requests x {samples_per_job} samples");
    println!();

    let graph = barabasi_albert(nodes, 3, 42).expect("valid BA parameters");
    let requests: Vec<(SampleJob, Priority)> = (0..jobs as u64)
        .map(|i| {
            let job = SampleJob::walk_estimate(RandomWalkKind::Simple, samples_per_job, 0x5E + i)
                .with_walkers(4)
                .with_diameter_estimate(5);
            let priority = match i % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            (job, priority)
        })
        .collect();

    // Baseline: each job as an isolated engine run with its own cache (one
    // engine — and so one worker pool — reused across the runs).
    let engine = Engine::new();
    let isolated_costs: Vec<u64> = requests
        .iter()
        .map(|(job, _)| {
            let network = SimulatedOsn::new(graph.clone());
            engine.run(&network, job).expect("unbudgeted").query_cost()
        })
        .collect();
    let isolated_total: u64 = isolated_costs.iter().sum();

    // The service: same jobs, one shared cache, streaming consumers.
    let service = SamplingService::new(SimulatedOsn::new(graph));
    let tickets: Vec<_> = requests
        .iter()
        .map(|(job, priority)| {
            service
                .submit(SampleRequest::new(job.clone()).with_priority(*priority))
                .expect("service has capacity")
        })
        .collect();

    // One consumer thread per stream, counting events as they arrive.
    let outcomes: Vec<(usize, JobOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tickets
            .into_iter()
            .map(|ticket| {
                scope.spawn(move || {
                    let mut streamed = 0usize;
                    let mut outcome = None;
                    for event in ticket.stream {
                        match event {
                            SampleEvent::Sample { .. } => streamed += 1,
                            SampleEvent::Progress(_) => {}
                            SampleEvent::Done(done) => outcome = Some(done),
                        }
                    }
                    (streamed, outcome.expect("service delivers Done"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("consumer threads do not panic"))
            .collect()
    });

    println!(
        "{:>6} | {:>8} | {:>8} | {:>10} | {:>12} | {:>10}",
        "job", "priority", "samples", "latency ms", "job cost", "finish #"
    );
    println!("{}", "-".repeat(70));
    for ((streamed, outcome), (_, priority)) in outcomes.iter().zip(&requests) {
        assert_eq!(*streamed, outcome.samples, "every sample was streamed");
        assert_eq!(outcome.status, JobStatus::Completed);
        println!(
            "{:>6} | {:>8} | {:>8} | {:>10.1} | {:>12} | {:>10}",
            outcome.id.to_string(),
            format!("{priority:?}"),
            outcome.samples,
            outcome.latency.as_secs_f64() * 1e3,
            outcome.query_cost,
            outcome.finish_index,
        );
    }

    let metrics = service.shutdown();
    println!();
    println!(
        "isolated runs:   {} unique-node queries ({} jobs, each with its own cache)",
        isolated_total, jobs
    );
    println!(
        "shared service:  {} unique-node queries (one cache across all jobs)",
        metrics.aggregate_query_cost
    );
    println!(
        "savings:         {} queries ({:.1}%), mean latency {:.1} ms",
        metrics.shared_cache_savings(),
        100.0 * metrics.shared_cache_savings() as f64 / isolated_total.max(1) as f64,
        metrics.mean_latency.as_secs_f64() * 1e3,
    );

    // The per-job views must agree with the isolated baseline, and the
    // shared cache must have made the aggregate strictly cheaper.
    let per_job_total: u64 = outcomes.iter().map(|(_, o)| o.query_cost).sum();
    assert_eq!(
        per_job_total, isolated_total,
        "per-job metered costs match isolated runs (determinism under co-load)"
    );
    assert!(
        metrics.aggregate_query_cost < isolated_total,
        "N concurrent jobs must cost less than the sum of isolated runs"
    );
    println!();
    println!("aggregate cost under co-load is lower than the sum of isolated runs: yes");
}
