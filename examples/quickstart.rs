//! Quickstart: sample nodes from a simulated online social network with
//! WALK-ESTIMATE and compare its query cost against a traditional
//! Metropolis–Hastings random walk with Geweke-monitored burn-in.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use walk_not_wait::mcmc::burn_in::{BurnInConfig, ManyShortRunsSampler};
use walk_not_wait::prelude::*;

fn main() {
    // The "online social network": a scale-free graph behind a
    // local-neighborhood-only interface with query accounting.
    let graph = walk_not_wait::graph::generators::random::barabasi_albert(3_000, 5, 7)
        .expect("valid generator parameters");
    println!(
        "simulated OSN: {} users, {} connections, average degree {:.1}",
        graph.node_count(),
        graph.edge_count(),
        graph.average_degree()
    );
    let true_avg_degree = graph.average_degree();
    let samples_wanted = 50;

    // Baseline: MHRW, waiting for the Geweke convergence monitor per sample.
    let osn_baseline = SimulatedOsn::new(graph.clone());
    let mut mhrw = ManyShortRunsSampler::new(
        osn_baseline.clone(),
        RandomWalkKind::MetropolisHastings,
        BurnInConfig::default(),
        1,
    );
    let baseline_run = collect_samples(&mut mhrw, samples_wanted).expect("unlimited budget");
    let baseline_cost = osn_baseline.query_cost();

    // WALK-ESTIMATE with the same input walk: same uniform target
    // distribution, but a short walk plus backward probability estimation.
    let osn_we = SimulatedOsn::new(graph.clone());
    let mut we = WalkEstimateSampler::new(
        osn_we.clone(),
        RandomWalkKind::MetropolisHastings,
        WalkEstimateConfig::default(),
        1,
    )
    .with_diameter_estimate(5);
    let we_run = collect_samples(&mut we, samples_wanted).expect("unlimited budget");
    let we_cost = osn_we.query_cost();

    // Both sample pools estimate the average degree with the plain mean
    // (their target distribution is uniform).
    let estimate = |run: &walk_not_wait::mcmc::SamplerRunSummary| {
        let values: Vec<SampleValue> = run
            .samples
            .iter()
            .map(|s| SampleValue {
                node: s.node,
                value: graph.degree(s.node) as f64,
                degree: graph.degree(s.node),
            })
            .collect();
        estimate_average(&values, WeightingScheme::Uniform)
    };
    let baseline_estimate = estimate(&baseline_run);
    let we_estimate = estimate(&we_run);

    println!("\n{samples_wanted} samples targeting the uniform distribution:");
    println!(
        "  MHRW (wait for burn-in): {baseline_cost:>6} queries, avg-degree estimate {baseline_estimate:>7.1} (error {:.1}%)",
        100.0 * relative_error(baseline_estimate, true_avg_degree)
    );
    println!(
        "  WALK-ESTIMATE (walk, not wait): {we_cost:>6} queries, avg-degree estimate {we_estimate:>7.1} (error {:.1}%)",
        100.0 * relative_error(we_estimate, true_avg_degree)
    );
    println!("  true average degree: {true_avg_degree:.1}");
    if we_cost < baseline_cost {
        println!(
            "\nWALK-ESTIMATE used {:.0}% fewer queries for the same number of samples.",
            100.0 * (1.0 - we_cost as f64 / baseline_cost as f64)
        );
    }
}
