//! The concurrent engine on a synthetic social network: 1 thread vs N
//! threads, shared cache vs independent walkers.
//!
//! ```text
//! cargo run --release --example parallel_sampling
//! ```
//!
//! Collects the same WALK-ESTIMATE job (fixed seed, fixed virtual-walker
//! pool) with different thread counts and verifies the accepted-sample
//! multiset never changes, then compares the pool's query cost against what
//! the same walkers would have paid without the shared neighbor cache.

use walk_not_wait::access::{SimulatedOsn, SocialNetwork};
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::mcmc::RandomWalkKind;
use wnw_engine::{Engine, HistoryMode, JobReport, SampleJob};

fn main() {
    let nodes = 5_000;
    let samples = 200;
    let walkers = 8;
    let seed = 0xE7;

    println!("graph: Barabasi-Albert, {nodes} nodes, m = 3");
    println!(
        "job:   {samples} WALK-ESTIMATE(SRW) samples, {walkers} virtual walkers, seed {seed:#x}"
    );
    println!();

    let graph = barabasi_albert(nodes, 3, 42).expect("valid BA parameters");
    let osn = SimulatedOsn::new(graph);

    let job = SampleJob::walk_estimate(RandomWalkKind::Simple, samples, seed)
        .with_walkers(walkers)
        .with_diameter_estimate(5);

    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1, 2, hardware.max(4)];
    thread_counts.dedup();

    println!(
        "{:>8} | {:>10} | {:>12} | {:>12} | {:>10}",
        "threads", "wall ms", "pool cost", "uncached", "hits"
    );
    println!("{}", "-".repeat(64));

    let mut reference: Option<JobReport> = None;
    for &threads in &thread_counts {
        osn.reset_counters();
        let report = Engine::with_threads(threads)
            .run(&osn, &job)
            .expect("unbudgeted job");
        println!(
            "{:>8} | {:>10.1} | {:>12} | {:>12} | {:>10}",
            threads,
            report.elapsed.as_secs_f64() * 1e3,
            report.query_cost(),
            report.uncached_query_cost(),
            report.pool_stats.cache_hits,
        );
        match &reference {
            None => reference = Some(report),
            Some(first) => {
                assert_eq!(
                    first.sorted_nodes(),
                    report.sorted_nodes(),
                    "same seed must give the same sample multiset at any thread count"
                );
            }
        }
    }
    let reference = reference.expect("at least one run");
    println!();
    println!("sample multiset identical across all thread counts: yes");

    // The same walkers without the shared cache: run each walker as its own
    // single-walker job against a fresh network, so nothing is shared.
    osn.reset_counters();
    let independent = Engine::with_threads(hardware)
        .run(&osn, &job.clone().with_history(HistoryMode::Independent))
        .expect("unbudgeted job");
    let uncached_total = independent.uncached_query_cost();
    println!(
        "shared cache: {} unique-node queries for {} samples ({} saved vs {} walker-local charges)",
        reference.query_cost(),
        reference.len(),
        uncached_total.saturating_sub(reference.query_cost()),
        uncached_total,
    );
    assert!(
        reference.query_cost() <= uncached_total,
        "the pool must never pay more than uncached walkers would"
    );
}
