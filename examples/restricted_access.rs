//! Working under real-world access restrictions (paper Section 6.3):
//! rate limits, truncated neighbor lists with the bidirectional-edge check,
//! random-k neighbor responses with mark-and-recapture degree estimation,
//! and hard query budgets.
//!
//! ```text
//! cargo run --release --example restricted_access
//! ```

use walk_not_wait::access::{NeighborRestriction, RateLimitPolicy, RateLimiter};
use walk_not_wait::analytics::degree_estimate::estimate_degree_from_batches;
use walk_not_wait::prelude::*;

fn main() {
    let graph = walk_not_wait::graph::generators::random::barabasi_albert(1_000, 8, 5)
        .expect("valid generator parameters");

    // 1. Rate limits: how long would a 500-query crawl take against
    //    Twitter's 15-requests-per-15-minutes follower endpoint?
    let osn = SimulatedOsn::builder(graph.clone())
        .rate_limiter(RateLimiter::new(RateLimitPolicy::TWITTER_FOLLOWER_IDS))
        .build();
    let mut sampler = WalkEstimateSampler::new(
        osn.clone(),
        RandomWalkKind::MetropolisHastings,
        WalkEstimateConfig::default(),
        1,
    )
    .with_diameter_estimate(5);
    let run = collect_samples(&mut sampler, 20).expect("unlimited budget");
    println!(
        "rate-limited crawl: {} samples, {} unique-node queries, {} API calls,\n\
         simulated wall-clock time {:.1} hours under the Twitter policy\n",
        run.len(),
        osn.query_cost(),
        osn.query_stats().api_calls,
        osn.rate_limiter().elapsed_secs() as f64 / 3600.0
    );

    // 2. Truncated neighbor lists (restriction type 3) with the
    //    bidirectional-edge check: the visible graph shrinks, but sampling
    //    still works on what remains visible.
    let osn = SimulatedOsn::builder(graph.clone())
        .restriction(NeighborRestriction::Truncated { l: 30 })
        .build();
    let hub = NodeId(0);
    let visible = osn.neighbors(hub).expect("hub exists");
    println!(
        "truncated interface (l = 30): hub {} has true degree {} but only {} mutually-visible neighbors\n",
        hub,
        graph.degree(hub),
        visible.len()
    );

    // 3. Random-k responses (restriction type 1): single responses no longer
    //    reveal degrees, but mark-and-recapture over repeated calls does.
    let osn = SimulatedOsn::builder(graph.clone())
        .restriction(NeighborRestriction::RandomSubset { k: 40 })
        .build();
    let node = NodeId(1);
    let batches: Vec<Vec<NodeId>> = (0..12)
        .map(|_| osn.neighbors(node).expect("node exists"))
        .collect();
    let estimated = estimate_degree_from_batches(&batches).expect("two or more batches");
    println!(
        "mark-and-recapture: node {} true degree {} — estimated {:.1} from 12 random-40 responses\n",
        node,
        graph.degree(node),
        estimated
    );

    // 4. Hard query budgets: the sampler stops cleanly when the budget runs
    //    out, keeping every sample drawn so far.
    let osn = SimulatedOsn::builder(graph)
        .budget(QueryBudget(150))
        .build();
    let mut sampler = WalkEstimateSampler::new(
        osn.clone(),
        RandomWalkKind::Simple,
        WalkEstimateConfig::default(),
        2,
    )
    .with_diameter_estimate(5);
    let run = collect_samples(&mut sampler, 1_000).expect("budget exhaustion is not an error");
    println!(
        "hard budget of 150 queries: obtained {} samples before the budget ran out (budget exhausted: {})",
        run.len(),
        run.budget_exhausted
    );
}
