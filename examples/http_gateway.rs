//! The HTTP gateway end to end on loopback: remote clients submit sampling
//! jobs, stream NDJSON results, hang up, and read the service metrics —
//! all over real TCP sockets.
//!
//! ```text
//! cargo run --release --example http_gateway
//! ```
//!
//! Starts a `SamplingService` over a simulated OSN, binds the std-only
//! HTTP/1.1 gateway to an ephemeral loopback port, then plays four scenes:
//! a health check, N concurrent streaming clients (each verifying its
//! sample count), one client that abandons a big budgeted job mid-stream
//! (the gateway cancels it and the service refunds the budget), and a
//! final `/v1/metrics` read showing the cross-job shared-cache savings and
//! the queue-wait aggregates.

use walk_not_wait::access::SimulatedOsn;
use walk_not_wait::gateway::json::Json;
use walk_not_wait::gateway::{client, GatewayConfig, GatewayServer};
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::prelude::*;

fn job_body(samples: u64, seed: u64, budget: Option<u64>) -> Json {
    let mut fields = vec![
        ("samples", Json::UInt(samples)),
        ("seed", Json::UInt(seed)),
        ("walkers", Json::UInt(4)),
        ("diameter_estimate", Json::UInt(5)),
    ];
    if let Some(budget) = budget {
        fields.push(("budget", Json::UInt(budget)));
    }
    Json::obj(fields)
}

fn main() {
    let nodes = 5_000;
    let clients = 4;
    let samples_per_client = 40u64;

    println!("graph:    Barabasi-Albert, {nodes} nodes, m = 3");
    println!("frontend: std-only HTTP/1.1 gateway on loopback");
    println!();

    let graph = barabasi_albert(nodes, 3, 42).expect("valid BA parameters");
    let service = SamplingService::builder(SimulatedOsn::new(graph))
        .pool_threads(2)
        .build();
    let server = GatewayServer::bind_with(
        service,
        "127.0.0.1:0",
        GatewayConfig {
            workers: clients + 1,
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("listening on http://{addr}");

    // Scene 1: liveness.
    let health = client::get(addr, "/healthz").expect("GET /healthz");
    println!(
        "GET /healthz               -> {} {}",
        health.status,
        health.json().unwrap()
    );

    // Scene 2: concurrent streaming clients.
    println!();
    println!("{clients} concurrent clients, {samples_per_client} samples each:");
    let outcomes: Vec<(u64, usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients as u64)
            .map(|i| {
                scope.spawn(move || {
                    let body = job_body(samples_per_client, 0x5E + i, None);
                    let accepted = client::post(addr, "/v1/jobs", &body)
                        .expect("POST /v1/jobs")
                        .json()
                        .unwrap();
                    let id = accepted.get("job_id").unwrap().as_u64().unwrap();
                    let path = accepted
                        .get("stream")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_string();
                    let mut samples = 0usize;
                    let mut queue_wait_ms = 0.0;
                    for event in client::open_stream(addr, &path).expect("open stream") {
                        let event = event.expect("valid NDJSON");
                        match event.get("event").and_then(Json::as_str) {
                            Some("sample") => samples += 1,
                            Some("done") => {
                                queue_wait_ms =
                                    event.get("queue_wait_ms").unwrap().as_f64().unwrap();
                            }
                            _ => {}
                        }
                    }
                    (id, samples, queue_wait_ms)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (id, samples, queue_wait_ms) in &outcomes {
        println!("  job {id}: streamed {samples} samples (queue wait {queue_wait_ms:.2} ms)");
        assert_eq!(*samples as u64, samples_per_client);
    }

    // Scene 3: a client abandons a big budgeted job mid-stream.
    println!();
    let body = job_body(1_000_000, 0x77, Some(100_000));
    let accepted = client::post(addr, "/v1/jobs", &body)
        .expect("POST /v1/jobs")
        .json()
        .unwrap();
    let path = accepted
        .get("stream")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let mut stream = client::open_stream(addr, &path).expect("open stream");
    let mut streamed = 0;
    for event in stream.by_ref() {
        if event.unwrap().get("event").unwrap().as_str() == Some("sample") {
            streamed += 1;
            if streamed >= 5 {
                break;
            }
        }
    }
    drop(stream); // kill the connection mid-stream
    println!("abandoned a 1M-sample budgeted job after {streamed} samples;");
    print!("waiting for the hang-up cancel");
    loop {
        let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
        if metrics.get("jobs_cancelled").unwrap().as_u64() == Some(1) {
            let refunded = metrics.get("budget_refunded").unwrap().as_u64().unwrap();
            println!(" -> job cancelled, {refunded} of 100000 budget refunded");
            assert!(refunded > 0);
            break;
        }
        print!(".");
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // Scene 4: the metrics document.
    println!();
    let metrics = client::get(addr, "/v1/metrics").unwrap().json().unwrap();
    println!("GET /v1/metrics:");
    for key in [
        "jobs_completed",
        "jobs_cancelled",
        "samples_delivered",
        "aggregate_query_cost",
        "isolated_query_cost",
        "shared_cache_savings",
        "budget_refunded",
    ] {
        println!("  {key:>22}: {}", metrics.get(key).unwrap());
    }
    println!(
        "  {:>22}: {:.2} / {:.2}",
        "queue wait mean/max ms",
        metrics.get("mean_queue_wait_ms").unwrap().as_f64().unwrap(),
        metrics.get("max_queue_wait_ms").unwrap().as_f64().unwrap(),
    );
    let savings = metrics
        .get("shared_cache_savings")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        savings > 0,
        "concurrent jobs over one cache must save queries"
    );

    let snapshot = server.shutdown();
    println!();
    println!(
        "shutdown: {} jobs finished, {} samples delivered, {} unique-node queries saved by the shared cache",
        snapshot.jobs_finished,
        snapshot.samples_delivered,
        snapshot.shared_cache_savings(),
    );
}
