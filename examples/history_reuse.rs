//! Cross-job walk-history reuse: a second identical job rides the first
//! job's published forward walks.
//!
//! ```text
//! cargo run --release --example history_reuse
//! ```
//!
//! Runs the same WALK-ESTIMATE request three times against one service:
//!
//! 1. under the default `Isolated` policy — the reproducibility baseline;
//! 2. under `SharedPublish` — identical multiset (the store was empty at
//!    its admission), but its merged walk history is published at reap;
//! 3. under `SharedReadOnly` — admitted after the publication, it reads the
//!    frozen epoch-1 snapshot, so its backward walks start from the
//!    evidence job 2 already paid for.
//!
//! The `history` block of the service metrics shows the hit, the reused
//! walks, and the reuse savings (the unique-node queries job 2 spent
//! building the history job 3 inherited for free).

use walk_not_wait::access::SimulatedOsn;
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::graph::NodeId;
use walk_not_wait::mcmc::RandomWalkKind;
use walk_not_wait::prelude::*;

fn main() {
    let nodes = 3_000;
    let samples = 80;
    println!("graph:   Barabasi-Albert, {nodes} nodes, m = 3");
    println!("request: WALK-ESTIMATE(SRW), {samples} samples, 4 walkers, run 3x");
    println!();

    let graph = barabasi_albert(nodes, 3, 42).expect("valid BA parameters");
    let service = SamplingService::new(SimulatedOsn::new(graph));
    let job = || {
        SampleJob::walk_estimate(RandomWalkKind::Simple, samples, 0xABCD)
            .with_walkers(4)
            .with_diameter_estimate(5)
    };

    let run = |label: &str, policy: HistoryPolicy| -> (Vec<NodeId>, JobOutcome) {
        let ticket = service
            .submit(SampleRequest::new(job()).with_history_policy(policy))
            .expect("service has capacity");
        let (records, outcome) = ticket.stream.collect_all();
        let outcome = outcome.expect("service delivers Done");
        assert_eq!(outcome.status, JobStatus::Completed);
        let stats = service.history_stats();
        println!(
            "{label:<22} cost {:>5} queries | store: epoch {} hits {} publications {}",
            outcome.query_cost, stats.epoch, stats.hits, stats.publications,
        );
        let mut nodes: Vec<NodeId> = records.iter().map(|r| r.node).collect();
        nodes.sort_unstable();
        (nodes, outcome)
    };

    let (isolated, _) = run("isolated:", HistoryPolicy::Isolated);
    let (publisher, publisher_outcome) = run("shared_publish:", HistoryPolicy::SharedPublish);
    let (reuser, reuser_outcome) = run("shared_read (after):", HistoryPolicy::SharedReadOnly);

    // The publisher was admitted against an empty store, so opting in
    // changed nothing about its results; the reuser was admitted at epoch 1
    // and its multiset reflects the inherited history.
    assert_eq!(
        isolated, publisher,
        "empty-store shared job must reproduce the isolated multiset"
    );
    assert_eq!(reuser.len(), samples);

    let metrics = service.shutdown();
    println!();
    println!(
        "published walks:  {} (epoch {})",
        metrics.history.published_walks, metrics.history.epoch
    );
    println!(
        "reused walks:     {} across {} snapshot hit(s)",
        metrics.history.reused_walks, metrics.history.hits
    );
    println!(
        "reuse savings:    {} unique-node queries inherited instead of re-spent",
        metrics.history.reuse_savings
    );
    if reuser_outcome.query_cost < publisher_outcome.query_cost {
        println!(
            "direct effect:    the reusing job's own cost fell {} -> {} queries \
             (better-focused backward walks)",
            publisher_outcome.query_cost, reuser_outcome.query_cost
        );
    }

    assert_eq!(metrics.history.publications, 1);
    assert_eq!(metrics.history.hits, 1);
    assert!(
        metrics.history.reuse_savings > 0,
        "a second identical job must show measurable reuse savings"
    );
    assert_eq!(metrics.history.reuse_savings, publisher_outcome.query_cost);
    println!();
    println!("second identical job reused the first job's history: yes");
}
