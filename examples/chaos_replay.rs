//! Chaos-scored graceful degradation: the `chaos` workload against a
//! **fault-injected** testbed, with resilience verdicts.
//!
//! The testbed wraps the usual simulated OSN in a seeded fault injector
//! (transient errors, timeout stalls, rate-limit bursts, flapping nodes,
//! blacked-out nodes) and a resilience layer (bounded retries,
//! decorrelated-jitter backoff on a simulated clock, a per-backend
//! circuit breaker). Before the load starts it forces one breaker
//! trip-and-recovery so the open → half-open → closed cycle is on the
//! record; then the open-loop driver offers the seeded `chaos` workload
//! and scores what the clients saw.
//!
//! The run passes only if, on top of the usual latency SLOs:
//!
//! * **zero accepted jobs are lost** — every job the gateway accepted
//!   delivers a terminal event, however bad the fault weather;
//! * at most a bounded fraction of jobs finish *degraded* (partial
//!   results after the resilience layer gave up on some walkers);
//! * no call ever retried past the policy cap.
//!
//! ```text
//! cargo run --release --example chaos_replay            # full scale
//! WNW_BENCH_SMOKE=1 cargo run --example chaos_replay    # CI-sized
//! ```

use walk_not_wait::loadgen::{chaos_suite_json, run_chaos_suite, Scale};

fn main() {
    let scale = if std::env::var_os("WNW_BENCH_SMOKE").is_some() {
        Scale::Smoke
    } else {
        Scale::Full
    };

    println!("replaying the chaos scenario at {scale:?} scale...\n");
    let (report, evidence) = match run_chaos_suite(scale) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("chaos run failed: {err}");
            std::process::exit(1);
        }
    };

    let res = evidence.resilience;
    let faults = evidence.fault_stats;
    println!(
        "offered {}   completed {}   degraded {}   lost {}   shed {}",
        report.offered, report.completed, report.degraded, report.lost, report.shed,
    );
    println!(
        "faults injected {} (transient {}, stalls {}, rate-limits {}, flaps {}, blackout {})",
        faults.total_injected(),
        faults.transient_errors,
        faults.stalls,
        faults.rate_limits,
        faults.flaps,
        faults.blackout_hits,
    );
    println!(
        "resilience: {} retries, {} recovered, {} exhausted, breaker opened {}x \
         (fast-fails {}, half-open probes {}), {} simulated secs in backoff",
        res.retries,
        res.recovered,
        res.retries_exhausted,
        res.breaker_opened,
        res.breaker_fast_fails,
        res.breaker_half_open_probes,
        res.backoff_wait_secs,
    );
    println!(
        "verdicts: slo {}   zero-loss {}   retries-within-policy {}   breaker-recovered {}",
        pass(report.slo.pass),
        pass(report.lost == 0),
        pass(evidence.retries_within_policy()),
        pass(evidence.breaker_recovered()),
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fault_resilience.json");
    if let Err(err) = std::fs::write(path, chaos_suite_json(scale, &report, &evidence)) {
        eprintln!("could not write {path}: {err}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");

    if !report.slo.pass || !evidence.retries_within_policy() || !evidence.breaker_recovered() {
        eprintln!("chaos run missed its resilience objectives");
        std::process::exit(1);
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}
