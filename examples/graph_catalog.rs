//! Graph catalogs: build a seeded CSR graph once, cache it as a binary
//! catalog, load it back in milliseconds, and run the sampling engine on it
//! through the `CatalogNetwork` adapter — the substrate swap nothing above
//! the access layer notices.
//!
//! ```text
//! cargo run --release --example graph_catalog
//! ```
//!
//! Catalogs land under `target/catalogs/` (override with
//! `WNW_CATALOG_DIR`); delete the file to force a rebuild.

use std::time::Instant;
use walk_not_wait::catalog::{AdjListGraph, CatalogSource, GraphSpec};
use walk_not_wait::prelude::*;

fn main() {
    // ba_50k from the spec registry: 50 000 nodes, m = 3, fixed seed — the
    // same graph on every machine, every run.
    let spec = GraphSpec::named("ba_50k").expect("registry spec");

    let start = Instant::now();
    let (csr, source) = spec.load_or_build().expect("catalog generation");
    let first = start.elapsed();
    println!(
        "{}: {} nodes, {} edges — {} in {first:.2?}",
        spec.name(),
        csr.node_count(),
        csr.edge_count(),
        match source {
            CatalogSource::Built => "generated + cached",
            CatalogSource::Loaded => "loaded from catalog",
        },
    );

    // Second acquisition hits the cache file.
    let start = Instant::now();
    let (reloaded, source) = spec.load_or_build().expect("catalog load");
    let second = start.elapsed();
    assert_eq!(reloaded, csr);
    assert_eq!(source, CatalogSource::Loaded);
    println!("reload from {}: {second:.2?}", spec.file_name());

    // What the flat two-array layout saves over per-node Vec adjacency.
    let adj = AdjListGraph::from_csr(&csr);
    let edges = csr.edge_count() as f64;
    println!(
        "resident bytes/edge: CSR {:.1} vs per-node-Vec {:.1} ({:.2}x)",
        csr.resident_bytes() as f64 / edges,
        adj.resident_bytes() as f64 / edges,
        csr.resident_bytes() as f64 / adj.resident_bytes() as f64,
    );

    // The engine runs on the catalog unchanged: CatalogNetwork is a
    // SocialNetwork like any other, with the same metered query accounting.
    let network = CatalogNetwork::new(reloaded);
    let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 200, 0xCA7A)
        .with_walkers(4)
        .with_diameter_estimate(6);
    let start = Instant::now();
    let report = Engine::new().run(&network, &job).expect("sampling run");
    println!(
        "\nWALK-ESTIMATE on the catalog: {} samples in {:.2?} for {} queries",
        report.len(),
        start.elapsed(),
        report.query_cost(),
    );
}
