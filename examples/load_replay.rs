//! Workload replay against a live loopback gateway, with SLO verdicts.
//!
//! Runs the four `wnw-loadgen` preset scenarios — `steady`, `burst`,
//! `hot_key`, `churn` — each against its own freshly launched simulated
//! OSN + sampling service + HTTP gateway, then prints a verdict table and
//! writes `BENCH_service_load.json` at the repository root.
//!
//! ```text
//! cargo run --release --example load_replay            # full scale
//! WNW_BENCH_SMOKE=1 cargo run --example load_replay    # CI-sized
//! ```
//!
//! Every scenario is seeded: rerunning it submits the identical job
//! multiset (the report's `plan_fingerprint` pins that), while the
//! open-loop driver guarantees a slow service cannot quietly thin the
//! offered load — overload shows up as shed requests and queue-wait
//! tails, which the SLO scores.

use walk_not_wait::loadgen::{run_preset_suite, suite_json, Scale};

fn main() {
    let scale = if std::env::var_os("WNW_BENCH_SMOKE").is_some() {
        Scale::Smoke
    } else {
        Scale::Full
    };

    println!("replaying the preset load suite at {scale:?} scale...\n");
    let reports = match run_preset_suite(scale) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("load suite failed: {err}");
            std::process::exit(1);
        }
    };

    println!(
        "{:<8} {:>7} {:>6} {:>9} {:>9} {:>12} {:>12} {:>12}  slo",
        "scenario", "offered", "shed%", "completed", "jobs/s", "qwait p99", "e2e p99", "ttfs p99"
    );
    for r in &reports {
        println!(
            "{:<8} {:>7} {:>6.1} {:>9} {:>9.1} {:>9.1} ms {:>9.1} ms {:>9.1} ms  {}",
            r.scenario,
            r.offered,
            r.shed_rate * 100.0,
            r.completed,
            r.throughput_rps,
            r.queue_wait_ms.p99,
            r.e2e_ms.p99,
            r.ttfs_ms.p99,
            if r.slo.pass { "PASS" } else { "FAIL" },
        );
    }
    if let Some(hot) = reports.iter().find(|r| r.scenario == "hot_key") {
        println!(
            "\nhot_key cross-job reuse: {} history hits, {} walks reused, {} queries saved \
             (shared-cache savings {})",
            hot.server.history_hits,
            hot.server.history_reused_walks,
            hot.server.history_reuse_savings,
            hot.server.shared_cache_savings,
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_service_load.json");
    if let Err(err) = std::fs::write(path, suite_json(scale, &reports)) {
        eprintln!("could not write {path}: {err}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");

    if reports.iter().any(|r| !r.slo.pass) {
        eprintln!("one or more scenarios missed their SLO");
        std::process::exit(1);
    }
}
