//! Aggregate estimation under a query budget, on the Yelp-like surrogate:
//! estimate the average star rating and the average degree of users of a
//! review network you can only explore through `neighbors(v)` calls.
//!
//! This is the workload of the paper's Figure 7: for the same query budget,
//! how close does each sampler get to the true population averages?
//!
//! ```text
//! cargo run --release --example aggregate_estimation
//! ```

use walk_not_wait::experiments::datasets::DatasetRegistry;
use walk_not_wait::experiments::report::ExperimentScale;
use walk_not_wait::mcmc::burn_in::{BurnInConfig, ManyShortRunsSampler};
use walk_not_wait::prelude::*;

fn main() {
    let registry = DatasetRegistry::new(ExperimentScale::Quick);
    let dataset = registry.yelp();
    let graph = dataset.graph;
    let true_stars = graph
        .attributes()
        .column("stars")
        .expect("stars attribute")
        .mean();
    let true_degree = graph.average_degree();
    println!(
        "Yelp-like review network: {} users, {} edges ({})",
        graph.node_count(),
        graph.edge_count(),
        dataset.paper_reference
    );
    println!("ground truth: avg stars {true_stars:.3}, avg degree {true_degree:.2}\n");

    let budget = (graph.node_count() / 4) as u64;
    println!("query budget per sampler: {budget} unique users\n");

    let report = |name: &str, nodes: Vec<NodeId>, weighting: WeightingScheme, cost: u64| {
        let star_values: Vec<SampleValue> = nodes
            .iter()
            .map(|&v| SampleValue {
                node: v,
                value: graph.attribute("stars", v).unwrap_or(0.0),
                degree: graph.degree(v),
            })
            .collect();
        let degree_values: Vec<SampleValue> = nodes
            .iter()
            .map(|&v| SampleValue {
                node: v,
                value: graph.degree(v) as f64,
                degree: graph.degree(v),
            })
            .collect();
        let est_stars = estimate_average(&star_values, weighting);
        let est_degree = estimate_average(&degree_values, weighting);
        println!(
            "{name:<22} {:>4} samples, {cost:>5} queries | stars {est_stars:.3} ({:.1}% err) | degree {est_degree:.2} ({:.1}% err)",
            nodes.len(),
            100.0 * relative_error(est_stars, true_stars),
            100.0 * relative_error(est_degree, true_degree),
        );
    };

    // Traditional SRW with burn-in.
    let osn = SimulatedOsn::builder(graph.clone())
        .budget(QueryBudget(budget))
        .build();
    let mut srw = ManyShortRunsSampler::new(
        osn.clone(),
        RandomWalkKind::Simple,
        BurnInConfig::default(),
        3,
    );
    let run = collect_samples(&mut srw, 10_000).expect("budget exhaustion handled");
    report(
        "SRW (burn-in)",
        run.nodes(),
        WeightingScheme::InverseDegree,
        osn.query_cost(),
    );

    // WALK-ESTIMATE on the same input walk.
    let osn = SimulatedOsn::builder(graph.clone())
        .budget(QueryBudget(budget))
        .build();
    let mut we = WalkEstimateSampler::new(
        osn.clone(),
        RandomWalkKind::Simple,
        WalkEstimateConfig::default(),
        3,
    )
    .with_diameter_estimate(6);
    let run = collect_samples(&mut we, 10_000).expect("budget exhaustion handled");
    report(
        "WE(SRW)",
        run.nodes(),
        WeightingScheme::InverseDegree,
        osn.query_cost(),
    );

    // WALK-ESTIMATE targeting the uniform distribution (MHRW input).
    let osn = SimulatedOsn::builder(graph.clone())
        .budget(QueryBudget(budget))
        .build();
    let mut we_uniform = WalkEstimateSampler::new(
        osn.clone(),
        RandomWalkKind::MetropolisHastings,
        WalkEstimateConfig::default(),
        3,
    )
    .with_diameter_estimate(6);
    let run = collect_samples(&mut we_uniform, 10_000).expect("budget exhaustion handled");
    report(
        "WE(MHRW, uniform)",
        run.nodes(),
        WeightingScheme::Uniform,
        osn.query_cost(),
    );
}
