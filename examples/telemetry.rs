//! The observability stack end to end: latency histograms, a Prometheus
//! scrape, and a per-job lifecycle trace — all over real loopback HTTP.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```
//!
//! Starts a `SamplingService` over a simulated OSN behind the HTTP
//! gateway, runs a handful of sampling jobs, then plays three scenes:
//!
//! 1. quantiles from the service's latency histograms (`/v1/metrics` now
//!    carries full distributions, not just means);
//! 2. a `GET /v1/metrics/prometheus` scrape, machine-checked against the
//!    exposition grammar by the validator the tests use;
//! 3. a `GET /v1/jobs/{id}/trace` replay of one job's life — submitted,
//!    admitted, rounds, first sample, finished — with microsecond stamps.

use walk_not_wait::access::SimulatedOsn;
use walk_not_wait::gateway::json::Json;
use walk_not_wait::gateway::{client, GatewayServer};
use walk_not_wait::graph::generators::random::barabasi_albert;
use walk_not_wait::prelude::*;
use walk_not_wait::telemetry::prometheus::validate;

fn main() {
    let jobs = 6u64;
    let samples_per_job = 24u64;

    println!("graph:   Barabasi-Albert, 4000 nodes, m = 3");
    println!("jobs:    {jobs} x {samples_per_job} samples over one shared cache");
    println!();

    let graph = barabasi_albert(4_000, 3, 7).expect("valid BA parameters");
    let service = SamplingService::builder(SimulatedOsn::new(graph))
        .pool_threads(2)
        .build();
    let server = GatewayServer::bind(service, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    println!("listening on http://{addr}");

    // Run the jobs to completion so the histograms have mass.
    let mut last_id = 0;
    for seed in 0..jobs {
        let body = Json::obj(vec![
            ("samples", Json::UInt(samples_per_job)),
            ("seed", Json::UInt(1_000 + seed)),
            ("walkers", Json::UInt(3)),
            ("diameter_estimate", Json::UInt(5)),
        ]);
        let accepted = client::post(addr, "/v1/jobs", &body)
            .expect("POST /v1/jobs")
            .json()
            .expect("JSON body");
        last_id = accepted.get("job_id").unwrap().as_u64().unwrap();
        let path = accepted
            .get("stream")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let delivered = client::open_stream(addr, &path)
            .expect("open stream")
            .filter_map(Result::ok)
            .filter(|e| e.get("event").unwrap().as_str() == Some("sample"))
            .count() as u64;
        assert_eq!(delivered, samples_per_job, "job {last_id} must complete");
    }

    // Scene 1: distribution-level metrics.
    let metrics = server.metrics();
    println!();
    println!("-- latency distributions ({jobs} jobs) --");
    for (name, hist) in [
        ("queue wait", &metrics.queue_wait_histogram),
        ("end-to-end latency", &metrics.latency_histogram),
        ("time to first sample", &metrics.first_sample_histogram),
        ("round duration", &metrics.round_duration_histogram),
    ] {
        println!(
            "{name:>22}: n={:<5} p50={:>8} us  p99={:>8} us  max={:>8} us",
            hist.count,
            hist.quantile(0.5),
            hist.quantile(0.99),
            hist.max,
        );
    }
    assert_eq!(metrics.latency_histogram.count, jobs);
    assert_eq!(metrics.first_sample_histogram.count, jobs);
    assert!(
        metrics.round_duration_histogram.count > 0,
        "telemetry defaults on"
    );

    // Scene 2: the Prometheus scrape, grammar-checked.
    let scrape = client::get(addr, "/v1/metrics/prometheus").expect("scrape");
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body).expect("UTF-8 scrape");
    let stats = validate(&text).expect("exposition grammar holds");
    println!();
    println!(
        "-- prometheus scrape: {} families, {} series, {} histograms (validated) --",
        stats.families, stats.series, stats.histograms
    );
    assert!(stats.series >= 20);
    assert_eq!(stats.histograms, 5);
    for line in text.lines().filter(|l| {
        l.starts_with("wnw_jobs_completed_total") || l.starts_with("wnw_job_latency_us_count")
    }) {
        println!("   {line}");
    }

    // Scene 3: replay the last job's life from the trace endpoint.
    let trace = client::get(addr, &format!("/v1/jobs/{last_id}/trace")).expect("trace");
    assert_eq!(trace.status, 200);
    let Json::Arr(events) = trace.json().expect("trace JSON") else {
        panic!("trace body must be an array");
    };
    println!();
    println!(
        "-- lifecycle trace of job {last_id} ({} events) --",
        events.len()
    );
    for event in events.iter().take(6) {
        let label = event.get("event").unwrap().as_str().unwrap();
        let at = event.get("at_us").unwrap().as_u64().unwrap();
        match event.get("queries").and_then(Json::as_u64) {
            Some(queries) => println!("   {at:>9} us  {label} (queries={queries})"),
            None => println!("   {at:>9} us  {label}"),
        }
    }
    if events.len() > 6 {
        println!("   ... {} more", events.len() - 6);
    }
    let labels: Vec<&str> = events
        .iter()
        .map(|e| e.get("event").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(labels.first(), Some(&"submitted"));
    assert_eq!(labels.last(), Some(&"finished"));

    let snapshot = server.shutdown();
    assert_eq!(snapshot.jobs_completed, jobs);
    println!();
    println!("ok: scrape validated, {jobs} traces recorded, histograms populated");
}
