//! A named-metric registry: counters, gauges, and histograms behind one
//! consistent snapshot.
//!
//! The [`Recorder`] is the *ad-hoc* half of the observability layer: where
//! the service's `ServiceMetrics` is a fixed struct of known counters, a
//! recorder lets experiments, examples, and observers register metrics by
//! name at runtime and still export them uniformly (e.g. through
//! [`prometheus::Exposition::recorder`](crate::prometheus::Exposition::recorder)).
//! Registration takes a lock; the returned handles are `Arc`s whose updates
//! are plain atomics, so hot paths hold no lock.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed atomic gauge (goes up and down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics.
///
/// Registering the same name twice returns the same underlying metric;
/// registering a name under a *different* kind panics — that is a coding
/// bug (two call sites disagreeing about what `"queue_depth"` is), not a
/// runtime condition to limp through.
///
/// ```
/// use wnw_telemetry::Recorder;
///
/// let recorder = Recorder::new();
/// let requests = recorder.counter("requests");
/// let latency = recorder.histogram("latency_us");
/// requests.inc();
/// latency.record(1200);
/// let snap = recorder.snapshot();
/// assert_eq!(snap.counters, vec![("requests".to_string(), 1)]);
/// assert_eq!(snap.histograms[0].1.count, 1);
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    // BTreeMap so snapshots list metrics in stable (sorted) order.
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.entries();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(counter) => Arc::clone(counter),
            _ => panic!("metric `{name}` is already registered as a different kind"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or histogram.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.entries();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(gauge) => Arc::clone(gauge),
            _ => panic!("metric `{name}` is already registered as a different kind"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or gauge.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut entries = self.entries();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(histogram) => Arc::clone(histogram),
            _ => panic!("metric `{name}` is already registered as a different kind"),
        }
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries().keys().cloned().collect()
    }

    /// A copy of every registered metric's current value, names sorted
    /// within each kind.
    pub fn snapshot(&self) -> RecorderSnapshot {
        let entries = self.entries();
        let mut snap = RecorderSnapshot::default();
        for (name, metric) in entries.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// A point-in-time copy of a [`Recorder`]'s metrics.
#[derive(Debug, Clone, Default)]
pub struct RecorderSnapshot {
    /// `(name, value)` of every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` of every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` of every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let recorder = Recorder::new();
        recorder.counter("hits").inc();
        recorder.counter("hits").add(2);
        assert_eq!(recorder.counter("hits").get(), 3);
        recorder.gauge("depth").set(5);
        recorder.gauge("depth").add(-2);
        assert_eq!(recorder.gauge("depth").get(), 3);
        recorder.histogram("lat").record(10);
        assert_eq!(recorder.histogram("lat").count(), 1);
        assert_eq!(recorder.names(), vec!["depth", "hits", "lat"]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let recorder = Recorder::new();
        recorder.counter("b_counter").add(4);
        recorder.counter("a_counter").add(1);
        recorder.gauge("queue").set(-7);
        recorder.histogram("wait").record(100);
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_counter".to_string(), 1), ("b_counter".to_string(), 4)]
        );
        assert_eq!(snap.gauges, vec![("queue".to_string(), -7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "wait");
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let recorder = Recorder::new();
        recorder.counter("x");
        recorder.gauge("x");
    }

    #[test]
    fn handles_update_without_the_registry_lock() {
        let recorder = Recorder::new();
        let counter = recorder.counter("spins");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 4000);
    }
}
