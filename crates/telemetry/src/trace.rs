//! Per-job lifecycle tracing: a bounded, lock-striped ring buffer.
//!
//! A [`TraceLog`] answers the question metrics cannot: *why was this job
//! slow?* Every stage boundary in a job's life — submission, admission,
//! each round, the first delivered sample, the terminal state — appends a
//! [`TraceEvent`] stamped with a monotonic timestamp. The log is a fixed
//! number of stripes, each a mutex-guarded ring; a job's events all land in
//! one stripe (keyed by `job % stripes`), so reading a job back preserves
//! insertion order and writers for different jobs rarely contend. When a
//! stripe is full the oldest event is evicted — the log's footprint is
//! fixed at construction, never proportional to traffic.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default total event capacity of a [`TraceLog`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Stripes in a [`TraceLog`] (events are keyed by `job % STRIPES`).
const STRIPES: usize = 8;

/// What happened at one point of a job's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The request was admitted and handed to the scheduler.
    Submitted,
    /// The scheduler promoted the job out of the queue onto walker slots.
    Admitted,
    /// The job found a published walk history at admission (shared policy).
    HistoryHit,
    /// The job looked for a published walk history and found none.
    HistoryMiss,
    /// The job is about to run its first round.
    FirstRound,
    /// A round completed; `queries` is the unique-node query cost the round
    /// added to the job's own metered view.
    RoundCompleted {
        /// Unique-node queries this round cost the job.
        queries: u64,
    },
    /// The job's first sample reached the consumer's stream.
    SamplePublished,
    /// The job reached a terminal state.
    Finished {
        /// The terminal status's wire label (e.g. `"completed"`).
        status: &'static str,
    },
}

impl TraceEventKind {
    /// The event's wire label (the `"event"` discriminator in JSON).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Submitted => "submitted",
            TraceEventKind::Admitted => "admitted",
            TraceEventKind::HistoryHit => "history_hit",
            TraceEventKind::HistoryMiss => "history_miss",
            TraceEventKind::FirstRound => "first_round",
            TraceEventKind::RoundCompleted { .. } => "round_completed",
            TraceEventKind::SamplePublished => "sample_published",
            TraceEventKind::Finished { .. } => "finished",
        }
    }
}

/// One timestamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The job the event belongs to.
    pub job: u64,
    /// Monotonic time since the log was created. Within a job, events are
    /// non-decreasing in `at` and returned in insertion order.
    pub at: Duration,
    /// What happened.
    pub kind: TraceEventKind,
}

#[derive(Debug, Default)]
struct Stripe {
    events: VecDeque<TraceEvent>,
    evicted: u64,
}

/// A bounded, lock-striped ring buffer of [`TraceEvent`]s.
///
/// Capacity 0 disables the log entirely: [`record`](Self::record) becomes a
/// branch-and-return and nothing is ever stored — the service's
/// telemetry-off mode.
#[derive(Debug)]
pub struct TraceLog {
    started: Instant,
    stripes: [Mutex<Stripe>; STRIPES],
    per_stripe: usize,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// A log holding up to `capacity` events in total (rounded up to a
    /// multiple of the stripe count; 0 disables recording).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            started: Instant::now(),
            stripes: std::array::from_fn(|_| Mutex::new(Stripe::default())),
            per_stripe: if capacity == 0 {
                0
            } else {
                capacity.div_ceil(STRIPES)
            },
        }
    }

    /// A log that records nothing (capacity 0).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether the log records events at all.
    pub fn enabled(&self) -> bool {
        self.per_stripe > 0
    }

    fn stripe(&self, job: u64) -> std::sync::MutexGuard<'_, Stripe> {
        // A panicking recorder cannot corrupt a VecDeque of Copy events;
        // keep serving the remaining threads instead of poisoning tracing.
        self.stripes[(job % STRIPES as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends an event for `job`, evicting the stripe's oldest event when
    /// full. The timestamp is taken inside the stripe lock, so a job's
    /// events are monotone in insertion order.
    pub fn record(&self, job: u64, kind: TraceEventKind) {
        if self.per_stripe == 0 {
            return;
        }
        let mut stripe = self.stripe(job);
        let at = self.started.elapsed();
        if stripe.events.len() >= self.per_stripe {
            stripe.events.pop_front();
            stripe.evicted += 1;
        }
        stripe.events.push_back(TraceEvent { job, at, kind });
    }

    /// Every retained event of `job`, oldest first. Empty when the job is
    /// unknown, its events were evicted, or the log is disabled.
    pub fn events_for(&self, job: u64) -> Vec<TraceEvent> {
        if self.per_stripe == 0 {
            return Vec::new();
        }
        self.stripe(job)
            .events
            .iter()
            .filter(|e| e.job == job)
            .copied()
            .collect()
    }

    /// Events currently retained, across all jobs.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .events
                    .len()
            })
            .sum()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by ring overflow so far (lifetime).
    pub fn evicted(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).evicted)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_insertion_order_with_monotone_times() {
        let log = TraceLog::new(1024);
        assert!(log.enabled());
        log.record(7, TraceEventKind::Submitted);
        log.record(7, TraceEventKind::Admitted);
        log.record(15, TraceEventKind::Submitted); // same stripe as 7
        log.record(7, TraceEventKind::RoundCompleted { queries: 12 });
        log.record(
            7,
            TraceEventKind::Finished {
                status: "completed",
            },
        );
        let events = log.events_for(7);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, TraceEventKind::Submitted);
        assert_eq!(events[1].kind, TraceEventKind::Admitted);
        assert_eq!(
            events[2].kind,
            TraceEventKind::RoundCompleted { queries: 12 }
        );
        assert_eq!(events[3].kind.label(), "finished");
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(log.events_for(15).len(), 1, "other jobs are filtered out");
        assert_eq!(log.events_for(999), vec![], "unknown jobs are empty");
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        assert_eq!(log.evicted(), 0);
    }

    #[test]
    fn full_stripes_evict_oldest_first() {
        // Total capacity 8 → one slot per stripe: the second event for a
        // stripe evicts the first.
        let log = TraceLog::new(8);
        log.record(0, TraceEventKind::Submitted);
        log.record(0, TraceEventKind::Admitted);
        let events = log.events_for(0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, TraceEventKind::Admitted);
        assert_eq!(log.evicted(), 1);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::disabled();
        assert!(!log.enabled());
        log.record(1, TraceEventKind::Submitted);
        assert!(log.events_for(1).is_empty());
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 0);
    }

    #[test]
    fn concurrent_writers_keep_per_job_order() {
        let log = std::sync::Arc::new(TraceLog::new(100_000));
        std::thread::scope(|scope| {
            for job in 0..8u64 {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    log.record(job, TraceEventKind::Submitted);
                    for q in 0..100 {
                        log.record(job, TraceEventKind::RoundCompleted { queries: q });
                    }
                    log.record(
                        job,
                        TraceEventKind::Finished {
                            status: "completed",
                        },
                    );
                });
            }
        });
        for job in 0..8u64 {
            let events = log.events_for(job);
            assert_eq!(events.len(), 102);
            assert_eq!(events[0].kind, TraceEventKind::Submitted);
            assert_eq!(events[101].kind.label(), "finished");
            assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }
}
