//! Lock-free log-bucketed quantile histograms.
//!
//! An HDR-style layout with **two sub-buckets per power-of-two octave**: a
//! value `v ≥ 2` lands in bucket `2·⌊log₂ v⌋` or the next one up, depending
//! on the bit below the leading one, so every bucket spans at most half of
//! its octave. Quantile estimates take the bucket midpoint (clamped to the
//! recorded min/max), which bounds the relative error at 25 % — one bucket
//! — while the whole histogram is 128 atomics, independent of how many
//! values it has absorbed. `record` is five relaxed atomic operations and
//! never allocates or locks, so it is safe on the scheduler's hot path.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Buckets in a [`Histogram`]: two per octave over the full `u64` range
/// (bucket 0 is the value 0, bucket 1 the value 1, bucket 127 ends at
/// `u64::MAX`).
pub const BUCKET_COUNT: usize = 128;

/// The bucket a value lands in.
pub fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        1 => 1,
        v => {
            let h = 63 - v.leading_zeros() as usize;
            2 * h + ((v >> (h - 1)) & 1) as usize
        }
    }
}

/// The inclusive `(low, high)` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    match index {
        0 => (0, 0),
        1 => (1, 1),
        i => {
            let h = i / 2;
            let half = 1u64 << (h - 1);
            let low = (1u64 << h) + if i % 2 == 1 { half } else { 0 };
            // `low + half - 1` would overflow for the top bucket; reorder so
            // the intermediate stays ≤ u64::MAX.
            (low, low - 1 + half)
        }
    }
}

/// A `Duration` in whole microseconds, saturating at `u64::MAX` instead of
/// silently truncating the high bits the way `as_micros() as u64` does
/// (`Duration` can hold ~10^19 µs; a `u64` cannot).
pub fn saturating_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A lock-free log-bucketed histogram over `u64` values.
///
/// Writers call [`record`](Self::record) concurrently from any thread;
/// readers take a [`snapshot`](Self::snapshot) (buckets are read
/// one-by-one, so a snapshot taken during concurrent writes may be mid-sum
/// by a few events — fine for monitoring, which is the use case).
///
/// The running `sum` wraps on overflow after ~1.8 × 10¹⁹ recorded
/// microseconds (≈ 585 000 device-years of latency) — accepted for a
/// monitoring counter.
pub struct Histogram {
    counts: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Lock-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in saturating whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(saturating_micros(d));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds another histogram's current contents into this one.
    pub fn merge(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds a snapshot's contents into this histogram.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for (bucket, &n) in self.counts.iter().zip(snap.counts.iter()) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Estimated `q`-quantile of the recorded values (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Clears every bucket and aggregate back to the empty state.
    ///
    /// Not atomic with respect to concurrent writers — a racing `record`
    /// may survive or be partially dropped. Use only at quiescent points
    /// (test setup, counter-reset endpoints), like every other `reset` in
    /// this workspace.
    pub fn reset(&self) {
        for bucket in &self.counts {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of every bucket and aggregate.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A point-in-time copy of a [`Histogram`].
///
/// `Copy` on purpose: the service's metrics snapshot embeds these by value,
/// so frontends get one consistent document without reference lifetimes.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_bounds`] for each bucket's range).
    pub counts: [u64; BUCKET_COUNT],
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping, see [`Histogram`]).
    pub sum: u64,
    /// Smallest recorded value (0 while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`; 0 while empty).
    ///
    /// Exact to the bucket: the returned value is the midpoint of the
    /// bucket holding the ⌈q·count⌉-th smallest recorded value, clamped to
    /// the recorded `[min, max]` — within 25 % relative error of the exact
    /// order statistic by the two-sub-buckets-per-octave layout. `q ≤ 0`
    /// and `q ≥ 1` return the exactly-tracked `min` and `max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // The extremes are tracked exactly; don't degrade them to a bucket
        // midpoint.
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (low, high) = bucket_bounds(i);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending order — the sparse form Prometheus `_bucket` series are
    /// rendered from.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_bounds(i).1, n))
    }
}

impl fmt::Debug for HistogramSnapshot {
    // 128 bucket counts would drown every dbg! site; summarize instead.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exhaustive_and_ordered() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(6), 5);
        assert_eq!(bucket_index(7), 5);
        assert_eq!(bucket_index(8), 6);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        // Bounds tile the u64 range exactly: each bucket starts right after
        // the previous one ends, and every value maps into its own bucket.
        let mut expected_low = 0u64;
        for i in 0..BUCKET_COUNT {
            let (low, high) = bucket_bounds(i);
            assert_eq!(low, expected_low, "bucket {i} starts where the last ended");
            assert!(low <= high);
            assert_eq!(bucket_index(low), i);
            assert_eq!(bucket_index(high), i);
            expected_low = high.wrapping_add(1);
        }
        assert_eq!(expected_low, 0, "last bucket ends at u64::MAX");
    }

    #[test]
    fn record_tracks_aggregates() {
        let h = Histogram::new();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().min, 0, "empty snapshot reports min 0");
        for v in [5u64, 10, 10, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(h.count(), 4);
        assert_eq!(snap.sum, 1025);
        assert_eq!(snap.min, 5);
        assert_eq!(snap.max, 1000);
        assert!((snap.mean() - 256.25).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_within_one_bucket() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for (q, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let est = snap.quantile(q) as f64;
            let err = (est - exact).abs() / exact;
            assert!(err <= 0.25, "q={q}: est {est} vs exact {exact} (err {err})");
        }
        // Extremes clamp to the recorded min/max.
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(1.0), 10_000);
        assert_eq!(snap.quantile(-3.0), 1);
        assert_eq!(snap.quantile(7.0), 10_000);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 777);
        }
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
            all.record(v);
        }
        for v in 400..=900u64 {
            b.record(v * 3);
            all.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::new());
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i + 1);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 40_000);
        assert_eq!(snap.sum, 40_000 * 40_001 / 2);
        assert_eq!(snap.counts.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn reset_restores_the_empty_state() {
        let h = Histogram::new();
        for v in [3u64, 9, 81] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        // Recording after a reset behaves like a fresh histogram.
        h.record(42);
        let snap = h.snapshot();
        assert_eq!((snap.count, snap.min, snap.max), (1, 42, 42));
    }

    #[test]
    fn saturating_micros_does_not_truncate() {
        assert_eq!(saturating_micros(Duration::ZERO), 0);
        assert_eq!(saturating_micros(Duration::from_micros(1_234)), 1_234);
        // Duration::MAX is ~5.8e12 years ≈ 1.8e25 µs — far past u64::MAX
        // (~1.8e19). `as_micros() as u64` silently keeps the low 64 bits;
        // the helper must saturate instead.
        assert_eq!(saturating_micros(Duration::MAX), u64::MAX);
        let over_u64 = Duration::from_secs(u64::MAX / 1_000_000 + 10);
        assert!(over_u64.as_micros() > u128::from(u64::MAX));
        assert_eq!(saturating_micros(over_u64), u64::MAX);
    }

    #[test]
    fn extreme_values_round_trip() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), u64::MAX);
        let debug = format!("{snap:?}");
        assert!(debug.contains("count"), "debug form is a summary: {debug}");
    }
}
