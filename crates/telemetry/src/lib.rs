//! # wnw-telemetry — distribution-level observability for the sampling stack
//!
//! The service layer's counters answer *how much*; they cannot answer *how
//! bad the tail is* or *why a slow job was slow*. This crate is the
//! std-only observability substrate the engine, service, and gateway report
//! through:
//!
//! * [`Histogram`] — a lock-free, fixed-footprint log-bucketed (HDR-style,
//!   two sub-buckets per power-of-two octave) atomic histogram over `u64`
//!   values. `record` is a handful of relaxed atomic adds; quantile
//!   estimates are within one bucket (≤ 25 % relative error) of the exact
//!   order statistic.
//! * [`Recorder`] — a named-metric registry bundling counters, gauges, and
//!   histograms behind one consistent [`snapshot`](Recorder::snapshot).
//! * [`TraceLog`] — a bounded, lock-striped ring buffer of per-job
//!   lifecycle [`TraceEvent`]s, each stamped with a monotonic timestamp, so
//!   a slow job's life (`Submitted` → `Admitted` → rounds → `Finished`) can
//!   be replayed after the fact.
//! * [`prometheus`] — hand-rolled Prometheus text exposition (format
//!   0.0.4): `# TYPE` lines, cumulative `_bucket`/`_sum`/`_count` series,
//!   plus a grammar [`validator`](prometheus::validate) the integration
//!   tests machine-check scrapes with.
//!
//! ## Metric naming
//!
//! The gateway's `GET /v1/metrics/prometheus` endpoint maps the service
//! snapshot onto `wnw_*`-prefixed series:
//!
//! | Series | Kind | Meaning |
//! |---|---|---|
//! | `wnw_jobs_submitted_total`, `wnw_jobs_rejected_total`, `wnw_jobs_completed_total`, `wnw_jobs_cancelled_total`, `wnw_jobs_expired_total`, `wnw_jobs_failed_total`, `wnw_jobs_finished_total`, `wnw_jobs_started_total` | counter | job lifecycle counters |
//! | `wnw_jobs_queued`, `wnw_jobs_running` | gauge | jobs currently queued / holding walker slots |
//! | `wnw_samples_delivered_total`, `wnw_budget_refunded_total` | counter | delivery and refund totals |
//! | `wnw_aggregate_query_cost_total`, `wnw_isolated_query_cost_total`, `wnw_shared_cache_savings` | counter / gauge | the paper's query-cost ledger |
//! | `wnw_pool_*_total` | counter | shared neighbor-cache counters |
//! | `wnw_worker_pool_*` | counter / gauge | persistent worker-pool round dispatch |
//! | `wnw_history_*` | counter / gauge | cross-job history-store reuse |
//! | `wnw_jobs_degraded_total`, `wnw_walkers_degraded_total` | counter | jobs finished as degraded partials / walkers stopped by faults |
//! | `wnw_resilience_*_total` | counter | retry/backoff/breaker counters (calls, faults seen, retries, backoff-wait seconds, honored rate limits, exhausted retries, recoveries, breaker trips, half-open probes, fast-fails) |
//! | `wnw_resilience_breaker_open` | gauge | whether the circuit breaker is currently open |
//! | `wnw_queue_wait_us`, `wnw_job_latency_us`, `wnw_time_to_first_sample_us`, `wnw_round_duration_us` | histogram | microsecond latency distributions |
//! | `wnw_job_query_cost` | histogram | unique-node queries per finished job |
//!
//! ```
//! use wnw_telemetry::Histogram;
//!
//! let h = Histogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! let snap = h.snapshot();
//! assert_eq!(snap.count, 1000);
//! let p50 = snap.quantile(0.5);
//! assert!((p50 as f64 - 500.0).abs() / 500.0 <= 0.25, "p50 was {p50}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod prometheus;
pub mod recorder;
pub mod trace;

pub use histogram::{
    bucket_bounds, bucket_index, saturating_micros, Histogram, HistogramSnapshot, BUCKET_COUNT,
};
pub use recorder::{Counter, Gauge, Recorder, RecorderSnapshot};
pub use trace::{TraceEvent, TraceEventKind, TraceLog, DEFAULT_TRACE_CAPACITY};
