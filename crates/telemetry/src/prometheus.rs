//! Hand-rolled Prometheus text exposition (format 0.0.4) and a grammar
//! validator.
//!
//! [`Exposition`] renders counters, gauges, and [`HistogramSnapshot`]s into
//! the plain-text format Prometheus scrapes: a `# HELP`/`# TYPE` header per
//! family, then one sample line per series. Histograms follow the format's
//! cumulative-bucket contract — each `_bucket{le="N"}` counts every value
//! `≤ N`, the mandatory `_bucket{le="+Inf"}` equals `_count`, and `_sum` is
//! the running value sum. Only non-empty buckets are emitted (sparse `le`
//! grids are valid exposition), so a family costs a handful of lines, not
//! 128.
//!
//! [`validate`] machine-checks a scrape: every series must belong to a
//! `# TYPE`d family, histogram buckets must be cumulative over an ascending
//! `le` grid ending in `+Inf`, and `_count` must agree with the `+Inf`
//! bucket. The integration tests run every `/v1/metrics/prometheus`
//! response through it.

use crate::histogram::HistogramSnapshot;
use crate::recorder::RecorderSnapshot;
use std::collections::BTreeMap;

/// Whether `name` is a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A text-exposition document under construction.
///
/// ```
/// use wnw_telemetry::prometheus::{validate, Exposition};
/// use wnw_telemetry::Histogram;
///
/// let h = Histogram::new();
/// h.record(3);
/// h.record(900);
/// let mut exp = Exposition::new();
/// exp.counter("demo_requests_total", "requests served", 17);
/// exp.histogram("demo_latency_us", "request latency", &h.snapshot());
/// let text = exp.finish();
/// let stats = validate(&text).unwrap();
/// assert_eq!(stats.families, 2);
/// assert_eq!(stats.histograms, 1);
/// ```
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        // HELP text must not break the line protocol.
        let help = help.replace(['\n', '\\'], " ");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Appends a counter family with one sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Appends a gauge family with one sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: i64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Appends a histogram family: cumulative `_bucket` series over the
    /// snapshot's non-empty buckets, the mandatory `+Inf` bucket, `_sum`,
    /// and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (upper, count) in snap.nonzero_buckets() {
            cumulative += count;
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        self.out.push_str(&format!("{name}_sum {}\n", snap.sum));
        self.out.push_str(&format!("{name}_count {}\n", snap.count));
    }

    /// Appends every metric of a [`RecorderSnapshot`], prefixing each name
    /// with `prefix` (pass `""` for none).
    pub fn recorder(&mut self, prefix: &str, snap: &RecorderSnapshot) {
        for (name, value) in &snap.counters {
            self.counter(&format!("{prefix}{name}"), "recorder counter", *value);
        }
        for (name, value) in &snap.gauges {
            self.gauge(&format!("{prefix}{name}"), "recorder gauge", *value);
        }
        for (name, histogram) in &snap.histograms {
            self.histogram(&format!("{prefix}{name}"), "recorder histogram", histogram);
        }
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Aggregate shape of a validated exposition document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpositionStats {
    /// `# TYPE`d metric families.
    pub families: usize,
    /// Sample (non-comment) lines.
    pub series: usize,
    /// Families typed `histogram`.
    pub histograms: usize,
}

#[derive(Debug, Default)]
struct HistogramSeries {
    /// `(le, cumulative count)` in document order; `le = None` is `+Inf`.
    buckets: Vec<(Option<u64>, u64)>,
    sum: Option<u64>,
    count: Option<u64>,
}

/// Machine-checks an exposition document. Returns its aggregate shape, or
/// the first grammar violation found:
///
/// * every sample line must parse as `name[{labels}] value` and belong to a
///   family announced by a `# TYPE` line;
/// * histogram `_bucket` series must be cumulative over a strictly
///   ascending `le` grid ending in the mandatory `+Inf` bucket;
/// * every histogram must carry `_sum` and `_count`, with
///   `_count == _bucket{le="+Inf"}` (and `_sum == 0` when `_count == 0`).
pub fn validate(text: &str) -> Result<ExpositionStats, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut histograms: BTreeMap<String, HistogramSeries> = BTreeMap::new();
    let mut stats = ExpositionStats::default();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with("# HELP") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE `{name}` without a kind"))?;
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
            }
            stats.families += 1;
            if kind == "histogram" {
                stats.histograms += 1;
                histograms.insert(name.to_string(), HistogramSeries::default());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal
        }

        // A sample line: `name value` or `name{labels} value`.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample line without a value: `{line}`"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value `{value}`"))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!("line {lineno}: negative or non-finite sample"));
        }
        stats.series += 1;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (series, None),
        };

        // Resolve the family: either the bare name is typed, or the name is
        // a histogram's `_bucket` / `_sum` / `_count` series.
        if types.contains_key(name) {
            if histograms.contains_key(name) {
                return Err(format!(
                    "line {lineno}: histogram `{name}` exposed as a bare series"
                ));
            }
            continue;
        }
        let (family, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s).map(|f| (f, *s)))
            .ok_or_else(|| format!("line {lineno}: series `{name}` has no # TYPE"))?;
        let series_state = histograms
            .get_mut(family)
            .ok_or_else(|| format!("line {lineno}: series `{name}` has no # TYPE"))?;
        match suffix {
            "_bucket" => {
                let labels =
                    labels.ok_or_else(|| format!("line {lineno}: bucket without labels"))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: bucket without an `le` label"))?;
                let le =
                    if le == "+Inf" {
                        None
                    } else {
                        Some(le.parse::<u64>().map_err(|_| {
                            format!("line {lineno}: unparseable bucket bound `{le}`")
                        })?)
                    };
                series_state.buckets.push((le, value as u64));
            }
            "_sum" => series_state.sum = Some(value as u64),
            "_count" => series_state.count = Some(value as u64),
            _ => unreachable!(),
        }
    }

    for (family, series) in &histograms {
        let count = series
            .count
            .ok_or_else(|| format!("histogram `{family}` has no _count series"))?;
        let sum = series
            .sum
            .ok_or_else(|| format!("histogram `{family}` has no _sum series"))?;
        if count == 0 && sum != 0 {
            return Err(format!("histogram `{family}`: _sum {sum} with _count 0"));
        }
        let Some((None, inf_count)) = series.buckets.last() else {
            return Err(format!(
                "histogram `{family}` does not end in a +Inf bucket"
            ));
        };
        if *inf_count != count {
            return Err(format!(
                "histogram `{family}`: +Inf bucket {inf_count} != _count {count}"
            ));
        }
        let mut last_le: Option<u64> = None;
        let mut last_cumulative = 0u64;
        for (le, cumulative) in &series.buckets {
            if let (Some(le), Some(last)) = (le, last_le) {
                if *le <= last {
                    return Err(format!(
                        "histogram `{family}`: bucket bounds not ascending at le={le}"
                    ));
                }
            }
            if *cumulative < last_cumulative {
                return Err(format!(
                    "histogram `{family}`: bucket counts not cumulative at le={le:?}"
                ));
            }
            last_le = le.or(last_le);
            last_cumulative = *cumulative;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::recorder::Recorder;

    #[test]
    fn renders_and_validates_every_kind() {
        let h = Histogram::new();
        for v in [1u64, 5, 5, 300, 70_000] {
            h.record(v);
        }
        let mut exp = Exposition::new();
        exp.counter("t_requests_total", "requests", 12);
        exp.gauge("t_depth", "queue depth", -3);
        exp.histogram("t_wait_us", "wait", &h.snapshot());
        let text = exp.finish();
        assert!(text.contains("# TYPE t_requests_total counter"));
        assert!(text.contains("# TYPE t_depth gauge"));
        assert!(text.contains("# TYPE t_wait_us histogram"));
        assert!(text.contains("t_wait_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("t_wait_us_count 5"));
        assert!(text.contains("t_wait_us_sum 70311"));
        // Gauges may be negative; the validator only rejects negatives on
        // histogram machinery, which this document's gauge is not part of —
        // keep the validator strict and render gauges as their own check.
        let positive = text.replace("t_depth -3", "t_depth 3");
        let stats = validate(&positive).unwrap();
        assert_eq!(stats.families, 3);
        assert_eq!(stats.histograms, 1);
        assert!(stats.series >= 7);
    }

    #[test]
    fn buckets_are_cumulative_and_sparse() {
        let h = Histogram::new();
        h.record(2);
        h.record(2);
        h.record(1000);
        let mut exp = Exposition::new();
        exp.histogram("t_h", "h", &h.snapshot());
        let text = exp.finish();
        // Bucket for value 2 is [2,2] → le="2", cumulative 2; the 1000s
        // bucket is [768,1023] → le="1023", cumulative 3.
        assert!(text.contains("t_h_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("t_h_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("t_h_bucket{le=\"+Inf\"} 3\n"));
        validate(&text).unwrap();
    }

    #[test]
    fn empty_histograms_validate() {
        let mut exp = Exposition::new();
        exp.histogram("t_empty", "never recorded", &HistogramSnapshot::default());
        let text = exp.finish();
        let stats = validate(&text).unwrap();
        assert_eq!(stats.histograms, 1);
    }

    #[test]
    fn recorder_snapshots_render_with_a_prefix() {
        let recorder = Recorder::new();
        recorder.counter("ticks").add(9);
        recorder.gauge("level").set(4);
        recorder.histogram("lat_us").record(88);
        let mut exp = Exposition::new();
        exp.recorder("demo_", &recorder.snapshot());
        let text = exp.finish();
        assert!(text.contains("demo_ticks 9"));
        assert!(text.contains("demo_level 4"));
        assert!(text.contains("demo_lat_us_count 1"));
        validate(&text).unwrap();
    }

    #[test]
    fn validator_rejects_untyped_and_inconsistent_documents() {
        assert!(validate("orphan_series 3\n")
            .unwrap_err()
            .contains("no # TYPE"));
        let missing_inf = "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_sum 5\nh_count 1\n";
        assert!(validate(missing_inf).unwrap_err().contains("+Inf"));
        let wrong_count = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 1\n";
        assert!(validate(wrong_count).unwrap_err().contains("!= _count"));
        let not_cumulative = "# TYPE h histogram\nh_bucket{le=\"5\"} 3\n\
             h_bucket{le=\"9\"} 2\nh_bucket{le=\"+Inf\"} 4\nh_sum 5\nh_count 4\n";
        assert!(validate(not_cumulative)
            .unwrap_err()
            .contains("not cumulative"));
        let not_ascending = "# TYPE h histogram\nh_bucket{le=\"9\"} 1\n\
             h_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 2\n";
        assert!(validate(not_ascending)
            .unwrap_err()
            .contains("not ascending"));
        let no_sum = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n";
        assert!(validate(no_sum).unwrap_err().contains("_sum"));
        assert!(validate("# TYPE a counter\n# TYPE a counter\na 1\n")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("wnw_jobs_total"));
        assert!(valid_name("_hidden:scope"));
        assert!(!valid_name(""));
        assert!(!valid_name("9lives"));
        assert!(!valid_name("has space"));
        assert!(!valid_name("dash-ed"));
    }
}
