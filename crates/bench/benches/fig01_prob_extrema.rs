//! Figure 1 bench: exact min/max sampling probability vs walk length.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_experiments::figures::fig01;
use wnw_experiments::report::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_prob_extrema");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("ba31_srw_trajectory", |b| {
        b.iter(|| {
            let result = fig01::run(ExperimentScale::Quick);
            assert!(!result.tables[0].is_empty());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
