//! Gateway streams bench: the `wnw-loadgen` concurrency tiers against a
//! fresh two-I/O-thread loopback gateway per tier.
//!
//! Writes `BENCH_gateway_streams.json` at the repo root — one row per
//! tier with accepted/opened/completed stream counts, p50/p99
//! time-to-first-sample, events per second, and the server-metrics
//! cross-check. Exits nonzero when any tier sheds, errors, or loses a
//! job — or, at full scale, when no tier held at least 1 000 streams
//! concurrently open to completion — so CI can gate on the exit code
//! alone. Set `WNW_BENCH_SMOKE=1` for the CI-sized run.

use wnw_loadgen::streams::{run_streams_suite, streams_suite_json, suite_pass};
use wnw_loadgen::Scale;

fn main() {
    let scale = if std::env::var_os("WNW_BENCH_SMOKE").is_some() {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let reports = match run_streams_suite(scale) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("streams suite failed to run: {err}");
            std::process::exit(1);
        }
    };

    eprintln!("gateway streams tiers ({scale:?}):");
    for r in &reports {
        eprintln!(
            "  requested {:>6}  opened {:>6}  completed {:>6}  lost {:>3}  \
             ttfs p50 {:>8.1} ms  p99 {:>8.1} ms  {:>8.0} events/s  {}",
            r.requested,
            r.opened,
            r.completed,
            r.lost,
            r.ttfs_ms.p50,
            r.ttfs_ms.p99,
            r.events_per_sec,
            if r.clean() { "CLEAN" } else { "DIRTY" },
        );
    }

    // The bench binary's CWD is the package dir; anchor the report at the
    // repo root regardless.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_gateway_streams.json"
    );
    if let Err(err) = std::fs::write(path, streams_suite_json(scale, &reports)) {
        // The JSON report is the bench's whole point for CI — a silent
        // miss would leave the workflow green with no artifact.
        eprintln!("could not write {path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");

    if !suite_pass(scale, &reports) {
        eprintln!("gateway streams suite failed its verdict");
        std::process::exit(1);
    }
}
