//! Figure 2 bench: IDEAL-WALK exact cost curves on the case-study models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_core::ideal;
use wnw_experiments::figures::fig02;
use wnw_experiments::report::ExperimentScale;
use wnw_graph::generators::classic::hypercube;
use wnw_graph::NodeId;
use wnw_mcmc::{RandomWalkKind, TargetDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02_ideal_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("all_models_quick", |b| {
        b.iter(|| {
            let result = fig02::run(ExperimentScale::Quick);
            assert!(!result.tables[0].is_empty());
        })
    });
    let cube = hypercube(5);
    group.bench_function("hypercube32_cost_curve", |b| {
        b.iter(|| {
            ideal::exact_cost_curve_lazy(
                &cube,
                RandomWalkKind::Simple,
                NodeId(0),
                64,
                TargetDistribution::Uniform,
                0.2,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
