//! Figure 10 bench: relative error vs number of samples on the quick Google
//! Plus surrogate (sample quality, not just cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_core::{WalkEstimateConfig, WalkLengthPolicy};
use wnw_experiments::datasets::DatasetRegistry;
use wnw_experiments::measures::Aggregate;
use wnw_experiments::report::ExperimentScale;
use wnw_experiments::runner::{error_vs_samples, SamplerKind, Workbench};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_error_vs_samples");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let registry = DatasetRegistry::new(ExperimentScale::Quick);
    let dataset = registry.google_plus();
    let config = WalkEstimateConfig::default()
        .with_walk_length(WalkLengthPolicy::paper_default(7))
        .with_crawl_depth(1);
    let bench = Workbench::new(dataset.graph, config);
    for kind in [
        SamplerKind::Mhrw,
        SamplerKind::Mhrw.walk_estimate_counterpart(),
    ] {
        group.bench_function(format!("avg_degree_10_samples_{}", kind.label()), |b| {
            b.iter(|| error_vs_samples(&bench, kind, &Aggregate::Degree, &[10], 1, 0x1005))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
