//! Figure 5 bench: per-sample step cost on long-diameter cycles (SRW vs WE).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wnw_core::{WalkEstimateConfig, WalkEstimateVariant, WalkLengthPolicy};
use wnw_experiments::runner::{api_calls_per_sample, SamplerKind, Workbench};
use wnw_graph::generators::classic::cycle;
use wnw_graph::metrics;
use wnw_mcmc::RandomWalkKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_diameter_limit");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [11usize, 21] {
        let graph = cycle(n);
        let diameter = metrics::exact_diameter(&graph).unwrap();
        let config = WalkEstimateConfig::default()
            .with_walk_length(WalkLengthPolicy::paper_default(diameter))
            .with_crawl_depth(1);
        let bench = Workbench::new(graph, config);
        group.bench_with_input(BenchmarkId::new("srw_steps_per_sample", n), &n, |b, _| {
            b.iter(|| api_calls_per_sample(&bench, SamplerKind::Srw, 2, 1, 5))
        });
        let we = SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant: WalkEstimateVariant::Full,
        };
        group.bench_with_input(BenchmarkId::new("we_steps_per_sample", n), &n, |b, _| {
            b.iter(|| api_calls_per_sample(&bench, we, 2, 1, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
