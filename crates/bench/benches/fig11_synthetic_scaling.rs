//! Figure 11 bench: synthetic Barabási–Albert graphs — error vs cost at
//! several graph sizes (quick scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wnw_core::WalkEstimateConfig;
use wnw_experiments::datasets::DatasetRegistry;
use wnw_experiments::measures::Aggregate;
use wnw_experiments::report::ExperimentScale;
use wnw_experiments::runner::{error_vs_cost, SamplerKind, Workbench};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_synthetic_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let registry = DatasetRegistry::new(ExperimentScale::Quick);
    let we = SamplerKind::Srw.walk_estimate_counterpart();
    for n in registry.synthetic_sizes() {
        let graph = registry.synthetic(n);
        let bench = Workbench::new(graph, WalkEstimateConfig::default());
        let budget = (n / 3) as u64;
        group.bench_with_input(BenchmarkId::new("avg_degree_we_srw", n), &n, |b, _| {
            b.iter(|| error_vs_cost(&bench, we, &Aggregate::Degree, &[budget], 1, 0x1106))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
