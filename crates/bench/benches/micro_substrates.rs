//! Micro-benchmarks for the substrates: graph generation, BFS, spectral gap,
//! exact distribution evolution, forward walking, and backward estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use wnw_bench::{small_osn, small_scale_free};
use wnw_core::estimate::unbiased::unbiased_estimate;
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::{metrics, NodeId};
use wnw_mcmc::distribution::TransitionMatrix;
use wnw_mcmc::spectral::spectral_gap;
use wnw_mcmc::{random_walk, RandomWalkKind};

fn graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_graph_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [1_000usize, 5_000] {
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m3", n), &n, |b, &n| {
            b.iter(|| barabasi_albert(n, 3, 7).unwrap())
        });
    }
    group.finish();
}

fn graph_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_graph_metrics");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let graph = small_scale_free(2_000, 11);
    group.bench_function("bfs_distances", |b| {
        b.iter(|| metrics::bfs_distances(&graph, NodeId(0)))
    });
    group.bench_function("double_sweep_diameter", |b| {
        b.iter(|| metrics::double_sweep_diameter_estimate(&graph, 3))
    });
    group.bench_function("average_local_clustering", |b| {
        b.iter(|| metrics::average_local_clustering(&graph))
    });
    group.finish();
}

fn mcmc_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_mcmc_kernels");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let graph = small_scale_free(1_000, 13);
    let matrix = TransitionMatrix::new(&graph, RandomWalkKind::Simple);
    let start = vec![1.0 / graph.node_count() as f64; graph.node_count()];
    group.bench_function("distribution_step", |b| {
        b.iter(|| matrix.step_distribution(&start))
    });
    group.bench_function("spectral_gap_srw", |b| {
        b.iter(|| spectral_gap(&graph, RandomWalkKind::Simple, 1e-6))
    });
    group.finish();
}

fn walking_and_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_walk_estimate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let osn = small_osn(1_000, 17);
    group.bench_function("forward_walk_15_steps", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| random_walk(&osn, RandomWalkKind::Simple, NodeId(0), 15, &mut rng).unwrap())
    });
    group.bench_function("backward_unbiased_estimate_t8", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            unbiased_estimate(
                &osn,
                RandomWalkKind::Simple,
                NodeId(100),
                NodeId(0),
                8,
                &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    graph_generation,
    graph_metrics,
    mcmc_kernels,
    walking_and_estimation
);
criterion_main!(benches);
