//! Figure 12 bench: drawing the sample pools for the exact-bias study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_core::{WalkEstimateConfig, WalkEstimateVariant};
use wnw_experiments::datasets::DatasetRegistry;
use wnw_experiments::report::ExperimentScale;
use wnw_experiments::runner::{draw_nodes, SamplerKind, Workbench};
use wnw_mcmc::RandomWalkKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_exact_bias");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let registry = DatasetRegistry::new(ExperimentScale::Quick);
    let graph = registry.exact_bias_graph();
    let bench = Workbench::new(graph, WalkEstimateConfig::default());
    group.bench_function("srw_200_draws", |b| {
        b.iter(|| draw_nodes(&bench, SamplerKind::Srw, 200, 0x1201))
    });
    let we = SamplerKind::WalkEstimate {
        input: RandomWalkKind::MetropolisHastings,
        variant: WalkEstimateVariant::Full,
    };
    group.bench_function("we_mhrw_200_draws", |b| {
        b.iter(|| draw_nodes(&bench, we, 200, 0x1202))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
