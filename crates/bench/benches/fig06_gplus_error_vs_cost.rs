//! Figure 6 bench: Google Plus (surrogate) relative error vs query cost —
//! one budget point per sampler, quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_core::{WalkEstimateConfig, WalkLengthPolicy};
use wnw_experiments::datasets::DatasetRegistry;
use wnw_experiments::measures::Aggregate;
use wnw_experiments::report::ExperimentScale;
use wnw_experiments::runner::{error_vs_cost, SamplerKind, Workbench};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_gplus_error_vs_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let registry = DatasetRegistry::new(ExperimentScale::Quick);
    let dataset = registry.google_plus();
    let budget = (dataset.graph.node_count() / 3) as u64;
    let config = WalkEstimateConfig::default()
        .with_walk_length(WalkLengthPolicy::paper_default(7))
        .with_crawl_depth(1);
    let bench = Workbench::new(dataset.graph, config);
    for kind in [
        SamplerKind::Srw,
        SamplerKind::Srw.walk_estimate_counterpart(),
        SamplerKind::Mhrw,
    ] {
        group.bench_function(format!("avg_degree_{}", kind.label()), |b| {
            b.iter(|| error_vs_cost(&bench, kind, &Aggregate::Degree, &[budget], 1, 0x0601))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
