//! Micro-benchmark: per-round dispatch cost — scoped `thread::spawn` vs the
//! persistent `WorkerPool`.
//!
//! Before `wnw-runtime`, every engine round (and every `scatter_map` call)
//! spawned and joined fresh OS threads through `std::thread::scope`; the
//! pool replaces that with workers spawned once and woken per round. This
//! bench isolates exactly that difference: the same synthetic round — a
//! fixed batch of walkers, each doing a few dozen nanoseconds of RNG mixing
//! so dispatch overhead dominates — executed by (a) the old scoped-spawn
//! dispatch, reconstructed here verbatim, and (b) a persistent pool, at
//! widths 1/2/4/8.
//!
//! Besides the criterion-shim console output, the bench writes
//! `BENCH_round_dispatch.json` at the repo root (median ns/round per width
//! and the pool-over-scoped speedup) so the perf trajectory has durable
//! data points. Set `WNW_BENCH_SMOKE=1` for a fast CI-sized run.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use wnw_runtime::WorkerPool;

/// Parallelism widths compared (1 = the inline fast path on both sides).
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Walkers per round — the live-walker batch a mid-size job dispatches.
const WALKERS: usize = 8;

fn smoke() -> bool {
    std::env::var_os("WNW_BENCH_SMOKE").is_some()
}

/// A few dozen nanoseconds of xorshift mixing — a stand-in for one walker's
/// draw, deliberately tiny so the measured time is the dispatch itself.
fn draw(state: &mut u64) {
    let mut x = *state | 1;
    for _ in 0..32 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    *state = x;
}

/// The dispatch the engine used before the persistent pool: partition the
/// live walkers round-robin over `width` buckets and spawn one scoped
/// thread per bucket — every round (inline at width 1, as before).
fn scoped_round(width: usize, walkers: &mut [u64]) {
    let width = width.clamp(1, walkers.len());
    if width == 1 {
        for walker in walkers {
            draw(walker);
        }
        return;
    }
    let mut buckets: Vec<Vec<&mut u64>> = (0..width).map(|_| Vec::new()).collect();
    for (i, walker) in walkers.iter_mut().enumerate() {
        buckets[i % width].push(walker);
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for walker in bucket {
                    draw(walker);
                }
            });
        }
    });
}

/// The persistent-pool dispatch: same batch, same barrier, parked workers.
fn pool_round(pool: &WorkerPool, walkers: &mut [u64]) {
    pool.round(walkers, draw);
}

/// Median wall-clock nanoseconds per round over `samples` timed batches of
/// `rounds` rounds each.
fn median_ns_per_round(samples: usize, rounds: usize, mut run_round: impl FnMut()) -> f64 {
    // One untimed batch to warm caches (and page the pool's workers in).
    for _ in 0..rounds.min(16) {
        run_round();
    }
    let mut per_sample: Vec<f64> = (0..samples)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..rounds {
                run_round();
            }
            started.elapsed().as_nanos() as f64 / rounds as f64
        })
        .collect();
    per_sample.sort_by(f64::total_cmp);
    per_sample[per_sample.len() / 2]
}

/// One width's measurements.
struct WidthResult {
    width: usize,
    scoped_ns: f64,
    pool_ns: f64,
}

impl WidthResult {
    fn speedup(&self) -> f64 {
        self.scoped_ns / self.pool_ns.max(1.0)
    }
}

fn measure_all() -> Vec<WidthResult> {
    let (samples, rounds) = if smoke() { (3, 60) } else { (9, 400) };
    WIDTHS
        .iter()
        .map(|&width| {
            let mut walkers: Vec<u64> = (1..=WALKERS as u64).collect();
            let scoped_ns =
                median_ns_per_round(samples, rounds, || scoped_round(width, &mut walkers));
            let pool = WorkerPool::new(width);
            let pool_ns = median_ns_per_round(samples, rounds, || pool_round(&pool, &mut walkers));
            WidthResult {
                width,
                scoped_ns,
                pool_ns,
            }
        })
        .collect()
}

fn write_json(results: &[WidthResult], path: &str) -> std::io::Result<()> {
    let (samples, rounds) = if smoke() { (3, 60) } else { (9, 400) };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"round_dispatch\",\n");
    out.push_str(
        "  \"description\": \"per-round dispatch cost of one engine round (8 walkers, \
         trivial draws): scoped thread::spawn per round vs persistent WorkerPool; \
         median wall-clock ns per round\",\n",
    );
    out.push_str(&format!("  \"walkers_per_round\": {WALKERS},\n"));
    out.push_str(&format!("  \"rounds_per_sample\": {rounds},\n"));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str(&format!("  \"smoke\": {},\n", smoke()));
    out.push_str("  \"widths\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"width\": {}, \"scoped_spawn_ns_per_round\": {:.1}, \
             \"worker_pool_ns_per_round\": {:.1}, \"pool_speedup\": {:.2}}}{}\n",
            r.width,
            r.scoped_ns,
            r.pool_ns,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn bench_round_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_dispatch");
    let (sample_size, time) = if smoke() {
        (20, Duration::from_millis(200))
    } else {
        (60, Duration::from_secs(1))
    };
    group.sample_size(sample_size).measurement_time(time);
    for &width in &WIDTHS {
        let mut walkers: Vec<u64> = (1..=WALKERS as u64).collect();
        group.bench_with_input(
            BenchmarkId::new("scoped_spawn", width),
            &width,
            |b, &width| b.iter(|| scoped_round(width, &mut walkers)),
        );
        let pool = WorkerPool::new(width);
        let mut walkers: Vec<u64> = (1..=WALKERS as u64).collect();
        group.bench_with_input(BenchmarkId::new("worker_pool", width), &width, |b, _| {
            b.iter(|| pool_round(&pool, &mut walkers))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_dispatch);

fn main() {
    benches();
    let results = measure_all();
    eprintln!("round dispatch, median ns/round ({WALKERS} walkers):");
    for r in &results {
        eprintln!(
            "  width {}: scoped {:>12.1}  pool {:>12.1}  speedup {:.2}x",
            r.width,
            r.scoped_ns,
            r.pool_ns,
            r.speedup()
        );
    }
    // The bench binary's CWD is the package dir; anchor the report at the
    // repo root regardless.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_round_dispatch.json"
    );
    match write_json(&results, path) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => {
            // The JSON report is the bench's whole point for CI — a silent
            // miss would leave the workflow green with no artifact.
            eprintln!("could not write {path}: {err}");
            std::process::exit(1);
        }
    }
}
