//! Service load bench: the `wnw-loadgen` preset suite against a fresh
//! loopback gateway per scenario, scored against each scenario's SLO.
//!
//! Writes `BENCH_service_load.json` at the repo root — one row per
//! scenario with throughput, shed rate, p50/p99/p999 for queue wait,
//! end-to-end latency, and time-to-first-sample, the server-metrics
//! cross-check, and the per-objective SLO verdicts. Exits nonzero when
//! any scenario misses its SLO (or the artifact cannot be written), so CI
//! can gate on the bench's exit code alone. Set `WNW_BENCH_SMOKE=1` for
//! the CI-sized run.

use wnw_loadgen::{run_preset_suite, suite_json, Scale};

fn main() {
    let scale = if std::env::var_os("WNW_BENCH_SMOKE").is_some() {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let reports = match run_preset_suite(scale) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("load suite failed to run: {err}");
            std::process::exit(1);
        }
    };

    eprintln!("service load suite ({scale:?}):");
    for r in &reports {
        eprintln!(
            "  {:8} offered {:>4}  shed {:>5.1}%  completed {:>4}  {:>6.1} jobs/s  \
             qwait p99 {:>7.1} ms  e2e p99 {:>7.1} ms  ttfs p99 {:>7.1} ms  slo {}",
            r.scenario,
            r.offered,
            r.shed_rate * 100.0,
            r.completed,
            r.throughput_rps,
            r.queue_wait_ms.p99,
            r.e2e_ms.p99,
            r.ttfs_ms.p99,
            if r.slo.pass { "PASS" } else { "FAIL" },
        );
        for check in r.slo.checks.iter().filter(|c| !c.pass) {
            eprintln!(
                "           SLO FAIL {}: observed {:.2} vs threshold {:.2}",
                check.name, check.observed, check.threshold
            );
        }
    }

    // The bench binary's CWD is the package dir; anchor the report at the
    // repo root regardless.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service_load.json");
    if let Err(err) = std::fs::write(path, suite_json(scale, &reports)) {
        // The JSON report is the bench's whole point for CI — a silent
        // miss would leave the workflow green with no artifact.
        eprintln!("could not write {path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");

    if reports.iter().any(|r| !r.slo.pass) {
        eprintln!("one or more scenarios missed their SLO");
        std::process::exit(1);
    }
}
