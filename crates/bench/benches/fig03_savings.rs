//! Figure 3 bench: Theorem 1 query-cost savings across graph sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_core::IdealWalkAnalysis;
use wnw_experiments::figures::fig03;
use wnw_experiments::report::ExperimentScale;
use wnw_graph::generators::random::barabasi_albert;
use wnw_mcmc::RandomWalkKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_savings");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("savings_sweep_quick", |b| {
        b.iter(|| {
            let result = fig03::run(ExperimentScale::Quick);
            assert!(!result.tables[0].is_empty());
        })
    });
    let graph = barabasi_albert(128, 3, 3).unwrap();
    group.bench_function("theorem1_model_ba128", |b| {
        b.iter(|| {
            let analysis = IdealWalkAnalysis::from_graph(&graph, RandomWalkKind::Simple);
            analysis.saving(0.001)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
