//! Ablation benches for the design choices called out in `DESIGN.md`:
//! rejection-sampling scaling-factor policy, walk-length policy, and
//! many-short-runs vs one-long-run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wnw_access::SimulatedOsn;
use wnw_bench::small_scale_free;
use wnw_core::{WalkEstimateConfig, WalkEstimateSampler, WalkLengthPolicy};
use wnw_mcmc::burn_in::{BurnInConfig, ManyShortRunsSampler, OneLongRunSampler};
use wnw_mcmc::sampler::collect_samples;
use wnw_mcmc::{RandomWalkKind, ScalingFactorPolicy};

fn scaling_factor_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scaling_factor");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let graph = small_scale_free(300, 0xAB1);
    for (name, policy) in [
        ("exact_min", ScalingFactorPolicy::ExactMin),
        ("percentile_10", ScalingFactorPolicy::Percentile(10.0)),
        ("percentile_50", ScalingFactorPolicy::Percentile(50.0)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let osn = SimulatedOsn::new(graph.clone());
                let config = WalkEstimateConfig::default().with_scaling_factor(policy);
                let mut sampler =
                    WalkEstimateSampler::new(osn, RandomWalkKind::Simple, config, 0xAB2)
                        .with_diameter_estimate(4);
                collect_samples(&mut sampler, 10).unwrap().len()
            })
        });
    }
    group.finish();
}

fn walk_length_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_walk_length");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let graph = small_scale_free(300, 0xAB3);
    for multiplier in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("diameter_multiple", multiplier),
            &multiplier,
            |b, &m| {
                b.iter(|| {
                    let osn = SimulatedOsn::new(graph.clone());
                    let config = WalkEstimateConfig::default().with_walk_length(
                        WalkLengthPolicy::DiameterMultiple {
                            multiplier: m,
                            offset: 1,
                            assumed_diameter: 4,
                        },
                    );
                    let mut sampler =
                        WalkEstimateSampler::new(osn, RandomWalkKind::Simple, config, 0xAB4);
                    collect_samples(&mut sampler, 10).unwrap().len()
                })
            },
        );
    }
    group.finish();
}

fn short_runs_vs_long_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_one_long_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let graph = small_scale_free(300, 0xAB5);
    group.bench_function("many_short_runs_20_samples", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(graph.clone());
            let mut sampler = ManyShortRunsSampler::new(
                osn,
                RandomWalkKind::Simple,
                BurnInConfig::default(),
                0xAB6,
            );
            collect_samples(&mut sampler, 20).unwrap().len()
        })
    });
    group.bench_function("one_long_run_20_samples", |b| {
        b.iter(|| {
            let osn = SimulatedOsn::new(graph.clone());
            let mut sampler =
                OneLongRunSampler::new(osn, RandomWalkKind::Simple, BurnInConfig::default(), 0xAB7);
            collect_samples(&mut sampler, 20).unwrap().len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    scaling_factor_policies,
    walk_length_policies,
    short_runs_vs_long_run
);
criterion_main!(benches);
