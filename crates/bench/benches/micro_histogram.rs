//! Micro-benchmark: the telemetry substrate's hot-path cost.
//!
//! Two questions decide whether `wnw-telemetry` may sit on the scheduler's
//! hot path:
//!
//! 1. what does one `Histogram::record` / `quantile` cost in isolation
//!    (a handful of relaxed atomics vs a 128-bucket scan), and
//! 2. what does the *whole* telemetry layer — trace log, per-round timing,
//!    job histograms — add to a real `SamplingService` workload, measured
//!    as wall-clock per identical run with telemetry on vs off (the design
//!    budget is ≤ 5 % overhead).
//!
//! Besides the criterion-shim console output, the bench writes
//! `BENCH_telemetry.json` at the repo root (record/quantile ns plus the
//! on-vs-off overhead) so the perf trajectory has durable data points. Set
//! `WNW_BENCH_SMOKE=1` for a fast CI-sized run.

use criterion::{criterion_group, Criterion};
use std::time::{Duration, Instant};
use wnw_access::SimulatedOsn;
use wnw_engine::SampleJob;
use wnw_graph::generators::random::barabasi_albert;
use wnw_mcmc::RandomWalkKind;
use wnw_service::{SampleRequest, SamplingService};
use wnw_telemetry::Histogram;

fn smoke() -> bool {
    std::env::var_os("WNW_BENCH_SMOKE").is_some()
}

/// A deterministic latency-shaped value stream (xorshift, bounded to keep
/// bucket churn realistic) so record cost is not a constant-bucket artifact.
fn values(n: usize) -> Vec<u64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 1_000_000
        })
        .collect()
}

/// Median of `samples` timed batches, as ns per operation.
fn median_ns_per_op(samples: usize, ops: usize, mut run_batch: impl FnMut()) -> f64 {
    run_batch(); // warm
    let mut per_sample: Vec<f64> = (0..samples)
        .map(|_| {
            let started = Instant::now();
            run_batch();
            started.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    per_sample.sort_by(f64::total_cmp);
    per_sample[per_sample.len() / 2]
}

/// One identical service workload; returns its wall-clock. `telemetry`
/// toggles the trace log and per-round timing.
fn service_run(telemetry: bool, jobs: usize, samples: usize) -> Duration {
    let osn = SimulatedOsn::new(barabasi_albert(2_000, 3, 11).expect("valid BA parameters"));
    let service = SamplingService::builder(osn)
        .pool_threads(2)
        .telemetry(telemetry)
        .build();
    let started = Instant::now();
    let tickets: Vec<_> = (0..jobs)
        .map(|i| {
            let job = SampleJob::walk_estimate(RandomWalkKind::Simple, samples, 500 + i as u64)
                .with_walkers(3)
                .with_diameter_estimate(5);
            service.submit(SampleRequest::new(job)).expect("admitted")
        })
        .collect();
    for ticket in tickets {
        ticket.stream.wait().expect("outcome");
    }
    let elapsed = started.elapsed();
    service.shutdown();
    elapsed
}

struct Results {
    record_ns: f64,
    record_contended_ns: f64,
    quantile_ns: f64,
    on_ms: f64,
    off_ms: f64,
}

impl Results {
    /// Telemetry-on overhead over off, in percent (negative = within noise).
    fn overhead_pct(&self) -> f64 {
        (self.on_ms / self.off_ms - 1.0) * 100.0
    }
}

fn measure_all() -> Results {
    let (samples, ops) = if smoke() { (5, 20_000) } else { (15, 200_000) };
    let stream = values(ops);

    let hist = Histogram::new();
    let record_ns = median_ns_per_op(samples, ops, || {
        for &v in &stream {
            hist.record(v);
        }
    });

    // Contended: 4 threads hammering one histogram — the shared-metrics
    // shape the service uses.
    let shared = Histogram::new();
    let threads = 4;
    let record_contended_ns = median_ns_per_op(samples, ops * threads, || {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for &v in &stream {
                        shared.record(v);
                    }
                });
            }
        });
    });

    let quantile_ops = if smoke() { 2_000 } else { 20_000 };
    let snap = hist.snapshot();
    let mut sink = 0u64;
    let quantile_ns = median_ns_per_op(samples, quantile_ops, || {
        for i in 0..quantile_ops {
            sink = sink.wrapping_add(snap.quantile(i as f64 / quantile_ops as f64));
        }
    });
    assert!(sink > 0, "quantiles were computed");

    // Interleave on/off runs so machine drift cancels; keep the medians.
    let (runs, jobs, job_samples) = if smoke() { (3, 2, 30) } else { (7, 4, 150) };
    let mut on: Vec<f64> = Vec::new();
    let mut off: Vec<f64> = Vec::new();
    for _ in 0..runs {
        on.push(service_run(true, jobs, job_samples).as_secs_f64() * 1e3);
        off.push(service_run(false, jobs, job_samples).as_secs_f64() * 1e3);
    }
    on.sort_by(f64::total_cmp);
    off.sort_by(f64::total_cmp);
    Results {
        record_ns,
        record_contended_ns,
        quantile_ns,
        on_ms: on[on.len() / 2],
        off_ms: off[off.len() / 2],
    }
}

fn write_json(r: &Results, path: &str) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"telemetry\",\n");
    out.push_str(
        "  \"description\": \"telemetry hot-path cost: Histogram::record/quantile ns \
         (single-thread and 4-thread contended), and wall-clock of an identical \
         SamplingService workload with telemetry on vs off (median of interleaved runs)\",\n",
    );
    out.push_str(&format!("  \"smoke\": {},\n", smoke()));
    out.push_str(&format!("  \"record_ns\": {:.2},\n", r.record_ns));
    out.push_str(&format!(
        "  \"record_contended_ns\": {:.2},\n",
        r.record_contended_ns
    ));
    out.push_str(&format!("  \"quantile_ns\": {:.2},\n", r.quantile_ns));
    out.push_str(&format!("  \"service_telemetry_on_ms\": {:.2},\n", r.on_ms));
    out.push_str(&format!(
        "  \"service_telemetry_off_ms\": {:.2},\n",
        r.off_ms
    ));
    out.push_str(&format!(
        "  \"telemetry_overhead_pct\": {:.2},\n",
        r.overhead_pct()
    ));
    out.push_str("  \"overhead_budget_pct\": 5.0\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_histogram");
    let (sample_size, time) = if smoke() {
        (20, Duration::from_millis(200))
    } else {
        (60, Duration::from_secs(1))
    };
    group.sample_size(sample_size).measurement_time(time);
    let stream = values(4_096);
    let hist = Histogram::new();
    let mut i = 0usize;
    group.bench_function("record", |b| {
        b.iter(|| {
            hist.record(stream[i % stream.len()]);
            i += 1;
        })
    });
    for &v in &stream {
        hist.record(v);
    }
    let snap = hist.snapshot();
    let mut q = 0usize;
    group.bench_function("quantile", |b| {
        b.iter(|| {
            let quantile = snap.quantile((q % 1000) as f64 / 1000.0);
            q += 1;
            quantile
        })
    });
    group.finish();
}

criterion_group!(benches, bench_histogram);

fn main() {
    benches();
    let results = measure_all();
    eprintln!("telemetry hot path:");
    eprintln!("  record            {:>10.2} ns/op", results.record_ns);
    eprintln!(
        "  record (4 thr)    {:>10.2} ns/op",
        results.record_contended_ns
    );
    eprintln!("  quantile          {:>10.2} ns/op", results.quantile_ns);
    eprintln!(
        "  service run       on {:.2} ms / off {:.2} ms  -> overhead {:+.2}% (budget 5%)",
        results.on_ms,
        results.off_ms,
        results.overhead_pct()
    );
    // The bench binary's CWD is the package dir; anchor the report at the
    // repo root regardless.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    match write_json(&results, path) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => {
            // The JSON report is the bench's whole point for CI — a silent
            // miss would leave the workflow green with no artifact.
            eprintln!("could not write {path}: {err}");
            std::process::exit(1);
        }
    }
}
