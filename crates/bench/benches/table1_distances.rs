//! Table 1 bench: distance computations between empirical and theoretical
//! sampling distributions (ℓ∞, total variation, KL).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_analytics::bias::{degree_ordered_series, EmpiricalDistribution};
use wnw_bench::small_scale_free;
use wnw_core::{WalkEstimateConfig, WalkEstimateVariant};
use wnw_experiments::runner::{draw_nodes, SamplerKind, Workbench};
use wnw_mcmc::RandomWalkKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_distances");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let graph = small_scale_free(200, 0x7AB1);
    let n = graph.node_count();
    let uniform = vec![1.0 / n as f64; n];
    let bench = Workbench::new(graph.clone(), WalkEstimateConfig::default());
    let we = SamplerKind::WalkEstimate {
        input: RandomWalkKind::MetropolisHastings,
        variant: WalkEstimateVariant::Full,
    };
    let samples = draw_nodes(&bench, we, 400, 0x7AB2);
    let dist = EmpiricalDistribution::from_samples(n, &samples);
    group.bench_function("linf_tv_kl", |b| {
        b.iter(|| {
            (
                dist.linf_distance(&uniform),
                dist.total_variation_distance(&uniform),
                dist.kl_from_target(&uniform),
            )
        })
    });
    group.bench_function("degree_ordered_series", |b| {
        b.iter(|| degree_ordered_series(&graph, &dist.probabilities()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
