//! Substrate benchmark: per-node-Vec adjacency vs the CSR catalog
//! substrate, at the scales the ROADMAP's north star actually needs.
//!
//! For each registry spec (`ba_100k` and `ba_1m` at full scale; `ba_10k`
//! and `ba_50k` under `WNW_BENCH_SMOKE=1`) the bench measures:
//!
//! * **build time** — seeded BA generation, then per-node-Vec
//!   (`AdjListGraph`) vs flat two-array (`CsrGraph`) assembly;
//! * **catalog I/O** — binary save and load times, and the load's speedup
//!   over regenerating the same graph (the whole point of catalogs);
//! * **resident bytes/edge** — under the documented allocation model
//!   (24-byte `Vec` headers, 16-byte allocator chunks, growth slack for
//!   the baseline; two flat arrays for CSR);
//! * **random-neighbor-query throughput** — the baseline pays the
//!   `SocialNetwork` contract's owned-`Vec` fetch per query (exactly what
//!   `SimulatedOsn::neighbors` does); CSR answers the same query with the
//!   zero-copy `nth_neighbor` load.
//!
//! Besides the criterion-shim console output, the bench writes
//! `BENCH_graph_substrate.json` at the repo root. At full scale the run
//! **gates**: CSR must be ≥ 2× query throughput and ≤ 0.5× bytes/edge vs
//! the baseline at the largest spec, and a catalog load must be ≥ 10×
//! faster than regeneration — the acceptance criteria of the catalog
//! subsystem, enforced, not asserted in prose.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use wnw_catalog::{format, AdjListGraph, CsrGraph, GraphSpec};
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::NodeId;

fn smoke() -> bool {
    std::env::var_os("WNW_BENCH_SMOKE").is_some()
}

/// Registry specs measured at each scale.
fn spec_names() -> [&'static str; 2] {
    if smoke() {
        ["ba_10k", "ba_50k"]
    } else {
        ["ba_100k", "ba_1m"]
    }
}

/// Random neighbor queries timed per substrate.
fn query_count() -> usize {
    if smoke() {
        1_000_000
    } else {
        4_000_000
    }
}

/// splitmix64 — the query-mix PRNG (cheap, stateless between calls).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Best wall-clock of `tries` runs of `f` (build/load timings are
/// single-shot operations; best-of-N strips scheduler noise).
fn best_of<T>(tries: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<Duration> = None;
    let mut last = None;
    for _ in 0..tries {
        let started = Instant::now();
        let value = f();
        let took = started.elapsed();
        if best.is_none_or(|b| took < b) {
            best = Some(took);
        }
        last = Some(value);
    }
    (best.expect("tries >= 1"), last.expect("tries >= 1"))
}

/// One spec's full measurement row.
struct SpecResult {
    name: &'static str,
    nodes: usize,
    edges: usize,
    generate_ms: f64,
    adj_build_ms: f64,
    csr_build_ms: f64,
    save_ms: f64,
    load_ms: f64,
    load_speedup: f64,
    adj_bytes_per_edge: f64,
    csr_bytes_per_edge: f64,
    bytes_ratio: f64,
    adj_mqps: f64,
    csr_mqps: f64,
    query_speedup: f64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times `queries` random `(node, i)` neighbor lookups. The two closures
/// receive identical query streams (same seed).
fn query_mqps(queries: usize, nodes: usize, mut lookup: impl FnMut(NodeId, usize) -> u32) -> f64 {
    let mut rng: u64 = 0x0517_CAFE;
    // Warm-up: touch a slice of the graph so first-fault page-ins don't
    // bill to whichever substrate runs first.
    for _ in 0..queries / 8 {
        let v = NodeId((splitmix64(&mut rng) % nodes as u64) as u32);
        std::hint::black_box(lookup(v, (splitmix64(&mut rng) % 3) as usize));
    }
    let mut rng: u64 = 0xBEEF_0517;
    let mut acc = 0u64;
    let started = Instant::now();
    for _ in 0..queries {
        let v = NodeId((splitmix64(&mut rng) % nodes as u64) as u32);
        let i = (splitmix64(&mut rng) % 3) as usize; // BA min degree is 3
        acc = acc.wrapping_add(u64::from(lookup(v, i)));
    }
    let took = started.elapsed();
    std::hint::black_box(acc);
    queries as f64 / took.as_secs_f64() / 1e6
}

fn measure_spec(name: &'static str) -> SpecResult {
    let spec = GraphSpec::named(name).expect("registry spec");
    let tries = if spec.nodes() > 200_000 { 1 } else { 3 };

    let (generate, graph) = best_of(tries, || {
        barabasi_albert(spec.nodes(), 3, spec.seed()).expect("valid BA parameters")
    });
    let (adj_build, adj) = best_of(tries, || AdjListGraph::from_graph(&graph));
    let (csr_build, csr) = best_of(tries, || CsrGraph::from_graph(&graph));
    drop(graph);

    let dir = std::env::temp_dir().join(format!("wnw-substrate-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join(spec.file_name());
    let (save, ()) = best_of(tries.max(2), || {
        format::save(&csr, &path).expect("catalog save")
    });
    let (load, loaded) = best_of(tries.max(2), || format::load(&path).expect("catalog load"));
    assert_eq!(loaded, csr, "load must roundtrip exactly");
    drop(loaded);
    std::fs::remove_dir_all(&dir).ok();

    let edges = csr.edge_count();
    let nodes = csr.node_count();
    let queries = query_count();
    // Baseline query path: the SocialNetwork contract — fetch the owned
    // neighbor Vec, then index it (what every sampler-facing backend does
    // per neighbors() call today).
    let adj_mqps = query_mqps(queries, nodes, |v, i| adj.fetch_neighbors(v)[i].0);
    // CSR query path: one O(1) indexed load, no allocation.
    let csr_mqps = query_mqps(queries, nodes, |v, i| {
        csr.nth_neighbor(v, i).expect("i < min degree").0
    });

    let regenerate = generate + csr_build;
    SpecResult {
        name,
        nodes,
        edges,
        generate_ms: ms(generate),
        adj_build_ms: ms(adj_build),
        csr_build_ms: ms(csr_build),
        save_ms: ms(save),
        load_ms: ms(load),
        load_speedup: regenerate.as_secs_f64() / load.as_secs_f64().max(1e-9),
        adj_bytes_per_edge: adj.resident_bytes() as f64 / edges as f64,
        csr_bytes_per_edge: csr.resident_bytes() as f64 / edges as f64,
        bytes_ratio: csr.resident_bytes() as f64 / adj.resident_bytes() as f64,
        adj_mqps,
        csr_mqps,
        query_speedup: csr_mqps / adj_mqps.max(1e-9),
    }
}

fn write_json(results: &[SpecResult], path: &str) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"graph_substrate\",\n");
    out.push_str(
        "  \"description\": \"per-node-Vec adjacency vs CSR catalog substrate: build/save/load \
         times, resident bytes per edge (24B Vec headers + 16B allocator chunks + growth slack \
         for the baseline), and random-neighbor-query throughput (baseline pays the \
         SocialNetwork owned-Vec fetch per query; CSR answers with a zero-copy nth_neighbor \
         load)\",\n",
    );
    out.push_str(&format!(
        "  \"queries_per_substrate\": {},\n",
        query_count()
    ));
    out.push_str(&format!("  \"smoke\": {},\n", smoke()));
    out.push_str("  \"specs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"spec\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"generate_ms\": {:.2}, \"adj_build_ms\": {:.2}, \"csr_build_ms\": {:.2}, \
             \"catalog_save_ms\": {:.2}, \"catalog_load_ms\": {:.2}, \"load_speedup\": {:.1}, \
             \"adj_bytes_per_edge\": {:.1}, \"csr_bytes_per_edge\": {:.1}, \
             \"bytes_ratio\": {:.3}, \
             \"adj_mqueries_per_sec\": {:.2}, \"csr_mqueries_per_sec\": {:.2}, \
             \"query_speedup\": {:.2}}}{}\n",
            r.name,
            r.nodes,
            r.edges,
            r.generate_ms,
            r.adj_build_ms,
            r.csr_build_ms,
            r.save_ms,
            r.load_ms,
            r.load_speedup,
            r.adj_bytes_per_edge,
            r.csr_bytes_per_edge,
            r.bytes_ratio,
            r.adj_mqps,
            r.csr_mqps,
            r.query_speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// The acceptance gate, judged on the largest spec (1M nodes at full
/// scale). Smoke runs report the same numbers but do not gate — CI shared
/// runners are too noisy for throughput ratios at 10k-node scale.
fn verdicts(results: &[SpecResult]) -> Vec<(String, bool)> {
    let largest = results.last().expect("at least one spec");
    vec![
        (
            format!(
                "{}: CSR query throughput >= 2x baseline (got {:.2}x)",
                largest.name, largest.query_speedup
            ),
            largest.query_speedup >= 2.0,
        ),
        (
            format!(
                "{}: CSR bytes/edge <= 0.5x baseline (got {:.3}x)",
                largest.name, largest.bytes_ratio
            ),
            largest.bytes_ratio <= 0.5,
        ),
        (
            format!(
                "{}: catalog load >= 10x faster than regenerating (got {:.1}x)",
                largest.name, largest.load_speedup
            ),
            largest.load_speedup >= 10.0,
        ),
    ]
}

/// Criterion group: the query-path micro at the smallest spec's scale, so
/// the shim's console output tracks the per-lookup costs too.
fn bench_query_paths(c: &mut Criterion) {
    let spec = GraphSpec::named(spec_names()[0]).expect("registry spec");
    let graph = barabasi_albert(spec.nodes(), 3, spec.seed()).expect("valid BA parameters");
    let adj = AdjListGraph::from_graph(&graph);
    let csr = CsrGraph::from_graph(&graph);
    drop(graph);

    let mut group = c.benchmark_group("graph_substrate_query");
    let (sample_size, time) = if smoke() {
        (20, Duration::from_millis(200))
    } else {
        (40, Duration::from_millis(600))
    };
    group.sample_size(sample_size).measurement_time(time);
    let nodes = csr.node_count() as u64;
    for (label, is_csr) in [("adj_fetch", false), ("csr_nth", true)] {
        let mut rng: u64 = 0xFEED;
        group.bench_with_input(
            BenchmarkId::new(label, spec.name()),
            &is_csr,
            |b, &is_csr| {
                b.iter(|| {
                    let v = NodeId((splitmix64(&mut rng) % nodes) as u32);
                    let i = (splitmix64(&mut rng) % 3) as usize;
                    if is_csr {
                        csr.nth_neighbor(v, i).expect("i < min degree").0
                    } else {
                        adj.fetch_neighbors(v)[i].0
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_paths);

fn main() {
    benches();
    let results: Vec<SpecResult> = spec_names().iter().map(|&n| measure_spec(n)).collect();
    eprintln!("graph substrate ({} random queries each):", query_count());
    for r in &results {
        eprintln!(
            "  {} ({} nodes, {} edges):\n    build: gen {:.1} ms, adj {:.1} ms, csr {:.1} ms; \
             save {:.1} ms, load {:.1} ms ({:.1}x vs regen)\n    bytes/edge: adj {:.1}, csr \
             {:.1} ({:.3}x); queries: adj {:.2} M/s, csr {:.2} M/s ({:.2}x)",
            r.name,
            r.nodes,
            r.edges,
            r.generate_ms,
            r.adj_build_ms,
            r.csr_build_ms,
            r.save_ms,
            r.load_ms,
            r.load_speedup,
            r.adj_bytes_per_edge,
            r.csr_bytes_per_edge,
            r.bytes_ratio,
            r.adj_mqps,
            r.csr_mqps,
            r.query_speedup,
        );
    }

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_graph_substrate.json"
    );
    match write_json(&results, path) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => {
            // The JSON report is the bench's whole point for CI — a silent
            // miss would leave the workflow green with no artifact.
            eprintln!("could not write {path}: {err}");
            std::process::exit(1);
        }
    }

    let verdicts = verdicts(&results);
    let mut failed = false;
    for (check, pass) in &verdicts {
        eprintln!("  [{}] {}", if *pass { "PASS" } else { "FAIL" }, check);
        failed |= !pass;
    }
    if failed && !smoke() {
        eprintln!("graph_substrate: acceptance criteria not met");
        std::process::exit(1);
    }
}
