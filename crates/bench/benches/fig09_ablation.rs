//! Figure 9 bench: variance-reduction ablation — one budget point per WE
//! variant on the quick Google Plus surrogate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_core::{WalkEstimateConfig, WalkEstimateVariant, WalkLengthPolicy};
use wnw_experiments::datasets::DatasetRegistry;
use wnw_experiments::measures::Aggregate;
use wnw_experiments::report::ExperimentScale;
use wnw_experiments::runner::{error_vs_cost, SamplerKind, Workbench};
use wnw_mcmc::RandomWalkKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let registry = DatasetRegistry::new(ExperimentScale::Quick);
    let dataset = registry.google_plus();
    let budget = (dataset.graph.node_count() / 3) as u64;
    let config = WalkEstimateConfig::default()
        .with_walk_length(WalkLengthPolicy::paper_default(7))
        .with_crawl_depth(1);
    let bench = Workbench::new(dataset.graph, config);
    for variant in [
        WalkEstimateVariant::None,
        WalkEstimateVariant::CrawlOnly,
        WalkEstimateVariant::WeightedOnly,
        WalkEstimateVariant::Full,
    ] {
        let kind = SamplerKind::WalkEstimate {
            input: RandomWalkKind::Simple,
            variant,
        };
        group.bench_function(variant.label(), |b| {
            b.iter(|| error_vs_cost(&bench, kind, &Aggregate::Degree, &[budget], 1, 0x0904))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
