//! Figure 7 bench: Yelp (surrogate) relative error vs query cost — one
//! budget point per aggregate, quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wnw_core::WalkEstimateConfig;
use wnw_experiments::datasets::DatasetRegistry;
use wnw_experiments::measures::Aggregate;
use wnw_experiments::report::ExperimentScale;
use wnw_experiments::runner::{error_vs_cost, SamplerKind, Workbench};
use wnw_graph::generators::surrogate::ATTR_STARS;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_yelp_error_vs_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let registry = DatasetRegistry::new(ExperimentScale::Quick);
    let dataset = registry.yelp();
    let budget = (dataset.graph.node_count() / 3) as u64;
    let bench = Workbench::new(dataset.graph, WalkEstimateConfig::default());
    let we = SamplerKind::Srw.walk_estimate_counterpart();
    for (name, aggregate) in [
        ("avg_degree", Aggregate::Degree),
        (
            "avg_stars",
            Aggregate::NodeAttribute(ATTR_STARS.to_string()),
        ),
        ("avg_local_clustering", Aggregate::LocalClustering),
    ] {
        group.bench_function(format!("{name}_we_srw"), |b| {
            b.iter(|| error_vs_cost(&bench, we, &aggregate, &[budget], 1, 0x0702))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
