//! Shared fixtures for the Criterion benchmark harness.
//!
//! Every figure/table of the paper has a bench target under `benches/`,
//! named `figNN_*` / `table1_*`. The benches run the same code paths as the
//! `repro` binary but at the *quick* experiment scale, so `cargo bench`
//! terminates in minutes while still exercising every experiment end to end;
//! use `cargo run --release -p wnw-experiments --bin repro -- --scale paper`
//! for paper-scale numbers.

use wnw_access::SimulatedOsn;
use wnw_core::WalkEstimateConfig;
use wnw_experiments::report::ExperimentScale;
use wnw_experiments::runner::Workbench;
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::Graph;

/// The experiment scale used by all benches.
pub const BENCH_SCALE: ExperimentScale = ExperimentScale::Quick;

/// A small scale-free graph shared by the micro-benchmarks.
pub fn small_scale_free(n: usize, seed: u64) -> Graph {
    barabasi_albert(n, 3, seed).expect("valid BA parameters")
}

/// A simulated OSN over a small scale-free graph.
pub fn small_osn(n: usize, seed: u64) -> SimulatedOsn {
    SimulatedOsn::new(small_scale_free(n, seed))
}

/// A workbench over a small scale-free graph with default WE configuration.
pub fn small_workbench(n: usize, seed: u64) -> Workbench {
    Workbench::new(small_scale_free(n, seed), WalkEstimateConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(small_scale_free(100, 1).node_count(), 100);
        assert_eq!(small_workbench(100, 1).graph.node_count(), 100);
        let osn = small_osn(50, 2);
        assert_eq!(wnw_access::SocialNetwork::node_count_hint(&osn), Some(50));
    }
}
