//! # wnw-loadgen — deterministic open-loop load generation with SLOs
//!
//! A workload-replay harness for the `wnw-gateway` HTTP service. It
//! answers the operational question behind *Walk, Not Wait*: does the
//! sampling service keep its latency promises — time-to-first-sample
//! above all — when real, messy traffic hits it over real sockets?
//!
//! The pieces, in pipeline order:
//!
//! | Module | Role |
//! |---|---|
//! | [`arrival`] | seeded Poisson / on-off burst arrival schedules |
//! | [`scenario`] | [`Scenario`] specs, the four named presets, the [`scenario::chaos`] scenario, and deterministic [`WorkPlan`] expansion |
//! | [`testbed`] | fresh simulated-OSN + service + loopback gateway per run; the chaos variant wraps the OSN in fault injection + the resilience policy and forces a breaker trip-and-recovery before traffic |
//! | [`driver`] | the open-loop client driver and the server-metrics cross-check |
//! | [`slo`] | SLO thresholds and verdicts, including the chaos-only max-degraded-rate and zero-job-loss objectives |
//! | [`report`] | per-scenario reports, `BENCH_service_load.json` and `BENCH_fault_resilience.json` emission |
//! | [`streams`] | the `gateway_streams` concurrency tiers: one client thread multiplexing thousands of open NDJSON streams (`BENCH_gateway_streams.json`) |
//!
//! Two properties carry the weight:
//!
//! * **Open loop.** Every request's dispatch time is fixed before the run
//!   starts, so a slow service sheds load and grows queue-wait tails —
//!   it cannot thin the offered load by back-pressuring the generator
//!   (the coordinated-omission trap).
//! * **Determinism.** A scenario's seed fixes the arrival offsets, start
//!   nodes (Zipf-skewed), priorities, history policies, cancels, and
//!   slow-reader scripts. [`WorkPlan::fingerprint`] digests the request
//!   multiset and lands in the report, so "same seed, same workload" is
//!   checkable from the artifact alone.
//!
//! ## Quickstart
//!
//! ```no_run
//! use wnw_loadgen::{scenario, testbed};
//!
//! let steady = scenario::steady(scenario::Scale::Smoke);
//! let report = testbed::run_scenario(&steady).unwrap();
//! assert!(report.slo.pass, "steady smoke run must meet its SLO");
//! ```
//!
//! `cargo run --release --example load_replay` runs the full preset suite
//! and writes `BENCH_service_load.json` at the repository root;
//! `cargo run --release --example chaos_replay` runs the fault-injected
//! chaos scenario and writes `BENCH_fault_resilience.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod driver;
pub mod report;
pub mod scenario;
pub mod slo;
pub mod streams;
pub mod testbed;

pub use arrival::ArrivalProcess;
pub use report::{LatencySummary, ScenarioReport, ServerSummary};
pub use scenario::{presets, Scale, Scenario, WorkPlan};
pub use slo::{Slo, SloReport};
pub use streams::{run_streams_suite, streams_suite_json, StreamsTierReport};
pub use testbed::ChaosEvidence;

use std::io;

/// Runs the four named presets at `scale`, each against its own fresh
/// testbed, in suite order.
pub fn run_preset_suite(scale: Scale) -> io::Result<Vec<ScenarioReport>> {
    scenario::presets(scale)
        .iter()
        .map(testbed::run_scenario)
        .collect()
}

/// The suite serialised as the `BENCH_service_load.json` document.
pub fn suite_json(scale: Scale, reports: &[ScenarioReport]) -> String {
    let mode = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    report::suite_to_json(mode, reports).encode()
}

/// Runs the [`scenario::chaos`] scenario at `scale` against the
/// fault-injected testbed (seeded fault schedule, retry/backoff/breaker
/// wrap, one forced breaker trip-and-recovery before the load starts).
pub fn run_chaos_suite(scale: Scale) -> io::Result<(ScenarioReport, ChaosEvidence)> {
    testbed::run_scenario_chaos(&scenario::chaos(scale))
}

/// The chaos run serialised as the `BENCH_fault_resilience.json` document.
pub fn chaos_suite_json(scale: Scale, report: &ScenarioReport, evidence: &ChaosEvidence) -> String {
    let mode = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    report::chaos_suite_to_json(mode, report, evidence).encode()
}
