//! Scenario specs: everything a load run needs, expanded into a
//! deterministic per-request plan before any socket is opened.
//!
//! A [`Scenario`] bundles the arrival process, the Zipf start-node skew,
//! the priority / history-policy / client-behaviour mixes, and the SLO the
//! run is judged against. [`Scenario::plan`] expands it into a
//! [`WorkPlan`] — one [`PlannedRequest`] per arrival, each with its own
//! derived seed, start node, and scripted client behaviour — so a rerun
//! with the same seed submits the *identical* job multiset
//! ([`WorkPlan::fingerprint`] pins that in tests and in the emitted
//! report).

use crate::arrival::ArrivalProcess;
use crate::slo::Slo;
use rand::rngs::StdRng;
use rand::zipf::Zipf;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Probability mix over request priorities. Weights need not sum to one;
/// they are normalised when drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityMix {
    /// Weight of `"low"` priority requests.
    pub low: f64,
    /// Weight of `"normal"` priority requests.
    pub normal: f64,
    /// Weight of `"high"` priority requests.
    pub high: f64,
}

impl PriorityMix {
    /// Everything at normal priority.
    pub const NORMAL_ONLY: PriorityMix = PriorityMix {
        low: 0.0,
        normal: 1.0,
        high: 0.0,
    };

    fn draw(&self, rng: &mut StdRng) -> &'static str {
        let total = self.low + self.normal + self.high;
        assert!(total > 0.0, "priority mix must have positive total weight");
        let u = rng.gen::<f64>() * total;
        if u < self.low {
            "low"
        } else if u < self.low + self.normal {
            "normal"
        } else {
            "high"
        }
    }
}

/// Probability mix over cross-job history policies (see `wnw-service`):
/// `isolated` jobs touch no shared history, `shared_read` jobs reuse
/// published walks without contributing, `shared_publish` jobs do both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryMix {
    /// Weight of `"isolated"` requests.
    pub isolated: f64,
    /// Weight of `"shared_read"` requests.
    pub shared_read: f64,
    /// Weight of `"shared_publish"` requests.
    pub shared_publish: f64,
}

impl HistoryMix {
    /// Everything isolated — no shared-history traffic at all.
    pub const ISOLATED_ONLY: HistoryMix = HistoryMix {
        isolated: 1.0,
        shared_read: 0.0,
        shared_publish: 0.0,
    };

    fn draw(&self, rng: &mut StdRng) -> &'static str {
        let total = self.isolated + self.shared_read + self.shared_publish;
        assert!(total > 0.0, "history mix must have positive total weight");
        let u = rng.gen::<f64>() * total;
        if u < self.isolated {
            "isolated"
        } else if u < self.isolated + self.shared_read {
            "shared_read"
        } else {
            "shared_publish"
        }
    }
}

/// A scripted slow reader: after every `every_events` stream events the
/// client sleeps for `pause` before reading on. The pause happens purely
/// client-side, between socket reads, so it exercises the server's
/// write-timeout / backpressure path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallProfile {
    /// Events read between deliberate stalls.
    pub every_events: usize,
    /// Length of each stall.
    pub pause: Duration,
}

/// One fully scripted request of a [`WorkPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedRequest {
    /// Position in the plan (also the dispatch order).
    pub index: usize,
    /// Offset from run start at which the request is dispatched.
    pub at: Duration,
    /// `samples` field of the submitted job.
    pub samples: usize,
    /// `walkers` field of the submitted job.
    pub walkers: usize,
    /// Per-job walk seed, derived from the scenario seed and `index`.
    pub seed: u64,
    /// Optional per-job query budget.
    pub budget: Option<u64>,
    /// Zipf-drawn start node (rank 1 maps to node 0 — in the Barabási–
    /// Albert testbed graphs the low ids are the oldest, best-connected
    /// "celebrity" nodes, so skew lands where a real OSN's would).
    pub start_node: u32,
    /// `"low"` / `"normal"` / `"high"`.
    pub priority: &'static str,
    /// `"isolated"` / `"shared_read"` / `"shared_publish"`.
    pub history_policy: &'static str,
    /// `Some(k)`: the client cancels the job (HTTP `DELETE`) after reading
    /// `k` stream events, then keeps reading until the terminal event.
    pub cancel_after_events: Option<usize>,
    /// `Some`: the client is a deliberate slow reader with this profile.
    pub stall: Option<StallProfile>,
}

/// A scenario expanded into its deterministic request list.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkPlan {
    /// The scripted requests, sorted by dispatch offset.
    pub requests: Vec<PlannedRequest>,
}

impl WorkPlan {
    /// Order-independent FNV-1a digest of the request multiset (every
    /// field of every request). Two runs of the same seeded scenario must
    /// produce the same fingerprint; the driver records it in the report
    /// so reproducibility is checkable from the bench artifact alone.
    pub fn fingerprint(&self) -> u64 {
        let mut lines: Vec<String> = self
            .requests
            .iter()
            .map(|r| {
                format!(
                    "{}us|s{}|w{}|seed{}|b{:?}|n{}|{}|{}|c{:?}|st{:?}",
                    r.at.as_micros(),
                    r.samples,
                    r.walkers,
                    r.seed,
                    r.budget,
                    r.start_node,
                    r.priority,
                    r.history_policy,
                    r.cancel_after_events,
                    r.stall.map(|s| (s.every_events, s.pause.as_micros())),
                )
            })
            .collect();
        lines.sort_unstable();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &lines {
            for byte in line.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0x0a;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// A complete load scenario: workload shape plus the SLO it must meet.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name, used in the report and the bench JSON.
    pub name: &'static str,
    /// Master seed: arrivals, attribute draws, and per-job seeds all
    /// derive from it.
    pub seed: u64,
    /// Length of the offered-load window (the run itself lasts until the
    /// last stream drains).
    pub duration: Duration,
    /// Arrival process over the window.
    pub arrivals: ArrivalProcess,
    /// Start-node universe: ranks are drawn over `[1, nodes]`. Must not
    /// exceed the testbed graph size.
    pub nodes: usize,
    /// Zipf skew exponent for start-node draws (`0` = uniform).
    pub zipf_s: f64,
    /// Samples requested per job.
    pub samples_per_job: usize,
    /// Walkers per job.
    pub walkers: usize,
    /// Per-job query budget (refunded on cancel).
    pub budget: Option<u64>,
    /// Priority mix.
    pub priority_mix: PriorityMix,
    /// History-policy mix.
    pub history_mix: HistoryMix,
    /// Fraction of requests the client cancels mid-stream.
    pub cancel_rate: f64,
    /// Fraction of requests served to a deliberate slow reader.
    pub slow_reader_fraction: f64,
    /// Stall profile applied to the slow readers.
    pub stall: StallProfile,
    /// The SLO this scenario is judged against.
    pub slo: Slo,
}

impl Scenario {
    /// Expands the scenario into its deterministic [`WorkPlan`].
    pub fn plan(&self) -> WorkPlan {
        assert!(self.nodes > 0, "scenario needs a non-empty node universe");
        assert!(self.samples_per_job > 0, "jobs must request samples");
        let arrivals = self.arrivals.schedule(self.duration, self.seed);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
        let zipf = Zipf::new(self.nodes, self.zipf_s);
        let requests = arrivals
            .into_iter()
            .enumerate()
            .map(|(index, at)| {
                let start_node = (zipf.sample(&mut rng) - 1) as u32;
                let priority = self.priority_mix.draw(&mut rng);
                let history_policy = self.history_mix.draw(&mut rng);
                let cancel = rng.gen::<f64>() < self.cancel_rate;
                let slow = rng.gen::<f64>() < self.slow_reader_fraction;
                let cancel_after_events = cancel.then(|| 1 + rng.gen_range(0..2usize));
                PlannedRequest {
                    index,
                    at,
                    samples: self.samples_per_job,
                    walkers: self.walkers,
                    seed: derive_seed(self.seed, index as u64),
                    budget: self.budget,
                    start_node,
                    priority,
                    history_policy,
                    cancel_after_events,
                    stall: slow.then_some(self.stall),
                }
            })
            .collect();
        WorkPlan { requests }
    }
}

/// SplitMix64 step: decorrelates per-job seeds from the scenario seed.
fn derive_seed(scenario_seed: u64, index: u64) -> u64 {
    let mut z =
        scenario_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Scale of a preset run: `Smoke` keeps CI fast; `Full` offers the load
/// the README baseline numbers were measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Sub-second windows, small graphs — CI-friendly.
    Smoke,
    /// The measured-baseline configuration.
    Full,
}

impl Scale {
    fn window(&self, smoke: f64, full: f64) -> Duration {
        Duration::from_secs_f64(match self {
            Scale::Smoke => smoke,
            Scale::Full => full,
        })
    }

    fn rate(&self, smoke: f64, full: f64) -> f64 {
        match self {
            Scale::Smoke => smoke,
            Scale::Full => full,
        }
    }

    /// Node universe the presets draw start nodes from (the testbed graph
    /// is built to exactly this size).
    pub fn nodes(&self) -> usize {
        match self {
            Scale::Smoke => 512,
            Scale::Full => 2_000,
        }
    }
}

/// Default stall profile for the presets' slow readers.
const PRESET_STALL: StallProfile = StallProfile {
    every_events: 2,
    pause: Duration::from_millis(40),
};

/// `steady` — a well-provisioned service under smooth Poisson load: mild
/// start-node skew, normal priority, no misbehaving clients. The "is the
/// service healthy at all" scenario; its SLO is the strictest.
pub fn steady(scale: Scale) -> Scenario {
    Scenario {
        name: "steady",
        seed: 0x57EA_D711,
        duration: scale.window(1.5, 5.0),
        arrivals: ArrivalProcess::Poisson {
            rps: scale.rate(24.0, 60.0),
        },
        nodes: scale.nodes(),
        zipf_s: 0.8,
        samples_per_job: 4,
        walkers: 2,
        budget: Some(1_000_000),
        priority_mix: PriorityMix::NORMAL_ONLY,
        history_mix: HistoryMix {
            isolated: 0.5,
            shared_read: 0.0,
            shared_publish: 0.5,
        },
        cancel_rate: 0.0,
        slow_reader_fraction: 0.0,
        stall: PRESET_STALL,
        slo: Slo {
            min_throughput_rps: scale.rate(6.0, 20.0),
            max_shed_rate: 0.05,
            max_queue_wait_p99_ms: 2_000.0,
            max_e2e_p99_ms: 4_000.0,
            max_ttfs_p99_ms: 3_000.0,
            max_degraded_rate: None,
            max_lost_jobs: None,
        },
    }
}

/// `burst` — an on/off square wave whose bursts offer ~6× the trough
/// rate, with a high-priority slice. Load shedding is *expected*; the SLO
/// bounds how much, and how badly the queue-wait tail degrades.
pub fn burst(scale: Scale) -> Scenario {
    Scenario {
        name: "burst",
        seed: 0xB0B5_7001,
        duration: scale.window(1.6, 6.0),
        arrivals: ArrivalProcess::OnOff {
            on_rps: scale.rate(60.0, 150.0),
            off_rps: scale.rate(10.0, 25.0),
            period: Duration::from_millis(800),
            duty: 0.3,
        },
        nodes: scale.nodes(),
        zipf_s: 0.8,
        samples_per_job: 4,
        walkers: 2,
        budget: Some(1_000_000),
        priority_mix: PriorityMix {
            low: 0.2,
            normal: 0.6,
            high: 0.2,
        },
        history_mix: HistoryMix {
            isolated: 0.5,
            shared_read: 0.0,
            shared_publish: 0.5,
        },
        cancel_rate: 0.0,
        slow_reader_fraction: 0.0,
        stall: PRESET_STALL,
        slo: Slo {
            min_throughput_rps: scale.rate(5.0, 15.0),
            max_shed_rate: 0.6,
            max_queue_wait_p99_ms: 3_000.0,
            max_e2e_p99_ms: 5_000.0,
            max_ttfs_p99_ms: 4_000.0,
            max_degraded_rate: None,
            max_lost_jobs: None,
        },
    }
}

/// `hot_key` — strong Zipf skew (`s = 1.4`) with every job publishing to
/// the shared walk history. Most jobs start on a handful of celebrity
/// nodes, so cross-job history reuse should show real savings — the
/// acceptance check asserts they are nonzero.
pub fn hot_key(scale: Scale) -> Scenario {
    Scenario {
        name: "hot_key",
        seed: 0x407C_0DE5,
        duration: scale.window(1.5, 5.0),
        arrivals: ArrivalProcess::Poisson {
            rps: scale.rate(24.0, 60.0),
        },
        nodes: scale.nodes(),
        zipf_s: 1.4,
        samples_per_job: 4,
        walkers: 2,
        budget: Some(1_000_000),
        priority_mix: PriorityMix::NORMAL_ONLY,
        history_mix: HistoryMix {
            isolated: 0.0,
            shared_read: 0.2,
            shared_publish: 0.8,
        },
        cancel_rate: 0.0,
        slow_reader_fraction: 0.0,
        stall: PRESET_STALL,
        slo: Slo {
            min_throughput_rps: scale.rate(6.0, 20.0),
            max_shed_rate: 0.05,
            max_queue_wait_p99_ms: 2_000.0,
            max_e2e_p99_ms: 4_000.0,
            max_ttfs_p99_ms: 3_000.0,
            max_degraded_rate: None,
            max_lost_jobs: None,
        },
    }
}

/// `churn` — misbehaving clients: a third of requests cancel mid-stream,
/// a fifth read deliberately slowly. Exercises the cancel/refund path and
/// the gateway's tolerance of stalled readers; the SLO checks the
/// well-behaved majority still gets its first sample promptly.
pub fn churn(scale: Scale) -> Scenario {
    Scenario {
        name: "churn",
        seed: 0xC4B2_0123,
        duration: scale.window(1.5, 5.0),
        arrivals: ArrivalProcess::Poisson {
            rps: scale.rate(20.0, 45.0),
        },
        nodes: scale.nodes(),
        zipf_s: 1.1,
        samples_per_job: 6,
        walkers: 2,
        budget: Some(1_000_000),
        priority_mix: PriorityMix {
            low: 0.3,
            normal: 0.6,
            high: 0.1,
        },
        history_mix: HistoryMix {
            isolated: 0.4,
            shared_read: 0.2,
            shared_publish: 0.4,
        },
        cancel_rate: 0.35,
        slow_reader_fraction: 0.2,
        stall: PRESET_STALL,
        slo: Slo {
            min_throughput_rps: scale.rate(3.0, 8.0),
            max_shed_rate: 0.25,
            max_queue_wait_p99_ms: 3_000.0,
            max_e2e_p99_ms: 5_000.0,
            max_ttfs_p99_ms: 4_000.0,
            max_degraded_rate: None,
            max_lost_jobs: None,
        },
    }
}

/// `chaos` — steady-shaped load meant for a **fault-injected** testbed
/// (see `testbed::run_scenario_chaos`): the workload itself is smooth so
/// every anomaly in the report is attributable to the injected faults and
/// the resilience layer's response, not to overload. Its SLO is the only
/// one with the gated resilience objectives armed: a bounded fraction of
/// jobs may finish degraded, and **zero** accepted jobs may be lost.
///
/// Deliberately *not* part of [`presets`]: `BENCH_service_load.json`
/// measures the fault-free service, `BENCH_fault_resilience.json`
/// measures graceful degradation, and mixing the two would let chaos
/// noise move the baseline numbers.
pub fn chaos(scale: Scale) -> Scenario {
    Scenario {
        name: "chaos",
        seed: 0xC4A0_5BAD,
        duration: scale.window(1.5, 5.0),
        arrivals: ArrivalProcess::Poisson {
            rps: scale.rate(20.0, 50.0),
        },
        nodes: scale.nodes(),
        zipf_s: 0.8,
        samples_per_job: 4,
        walkers: 2,
        budget: Some(1_000_000),
        priority_mix: PriorityMix::NORMAL_ONLY,
        history_mix: HistoryMix {
            isolated: 0.5,
            shared_read: 0.0,
            shared_publish: 0.5,
        },
        cancel_rate: 0.0,
        slow_reader_fraction: 0.0,
        stall: PRESET_STALL,
        slo: Slo {
            // Latency bounds stay loose: chaos scores *degradation*, and
            // backoff waits are simulated-clock, not wall-clock.
            min_throughput_rps: scale.rate(4.0, 12.0),
            max_shed_rate: 0.25,
            max_queue_wait_p99_ms: 3_000.0,
            max_e2e_p99_ms: 5_000.0,
            max_ttfs_p99_ms: 4_000.0,
            // The scored objectives: faults may cost completeness on a
            // bounded slice of jobs, but never an entire job. Full-scale
            // chaos weather degrades ~35% of jobs (a walker that walks
            // into the blacked-out node, or through an open-breaker
            // window, ends early); the bound leaves margin above that,
            // and would still catch a hub blackout or a stuck breaker
            // (both degrade ~100%).
            max_degraded_rate: Some(0.45),
            max_lost_jobs: Some(0),
        },
    }
}

/// All four named presets at the given scale, in suite order. The
/// [`chaos`] scenario is intentionally excluded — it runs against the
/// fault-injected testbed and reports into its own bench artifact.
pub fn presets(scale: Scale) -> Vec<Scenario> {
    vec![steady(scale), burst(scale), hot_key(scale), churn(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_fingerprints_match() {
        for scenario in presets(Scale::Smoke) {
            let a = scenario.plan();
            let b = scenario.plan();
            assert_eq!(
                a, b,
                "{}: rerun must produce the identical plan",
                scenario.name
            );
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert!(!a.requests.is_empty(), "{}: empty plan", scenario.name);
        }
    }

    #[test]
    fn fingerprint_is_order_independent_but_content_sensitive() {
        let plan = steady(Scale::Smoke).plan();
        let mut shuffled = plan.clone();
        shuffled.requests.reverse();
        assert_eq!(plan.fingerprint(), shuffled.fingerprint());
        let mut mutated = plan.clone();
        mutated.requests[0].samples += 1;
        assert_ne!(plan.fingerprint(), mutated.fingerprint());
    }

    #[test]
    fn hot_key_concentrates_starts_and_respects_the_universe() {
        let scenario = hot_key(Scale::Smoke);
        let plan = scenario.plan();
        let n = plan.requests.len() as f64;
        let head = plan.requests.iter().filter(|r| r.start_node < 5).count() as f64;
        assert!(
            head / n > 0.35,
            "Zipf s=1.4 should put >35% of starts on the top-5 nodes, got {}",
            head / n
        );
        assert!(plan
            .requests
            .iter()
            .all(|r| (r.start_node as usize) < scenario.nodes));
    }

    #[test]
    fn chaos_arms_the_resilience_objectives_but_stays_out_of_the_presets() {
        let scenario = chaos(Scale::Smoke);
        assert!(scenario.slo.max_degraded_rate.is_some());
        assert_eq!(scenario.slo.max_lost_jobs, Some(0));
        assert!(!scenario.plan().requests.is_empty());
        assert!(
            presets(Scale::Smoke).iter().all(|s| s.name != "chaos"),
            "chaos must not leak into the fault-free preset suite"
        );
        assert_eq!(presets(Scale::Smoke).len(), 4);
    }

    #[test]
    fn churn_scripts_cancels_and_slow_readers() {
        let plan = churn(Scale::Smoke).plan();
        let cancels = plan
            .requests
            .iter()
            .filter(|r| r.cancel_after_events.is_some())
            .count();
        let slow = plan.requests.iter().filter(|r| r.stall.is_some()).count();
        assert!(cancels > 0, "churn must script some cancels");
        assert!(slow > 0, "churn must script some slow readers");
    }
}
