//! Per-scenario run reports and the `BENCH_service_load.json` emission.
//!
//! The driver reduces its per-request observations to a
//! [`ScenarioReport`]: client-observed latency summaries (exact quantiles
//! over every request, not histogram approximations), lifecycle counts,
//! the server-side metrics cross-check, and the SLO verdict. The report
//! serialises through the gateway's own [`Json`] codec so the bench
//! artifact and the wire format share one encoder.

use crate::slo::SloReport;
use wnw_gateway::json::Json;

/// Exact quantile summary over one client-observed latency series (ms).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    /// Summarises a series of millisecond observations. Quantiles are
    /// exact (nearest-rank over the sorted series); an empty series
    /// yields the all-zero summary with `count == 0`.
    pub fn from_ms(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        if values.is_empty() {
            return LatencySummary::default();
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = values.len();
        let rank = |q: f64| {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            values[idx]
        };
        LatencySummary {
            count: n,
            mean: values.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p99: rank(0.99),
            p999: rank(0.999),
            max: values[n - 1],
        }
    }

    pub(crate) fn to_json(self) -> Json {
        Json::obj(vec![
            ("count", Json::UInt(self.count as u64)),
            ("mean", Json::Num(round3(self.mean))),
            ("p50", Json::Num(round3(self.p50))),
            ("p99", Json::Num(round3(self.p99))),
            ("p999", Json::Num(round3(self.p999))),
            ("max", Json::Num(round3(self.max))),
        ])
    }
}

fn round3(v: f64) -> f64 {
    (v * 1_000.0).round() / 1_000.0
}

/// Server-side counters scraped after the run drains, used to cross-check
/// the client's view against `/v1/metrics` and the Prometheus exposition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerSummary {
    /// `jobs_submitted` from `/v1/metrics`.
    pub jobs_submitted: u64,
    /// `jobs_completed` from `/v1/metrics`.
    pub jobs_completed: u64,
    /// `jobs_cancelled` from `/v1/metrics`.
    pub jobs_cancelled: u64,
    /// `jobs_rejected` from `/v1/metrics`.
    pub jobs_rejected: u64,
    /// Shared-cache saving (isolated minus aggregate query cost).
    pub shared_cache_savings: u64,
    /// Cross-job history snapshot hits.
    pub history_hits: u64,
    /// Walks reused out of the shared history.
    pub history_reused_walks: u64,
    /// Queries saved by cross-job history reuse.
    pub history_reuse_savings: u64,
    /// Budget refunded by cancels / hangups.
    pub budget_refunded: u64,
    /// Completed jobs the server flagged degraded (partial results).
    pub jobs_degraded: u64,
    /// Walkers that ended degraded, summed over all jobs.
    pub walkers_degraded: u64,
    /// Retry attempts issued by the resilience layer.
    pub resilience_retries: u64,
    /// Calls that succeeded only after at least one retry.
    pub resilience_recovered: u64,
    /// Closed → open circuit-breaker transitions.
    pub breaker_opened: u64,
    /// Calls failed fast at an open breaker.
    pub breaker_fast_fails: u64,
    /// Series count in the Prometheus exposition (0 when the scrape
    /// failed validation).
    pub prometheus_series: u64,
    /// True iff the Prometheus scrape validated *and* its job-lifecycle
    /// counters agree with the JSON metrics document.
    pub prometheus_consistent: bool,
}

impl ServerSummary {
    pub(crate) fn to_json(self) -> Json {
        Json::obj(vec![
            ("jobs_submitted", Json::UInt(self.jobs_submitted)),
            ("jobs_completed", Json::UInt(self.jobs_completed)),
            ("jobs_cancelled", Json::UInt(self.jobs_cancelled)),
            ("jobs_rejected", Json::UInt(self.jobs_rejected)),
            (
                "shared_cache_savings",
                Json::UInt(self.shared_cache_savings),
            ),
            ("history_hits", Json::UInt(self.history_hits)),
            (
                "history_reused_walks",
                Json::UInt(self.history_reused_walks),
            ),
            (
                "history_reuse_savings",
                Json::UInt(self.history_reuse_savings),
            ),
            ("budget_refunded", Json::UInt(self.budget_refunded)),
            ("jobs_degraded", Json::UInt(self.jobs_degraded)),
            ("walkers_degraded", Json::UInt(self.walkers_degraded)),
            ("resilience_retries", Json::UInt(self.resilience_retries)),
            (
                "resilience_recovered",
                Json::UInt(self.resilience_recovered),
            ),
            ("breaker_opened", Json::UInt(self.breaker_opened)),
            ("breaker_fast_fails", Json::UInt(self.breaker_fast_fails)),
            ("prometheus_series", Json::UInt(self.prometheus_series)),
            (
                "prometheus_consistent",
                Json::Bool(self.prometheus_consistent),
            ),
        ])
    }
}

/// Everything measured about one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (`steady`, `burst`, `hot_key`, `churn`).
    pub scenario: String,
    /// Fingerprint of the submitted-request multiset — equal across
    /// seeded reruns of the same scenario.
    pub plan_fingerprint: u64,
    /// Requests the plan offered.
    pub offered: usize,
    /// Requests the gateway accepted (`202`).
    pub submitted: usize,
    /// Requests shed with `503`.
    pub shed: usize,
    /// Requests that failed to submit for any other reason.
    pub submit_errors: usize,
    /// Jobs whose terminal event was `completed`.
    pub completed: usize,
    /// Jobs whose terminal event was `cancelled` (scripted cancels).
    pub cancelled: usize,
    /// Jobs that ended `failed` / `expired` / panicked, or whose stream
    /// errored client-side.
    pub failed: usize,
    /// Jobs whose terminal event carried `degraded: true` — the job
    /// finished, but the resilience layer gave up on some walkers.
    pub degraded: usize,
    /// Accepted jobs whose client never saw a terminal event at all —
    /// the one count a chaos run must keep at zero.
    pub lost: usize,
    /// Wall clock of the whole run (dispatch of the first request until
    /// the last stream drained), seconds.
    pub wall_clock_s: f64,
    /// `completed / wall_clock_s`.
    pub throughput_rps: f64,
    /// `shed / offered`.
    pub shed_rate: f64,
    /// Samples streamed to all clients.
    pub samples_delivered: u64,
    /// Server-reported queue wait per job (ms).
    pub queue_wait_ms: LatencySummary,
    /// Client-observed submit → terminal-event latency (ms).
    pub e2e_ms: LatencySummary,
    /// Client-observed submit → first-sample latency (ms), completed and
    /// cancelled jobs that saw at least one sample.
    pub ttfs_ms: LatencySummary,
    /// Server-side cross-check.
    pub server: ServerSummary,
    /// The SLO verdict.
    pub slo: SloReport,
}

impl ScenarioReport {
    /// The report as the bench JSON row.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::Str(self.scenario.clone())),
            (
                "plan_fingerprint",
                Json::Str(format!("{:016x}", self.plan_fingerprint)),
            ),
            ("offered", Json::UInt(self.offered as u64)),
            ("submitted", Json::UInt(self.submitted as u64)),
            ("shed", Json::UInt(self.shed as u64)),
            ("submit_errors", Json::UInt(self.submit_errors as u64)),
            ("completed", Json::UInt(self.completed as u64)),
            ("cancelled", Json::UInt(self.cancelled as u64)),
            ("failed", Json::UInt(self.failed as u64)),
            ("degraded", Json::UInt(self.degraded as u64)),
            ("lost", Json::UInt(self.lost as u64)),
            ("wall_clock_s", Json::Num(round3(self.wall_clock_s))),
            ("throughput_rps", Json::Num(round3(self.throughput_rps))),
            ("shed_rate", Json::Num(round3(self.shed_rate))),
            ("samples_delivered", Json::UInt(self.samples_delivered)),
            ("queue_wait_ms", self.queue_wait_ms.to_json()),
            ("e2e_ms", self.e2e_ms.to_json()),
            ("ttfs_ms", self.ttfs_ms.to_json()),
            ("server", self.server.to_json()),
            ("slo", slo_to_json(&self.slo)),
        ])
    }
}

fn slo_to_json(report: &SloReport) -> Json {
    Json::obj(vec![
        ("pass", Json::Bool(report.pass)),
        (
            "checks",
            Json::Arr(
                report
                    .checks
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("name", Json::str(c.name)),
                            ("threshold", Json::Num(round3(c.threshold))),
                            ("observed", Json::Num(round3(c.observed))),
                            ("pass", Json::Bool(c.pass)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The whole suite as the `BENCH_service_load.json` document.
pub fn suite_to_json(mode: &str, reports: &[ScenarioReport]) -> Json {
    Json::obj(vec![
        ("benchmark", Json::str("service_load")),
        ("mode", Json::str(mode)),
        ("slo_pass", Json::Bool(reports.iter().all(|r| r.slo.pass))),
        (
            "scenarios",
            Json::Arr(reports.iter().map(ScenarioReport::to_json).collect()),
        ),
    ])
}

/// The chaos run as the `BENCH_fault_resilience.json` document: the
/// scenario row plus the injector / resilience-layer evidence and the
/// acceptance verdicts derived from it.
pub fn chaos_suite_to_json(
    mode: &str,
    report: &ScenarioReport,
    evidence: &crate::testbed::ChaosEvidence,
) -> Json {
    let faults = evidence.fault_stats;
    let res = evidence.resilience;
    Json::obj(vec![
        ("benchmark", Json::str("fault_resilience")),
        ("mode", Json::str(mode)),
        ("slo_pass", Json::Bool(report.slo.pass)),
        ("jobs_lost", Json::UInt(report.lost as u64)),
        (
            "forced_breaker_trip",
            Json::Bool(evidence.forced_breaker_trip),
        ),
        (
            "breaker_recovered",
            Json::Bool(evidence.breaker_recovered()),
        ),
        (
            "forced_trip_pre_run",
            Json::obj(vec![
                (
                    "breaker_opened",
                    Json::UInt(evidence.pre_run.breaker_opened),
                ),
                (
                    "breaker_half_open_probes",
                    Json::UInt(evidence.pre_run.breaker_half_open_probes),
                ),
                ("breaker_open", Json::Bool(evidence.pre_run.breaker_open)),
            ]),
        ),
        (
            "retries_within_policy",
            Json::Bool(evidence.retries_within_policy()),
        ),
        (
            "retry_policy",
            Json::obj(vec![
                (
                    "max_retries",
                    Json::UInt(u64::from(evidence.policy.max_retries)),
                ),
                (
                    "base_backoff_secs",
                    Json::UInt(evidence.policy.base_backoff_secs),
                ),
                (
                    "max_backoff_secs",
                    Json::UInt(evidence.policy.max_backoff_secs),
                ),
                (
                    "breaker_threshold",
                    Json::UInt(u64::from(evidence.policy.breaker_threshold)),
                ),
                (
                    "breaker_cooldown_secs",
                    Json::UInt(evidence.policy.breaker_cooldown_secs),
                ),
            ]),
        ),
        (
            "fault_injection",
            Json::obj(vec![
                ("calls_passed", Json::UInt(faults.calls_passed)),
                ("transient_errors", Json::UInt(faults.transient_errors)),
                ("stalls", Json::UInt(faults.stalls)),
                ("stalled_secs", Json::UInt(faults.stalled_secs)),
                ("rate_limits", Json::UInt(faults.rate_limits)),
                ("flaps", Json::UInt(faults.flaps)),
                ("blackout_hits", Json::UInt(faults.blackout_hits)),
                ("total_injected", Json::UInt(faults.total_injected())),
            ]),
        ),
        (
            "resilience",
            Json::obj(vec![
                ("calls", Json::UInt(res.calls)),
                ("faults_seen", Json::UInt(res.faults_seen)),
                ("retries", Json::UInt(res.retries)),
                ("backoff_wait_secs", Json::UInt(res.backoff_wait_secs)),
                ("rate_limit_honored", Json::UInt(res.rate_limit_honored)),
                ("retries_exhausted", Json::UInt(res.retries_exhausted)),
                ("recovered", Json::UInt(res.recovered)),
                ("breaker_opened", Json::UInt(res.breaker_opened)),
                (
                    "breaker_half_open_probes",
                    Json::UInt(res.breaker_half_open_probes),
                ),
                ("breaker_fast_fails", Json::UInt(res.breaker_fast_fails)),
                ("breaker_open", Json::Bool(res.breaker_open)),
                ("clock_secs", Json::UInt(res.clock_secs)),
                ("max_retries_per_call", Json::UInt(res.retries_per_call.max)),
            ]),
        ),
        ("scenarios", Json::Arr(vec![report.to_json()])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_exact_quantiles() {
        let values: Vec<f64> = (1..=1_000).map(|v| v as f64).collect();
        let summary = LatencySummary::from_ms(values);
        assert_eq!(summary.count, 1_000);
        assert_eq!(summary.p50, 500.0);
        assert_eq!(summary.p99, 990.0);
        assert_eq!(summary.p999, 999.0);
        assert_eq!(summary.max, 1_000.0);
        assert!((summary.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_series_summarises_to_zero() {
        let summary = LatencySummary::from_ms(Vec::new());
        assert_eq!(summary, LatencySummary::default());
    }

    #[test]
    fn suite_json_carries_the_verdict() {
        let json = suite_to_json("smoke", &[]);
        assert_eq!(
            json.get("benchmark").unwrap().as_str(),
            Some("service_load")
        );
        assert_eq!(json.get("slo_pass").unwrap().as_bool(), Some(true));
    }
}
