//! SLO definitions and verdicts.
//!
//! A [`Slo`] is the contract a scenario is judged against; evaluating it
//! over a run's observed aggregates yields an [`SloReport`] — one
//! [`SloCheck`] per objective plus an overall pass/fail verdict that the
//! bench runner turns into its exit code.

/// Service-level objectives for one scenario. Latency objectives are upper
/// bounds on client-observed percentiles; throughput is a lower bound on
/// completed jobs per second of wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Completed-job throughput must be at least this (jobs/s).
    pub min_throughput_rps: f64,
    /// At most this fraction of offered requests may be shed (`503`).
    pub max_shed_rate: f64,
    /// p99 queue wait (server-reported, ms) must not exceed this.
    pub max_queue_wait_p99_ms: f64,
    /// p99 end-to-end latency (submit → terminal event, ms) upper bound.
    pub max_e2e_p99_ms: f64,
    /// p99 time-to-first-sample (submit → first sample event, ms) upper
    /// bound — the paper's headline "walk, not wait" promise, as an SLO.
    pub max_ttfs_p99_ms: f64,
    /// Chaos scenarios only: at most this fraction of accepted jobs may
    /// finish degraded (partial results after the resilience layer gave
    /// up on some walkers). `None` skips the check — the fault-free
    /// presets have nothing to degrade.
    pub max_degraded_rate: Option<f64>,
    /// Chaos scenarios only: at most this many accepted jobs may be
    /// *lost* — accepted but never delivering a terminal event. Chaos
    /// runs pin this to zero: faults may degrade answers, never drop
    /// jobs. `None` skips the check.
    pub max_lost_jobs: Option<u64>,
}

/// The observed aggregates an [`Slo`] is checked against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observed {
    /// Completed jobs per second of wall clock.
    pub throughput_rps: f64,
    /// Shed requests / offered requests.
    pub shed_rate: f64,
    /// Client-observed p99 queue wait in ms.
    pub queue_wait_p99_ms: f64,
    /// Client-observed p99 end-to-end latency in ms.
    pub e2e_p99_ms: f64,
    /// Client-observed p99 time-to-first-sample in ms.
    pub ttfs_p99_ms: f64,
    /// Degraded terminal events / accepted jobs.
    pub degraded_rate: f64,
    /// Accepted jobs that never reached a terminal event.
    pub lost_jobs: u64,
}

/// One objective's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCheck {
    /// Objective name as it appears in the bench JSON.
    pub name: &'static str,
    /// The bound from the [`Slo`].
    pub threshold: f64,
    /// The measured value.
    pub observed: f64,
    /// Whether the bound held. `NaN` observations fail.
    pub pass: bool,
}

/// All objectives' verdicts for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Per-objective verdicts.
    pub checks: Vec<SloCheck>,
    /// True iff every check passed.
    pub pass: bool,
}

impl Slo {
    /// Judges a run's aggregates against this SLO.
    pub fn evaluate(&self, observed: &Observed) -> SloReport {
        let at_least = |name, threshold: f64, value: f64| SloCheck {
            name,
            threshold,
            observed: value,
            pass: value >= threshold, // NaN compares false => fail
        };
        let at_most = |name, threshold: f64, value: f64| SloCheck {
            name,
            threshold,
            observed: value,
            pass: value <= threshold,
        };
        let mut checks = vec![
            at_least(
                "throughput_rps_min",
                self.min_throughput_rps,
                observed.throughput_rps,
            ),
            at_most("shed_rate_max", self.max_shed_rate, observed.shed_rate),
            at_most(
                "queue_wait_p99_ms_max",
                self.max_queue_wait_p99_ms,
                observed.queue_wait_p99_ms,
            ),
            at_most("e2e_p99_ms_max", self.max_e2e_p99_ms, observed.e2e_p99_ms),
            at_most(
                "ttfs_p99_ms_max",
                self.max_ttfs_p99_ms,
                observed.ttfs_p99_ms,
            ),
        ];
        // The resilience objectives are gated: fault-free presets keep
        // them `None` and the report shape stays exactly the classic five
        // checks. Chaos scenarios append them *after* the pinned five.
        if let Some(max) = self.max_degraded_rate {
            checks.push(at_most("degraded_rate_max", max, observed.degraded_rate));
        }
        if let Some(max) = self.max_lost_jobs {
            checks.push(at_most(
                "lost_jobs_max",
                max as f64,
                observed.lost_jobs as f64,
            ));
        }
        let pass = checks.iter().all(|c| c.pass);
        SloReport { checks, pass }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo() -> Slo {
        Slo {
            min_throughput_rps: 10.0,
            max_shed_rate: 0.1,
            max_queue_wait_p99_ms: 100.0,
            max_e2e_p99_ms: 500.0,
            max_ttfs_p99_ms: 200.0,
            max_degraded_rate: None,
            max_lost_jobs: None,
        }
    }

    fn observed() -> Observed {
        Observed {
            throughput_rps: 25.0,
            shed_rate: 0.0,
            queue_wait_p99_ms: 12.0,
            e2e_p99_ms: 80.0,
            ttfs_p99_ms: 15.0,
            degraded_rate: 0.0,
            lost_jobs: 0,
        }
    }

    #[test]
    fn passing_run_passes_every_check() {
        let report = slo().evaluate(&observed());
        assert!(report.pass);
        assert_eq!(report.checks.len(), 5);
        assert!(report.checks.iter().all(|c| c.pass));
    }

    #[test]
    fn each_violation_fails_its_own_check_only() {
        let report = slo().evaluate(&Observed {
            shed_rate: 0.5, // violated
            ..observed()
        });
        assert!(!report.pass);
        let failed: Vec<_> = report
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.name)
            .collect();
        assert_eq!(failed, ["shed_rate_max"]);
    }

    #[test]
    fn nan_observations_fail() {
        let report = slo().evaluate(&Observed {
            throughput_rps: f64::NAN,
            queue_wait_p99_ms: 0.0,
            e2e_p99_ms: 0.0,
            ttfs_p99_ms: f64::NAN,
            ..observed()
        });
        assert!(!report.pass);
        assert_eq!(
            report.checks.iter().filter(|c| !c.pass).count(),
            2,
            "both NaN checks must fail"
        );
    }

    #[test]
    fn resilience_checks_are_gated_and_appended_after_the_classic_five() {
        let chaos_slo = Slo {
            max_degraded_rate: Some(0.25),
            max_lost_jobs: Some(0),
            ..slo()
        };
        let report = chaos_slo.evaluate(&Observed {
            degraded_rate: 0.1,
            lost_jobs: 0,
            ..observed()
        });
        assert!(report.pass);
        assert_eq!(report.checks.len(), 7);
        assert_eq!(report.checks[5].name, "degraded_rate_max");
        assert_eq!(report.checks[6].name, "lost_jobs_max");
    }

    #[test]
    fn degradation_and_job_loss_fail_their_checks() {
        let chaos_slo = Slo {
            max_degraded_rate: Some(0.25),
            max_lost_jobs: Some(0),
            ..slo()
        };
        let report = chaos_slo.evaluate(&Observed {
            degraded_rate: 0.4, // violated
            lost_jobs: 1,       // violated
            ..observed()
        });
        assert!(!report.pass);
        let failed: Vec<_> = report
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.name)
            .collect();
        assert_eq!(failed, ["degraded_rate_max", "lost_jobs_max"]);
    }
}
