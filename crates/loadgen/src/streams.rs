//! The `gateway_streams` tiers: thousands of concurrent NDJSON streams
//! held open against a **two-I/O-thread** gateway.
//!
//! The driver in [`crate::driver`] spawns one OS thread per scripted
//! client, which caps it at a few hundred concurrent streams before the
//! harness itself becomes the bottleneck. This module scales past that
//! with the same trick the server uses: **one** client thread multiplexes
//! every stream over non-blocking sockets, decoding HTTP heads, chunk
//! framing, and NDJSON lines incrementally from whatever bytes each
//! socket has ready. The harness therefore costs one thread no matter
//! the tier, which keeps the gateway — not the load generator — as the
//! system under test on a small machine.
//!
//! A tier runs in three phases:
//!
//! 1. **Submit.** Every job is posted over a handful of keep-alive
//!    connections ([`SUBMIT_CONNECTIONS`]); the testbed's long claim TTL
//!    (see [`crate::testbed::launch_streams`]) guarantees none of the
//!    accepted-but-not-yet-claimed jobs get reaped mid-sweep.
//! 2. **Open.** Every stream's `GET` is connected and written *before
//!    any stream is drained*, so all of them are concurrently open — the
//!    tier's concurrency claim holds by construction, not by racing.
//! 3. **Drain.** The multiplexer loops over the open sockets, reading
//!    whatever is ready, until every stream has delivered its chunk
//!    terminator (or the drain deadline expires, which scores as loss).
//!
//! Time-to-first-sample is measured per stream from *its* `GET` hitting
//! the wire to its first `sample` line, so the open sweep itself is part
//! of the burst the tail quantiles describe.
//!
//! Loopback streams are double-billed against the process fd limit (the
//! client end and the server's accepted end live in the same process),
//! so tiers are clamped to [`max_open_streams`] and the report records
//! both the requested and the actually-opened width.

use crate::report::{LatencySummary, ServerSummary};
use crate::scenario::Scale;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use wnw_gateway::client::Connection;
use wnw_gateway::json::{self, Json};

/// I/O threads the streams testbed pins the gateway to — the headline
/// claim is "thousands of streams on two I/O threads", so the tier
/// reports carry this number and the bench verdict depends on it.
pub const IO_THREADS: usize = 2;

/// Keep-alive connections the submit sweep round-robins over.
pub const SUBMIT_CONNECTIONS: usize = 4;

/// Samples each tier job requests: enough that every stream sees a real
/// event sequence (samples, progress, done), small enough that the tier
/// stresses connection concurrency rather than sampling throughput.
const SAMPLES_PER_JOB: u64 = 4;
/// Walkers per tier job — two keeps each job's round fan-out trivial.
const WALKERS_PER_JOB: u64 = 2;
/// Diameter estimate submitted with every tier job (short burn-in).
const DIAMETER_ESTIMATE: u64 = 4;

/// Descriptors reserved for everything that is not a stream: stdio, the
/// listener, submit connections, the metrics scrape, and test-runner
/// incidentals.
const FD_SLACK: usize = 128;

/// Connects per burst between pauses, so the server's accept queue gets
/// a chance to drain instead of dropping SYNs under a 10k sweep.
const CONNECT_BATCH: usize = 64;
/// Pause between connect bursts.
const CONNECT_PAUSE: Duration = Duration::from_micros(500);
/// Attempts per stream connect before scoring it as a stream error.
const CONNECT_ATTEMPTS: u32 = 3;

/// Hard ceiling on the drain phase; streams still open at the deadline
/// score as lost, which fails the tier.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(300);
/// Sleep when a full multiplexer pass moves no bytes — on a small box
/// the server's threads need the core more than a spinning client does.
const IDLE_SLEEP: Duration = Duration::from_millis(1);
/// Read size per `read` call, and reads per stream per pass.
const READ_CHUNK: usize = 16 * 1024;
const READS_PER_PASS: usize = 4;

/// Streams one tier can hold open at once. Each loopback stream costs
/// **two** descriptors in this process (client end + the server's
/// accepted end), so the budget is half the soft `RLIMIT_NOFILE` minus
/// a slack reserve for everything else. Falls back to a conservative
/// floor when `/proc/self/limits` is unreadable (non-Linux).
pub fn max_open_streams() -> usize {
    let soft = std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines().find_map(|line| {
                let field = line
                    .strip_prefix("Max open files")?
                    .split_whitespace()
                    .next()?;
                if field == "unlimited" {
                    Some(1 << 20)
                } else {
                    field.parse::<usize>().ok()
                }
            })
        })
        .unwrap_or(1_024);
    (soft.saturating_sub(FD_SLACK) / 2).max(16)
}

/// Concurrency tiers per scale: the CI smoke tier, and the full ladder
/// whose 1 000-stream rung is the bench's acceptance bar (10 000 is
/// clamped by [`max_open_streams`] where the fd limit demands).
pub fn tiers(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![100],
        Scale::Full => vec![100, 1_000, 10_000],
    }
}

/// Everything measured about one concurrency tier.
#[derive(Debug, Clone)]
pub struct StreamsTierReport {
    /// Streams the tier asked for.
    pub requested: usize,
    /// Jobs the gateway accepted (`202`).
    pub submitted: usize,
    /// Submits shed with `503` (a clean tier has none — admission is
    /// sized to the tier).
    pub shed: usize,
    /// Submits that failed any other way.
    pub submit_errors: usize,
    /// Streams concurrently open before the drain began — every one of
    /// these sockets was connected, and its `GET` written, before any
    /// stream was read.
    pub opened: usize,
    /// Streams that delivered their terminator with a `completed` done
    /// event.
    pub completed: usize,
    /// Streams that errored (connect failure, malformed framing, early
    /// close, drain deadline).
    pub stream_errors: usize,
    /// Accepted jobs whose client never saw a `done` event — the count
    /// the readiness loop must keep at zero.
    pub lost: usize,
    /// Sample events delivered across all streams.
    pub samples: u64,
    /// All events delivered across all streams.
    pub events: u64,
    /// Submit start → last stream drained, seconds.
    pub wall_clock_s: f64,
    /// `events / wall_clock_s`.
    pub events_per_sec: f64,
    /// Stream-open → first `sample` line, per stream (ms).
    pub ttfs_ms: LatencySummary,
    /// Stream-open → chunk terminator, per stream (ms).
    pub stream_done_ms: LatencySummary,
    /// Server-side cross-check scraped after the drain.
    pub server: ServerSummary,
}

impl StreamsTierReport {
    /// A clean tier: every opened stream ran to completion, nothing was
    /// shed, errored, or lost.
    pub fn clean(&self) -> bool {
        self.opened > 0
            && self.shed == 0
            && self.submit_errors == 0
            && self.stream_errors == 0
            && self.lost == 0
            && self.completed == self.opened
    }

    /// The tier as its bench JSON row.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requested", Json::UInt(self.requested as u64)),
            ("submitted", Json::UInt(self.submitted as u64)),
            ("shed", Json::UInt(self.shed as u64)),
            ("submit_errors", Json::UInt(self.submit_errors as u64)),
            ("opened", Json::UInt(self.opened as u64)),
            ("completed", Json::UInt(self.completed as u64)),
            ("stream_errors", Json::UInt(self.stream_errors as u64)),
            ("lost", Json::UInt(self.lost as u64)),
            ("samples", Json::UInt(self.samples)),
            ("events", Json::UInt(self.events)),
            ("wall_clock_s", Json::Num(round3(self.wall_clock_s))),
            ("events_per_sec", Json::Num(round3(self.events_per_sec))),
            ("ttfs_ms", self.ttfs_ms.to_json()),
            ("stream_done_ms", self.stream_done_ms.to_json()),
            ("clean", Json::Bool(self.clean())),
            ("server", self.server.to_json()),
        ])
    }
}

fn round3(v: f64) -> f64 {
    (v * 1_000.0).round() / 1_000.0
}

/// Runs every tier of `scale`, each against its own fresh two-I/O-thread
/// testbed.
pub fn run_streams_suite(scale: Scale) -> io::Result<Vec<StreamsTierReport>> {
    tiers(scale)
        .into_iter()
        .map(|tier| {
            let server = crate::testbed::launch_streams(tier)?;
            let report = run_tier(server.local_addr(), tier);
            server.shutdown();
            report
        })
        .collect()
}

/// The suite verdict: every tier clean, and — at full scale — at least
/// one tier held ≥ 1 000 streams concurrently open to completion.
pub fn suite_pass(scale: Scale, reports: &[StreamsTierReport]) -> bool {
    let all_clean = reports.iter().all(StreamsTierReport::clean);
    match scale {
        Scale::Smoke => all_clean,
        Scale::Full => all_clean && reports.iter().any(|r| r.opened >= 1_000),
    }
}

/// The suite serialised as the `BENCH_gateway_streams.json` document.
pub fn streams_suite_json(scale: Scale, reports: &[StreamsTierReport]) -> String {
    let mode = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    Json::obj(vec![
        ("benchmark", Json::str("gateway_streams")),
        ("mode", Json::str(mode)),
        ("io_threads", Json::UInt(IO_THREADS as u64)),
        ("pass", Json::Bool(suite_pass(scale, reports))),
        (
            "tiers",
            Json::Arr(reports.iter().map(StreamsTierReport::to_json).collect()),
        ),
    ])
    .encode()
}

/// Runs one tier against the gateway at `addr`: submit sweep, open
/// sweep, multiplexed drain, server scrape.
pub fn run_tier(addr: SocketAddr, requested: usize) -> io::Result<StreamsTierReport> {
    let started = Instant::now();
    let attempt = requested.min(max_open_streams());

    let submit = submit_jobs(addr, attempt)?;
    let (mut streams, connect_failures) = open_streams(addr, &submit.paths);
    let opened = streams.len();

    // Drain: loop over whatever is readable until every stream closed
    // or the deadline expires. `now` is sampled once per pass —
    // millisecond-scale latency summaries don't need per-socket clocks.
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    loop {
        let now = Instant::now();
        if now >= deadline {
            for s in streams.iter_mut().filter(|s| s.sock.is_some()) {
                s.fail("drain deadline expired");
            }
            break;
        }
        let mut progress = false;
        let mut open = 0usize;
        for s in &mut streams {
            if s.sock.is_some() {
                open += 1;
                progress |= s.step(now);
            }
        }
        if open == 0 {
            break;
        }
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }

    let wall_clock_s = started.elapsed().as_secs_f64();
    let completed = streams.iter().filter(|s| s.completed()).count();
    let stream_errors = streams.iter().filter(|s| s.error.is_some()).count() + connect_failures;
    // Lost = accepted by the gateway, but its client never saw a done
    // event (connect failures included: their jobs were accepted too).
    let lost = submit.paths.len() - streams.iter().filter(|s| s.saw_done).count();
    let events: u64 = streams.iter().map(|s| s.events).sum();

    Ok(StreamsTierReport {
        requested,
        submitted: submit.paths.len(),
        shed: submit.shed,
        submit_errors: submit.errors,
        opened,
        completed,
        stream_errors,
        lost,
        samples: streams.iter().map(|s| s.samples).sum(),
        events,
        wall_clock_s,
        events_per_sec: if wall_clock_s > 0.0 {
            events as f64 / wall_clock_s
        } else {
            0.0
        },
        ttfs_ms: LatencySummary::from_ms(streams.iter().filter_map(|s| s.ttfs_ms).collect()),
        stream_done_ms: LatencySummary::from_ms(streams.iter().filter_map(|s| s.done_ms).collect()),
        server: crate::driver::scrape_server(addr)?,
    })
}

struct SubmitOutcome {
    paths: Vec<String>,
    shed: usize,
    errors: usize,
}

/// Posts `count` jobs over [`SUBMIT_CONNECTIONS`] keep-alive
/// connections and collects their stream paths.
fn submit_jobs(addr: SocketAddr, count: usize) -> io::Result<SubmitOutcome> {
    let mut conns: Vec<Connection> = (0..SUBMIT_CONNECTIONS)
        .map(|_| Connection::connect(addr))
        .collect::<io::Result<_>>()?;
    let mut outcome = SubmitOutcome {
        paths: Vec::with_capacity(count),
        shed: 0,
        errors: 0,
    };
    for i in 0..count {
        let body = Json::obj(vec![
            ("samples", Json::UInt(SAMPLES_PER_JOB)),
            ("seed", Json::UInt(0xC0FF_EE00 + i as u64)),
            ("walkers", Json::UInt(WALKERS_PER_JOB)),
            ("diameter_estimate", Json::UInt(DIAMETER_ESTIMATE)),
        ]);
        let conn = &mut conns[i % SUBMIT_CONNECTIONS];
        match conn.post("/v1/jobs", &body) {
            Ok(response) if response.status == 202 => {
                match response
                    .json()
                    .ok()
                    .and_then(|doc| doc.get("stream").and_then(Json::as_str).map(String::from))
                {
                    Some(path) => outcome.paths.push(path),
                    None => outcome.errors += 1,
                }
            }
            Ok(response) if response.status == 503 => outcome.shed += 1,
            Ok(_) => outcome.errors += 1,
            Err(_) => {
                outcome.errors += 1;
                // A broken submit connection takes its successors with it
                // unless replaced.
                *conn = Connection::connect(addr)?;
            }
        }
    }
    Ok(outcome)
}

/// Connects every stream and writes its `GET` **before returning**, in
/// paced bursts so the listener's accept queue keeps up. No stream is
/// read here — when this returns, all of them are concurrently open.
fn open_streams(addr: SocketAddr, paths: &[String]) -> (Vec<MuxStream>, usize) {
    let mut streams = Vec::with_capacity(paths.len());
    let mut failures = 0usize;
    for (i, path) in paths.iter().enumerate() {
        match open_one(addr, path) {
            Ok(stream) => streams.push(stream),
            Err(_) => failures += 1,
        }
        if (i + 1) % CONNECT_BATCH == 0 {
            std::thread::sleep(CONNECT_PAUSE);
        }
    }
    (streams, failures)
}

/// Connects one stream socket, writes its request while still blocking
/// (a sub-200-byte write into an empty send buffer cannot stall), then
/// flips it non-blocking for the multiplexer.
fn open_one(addr: SocketAddr, path: &str) -> io::Result<MuxStream> {
    let mut last = None;
    for backoff in 0..CONNECT_ATTEMPTS {
        if backoff > 0 {
            std::thread::sleep(Duration::from_millis(10 << backoff));
        }
        match TcpStream::connect(addr) {
            Ok(mut sock) => {
                sock.set_nodelay(true)?;
                sock.write_all(
                    format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                        .as_bytes(),
                )?;
                sock.set_nonblocking(true)?;
                return Ok(MuxStream::new(sock));
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one connect attempt ran"))
}

/// Decoder position within one stream's response bytes.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Waiting for the complete response head (`\r\n\r\n`).
    Head,
    /// At a chunk-size line.
    ChunkSize,
    /// Inside chunk data with this many bytes still due.
    ChunkData { remaining: usize },
    /// At the CRLF that closes a chunk's data.
    ChunkCrlf,
    /// Past the zero chunk, consuming (empty) trailers.
    Trailer,
    /// Terminator seen — the stream completed.
    Done,
}

/// One multiplexed stream: its socket, undecoded bytes, decoder state,
/// and everything observed about it.
struct MuxStream {
    /// `None` once closed (completed or failed).
    sock: Option<TcpStream>,
    /// Received, not-yet-decoded bytes.
    buf: Vec<u8>,
    /// De-chunked bytes not yet consumed as complete NDJSON lines.
    line_buf: Vec<u8>,
    phase: Phase,
    opened_at: Instant,
    ttfs_ms: Option<f64>,
    done_ms: Option<f64>,
    /// A `done` event arrived (any status).
    saw_done: bool,
    /// The `done` event's status was `completed`.
    done_completed: bool,
    samples: u64,
    events: u64,
    error: Option<&'static str>,
}

impl MuxStream {
    fn new(sock: TcpStream) -> Self {
        MuxStream {
            sock: Some(sock),
            buf: Vec::new(),
            line_buf: Vec::new(),
            phase: Phase::Head,
            opened_at: Instant::now(),
            ttfs_ms: None,
            done_ms: None,
            saw_done: false,
            done_completed: false,
            samples: 0,
            events: 0,
            error: None,
        }
    }

    /// Ran to a clean end: terminator decoded, `done` said `completed`.
    fn completed(&self) -> bool {
        matches!(self.phase, Phase::Done) && self.done_completed && self.error.is_none()
    }

    /// One multiplexer visit: read what is ready, decode it. Returns
    /// whether any bytes moved.
    fn step(&mut self, now: Instant) -> bool {
        let mut progress = false;
        let mut eof = false;
        let mut broken = false;
        let mut scratch = [0u8; READ_CHUNK];
        for _ in 0..READS_PER_PASS {
            let Some(sock) = self.sock.as_mut() else {
                return progress;
            };
            match sock.read(&mut scratch) {
                Ok(0) => {
                    // The terminator and the EOF behind it often land in
                    // one pass — decode what arrived before judging it.
                    eof = true;
                    progress = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&scratch[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    broken = true;
                    progress = true;
                    break;
                }
            }
        }
        if progress {
            if let Err(msg) = self.decode(now) {
                self.fail(msg);
            } else if matches!(self.phase, Phase::Done) {
                // Close as soon as the terminator lands — no reason to
                // hold the descriptors through the rest of the drain.
                self.sock = None;
                if self.done_ms.is_none() {
                    self.done_ms = Some(ms_between(self.opened_at, now));
                }
            } else if broken {
                self.fail("socket read error");
            } else if eof {
                self.fail("connection closed before the chunk terminator");
            }
        }
        progress
    }

    fn fail(&mut self, msg: &'static str) {
        if self.error.is_none() {
            self.error = Some(msg);
        }
        self.sock = None;
    }

    /// Decodes as much of `buf` as the current phase allows.
    fn decode(&mut self, now: Instant) -> Result<(), &'static str> {
        let mut pos = 0usize;
        loop {
            match self.phase {
                Phase::Head => {
                    let Some(end) = find(&self.buf[pos..], b"\r\n\r\n") else {
                        break;
                    };
                    {
                        let head = std::str::from_utf8(&self.buf[pos..pos + end])
                            .map_err(|_| "non-UTF-8 response head")?;
                        let mut lines = head.split("\r\n");
                        let status = lines
                            .next()
                            .and_then(|l| l.split(' ').nth(1))
                            .and_then(|s| s.parse::<u16>().ok())
                            .ok_or("malformed status line")?;
                        if status != 200 {
                            return Err("non-200 response to stream open");
                        }
                        if !lines.any(|l| {
                            let l = l.to_ascii_lowercase();
                            l.starts_with("transfer-encoding") && l.contains("chunked")
                        }) {
                            return Err("stream response is not chunked");
                        }
                    }
                    pos += end + 4;
                    self.phase = Phase::ChunkSize;
                }
                Phase::ChunkSize => {
                    let Some(eol) = find(&self.buf[pos..], b"\r\n") else {
                        break;
                    };
                    let line = std::str::from_utf8(&self.buf[pos..pos + eol])
                        .map_err(|_| "non-UTF-8 chunk size line")?;
                    let size =
                        usize::from_str_radix(line.split(';').next().unwrap_or("").trim(), 16)
                            .map_err(|_| "bad chunk size")?;
                    pos += eol + 2;
                    self.phase = if size == 0 {
                        Phase::Trailer
                    } else {
                        Phase::ChunkData { remaining: size }
                    };
                }
                Phase::ChunkData { remaining } => {
                    let avail = self.buf.len() - pos;
                    if avail == 0 {
                        break;
                    }
                    let take = remaining.min(avail);
                    self.line_buf.extend_from_slice(&self.buf[pos..pos + take]);
                    pos += take;
                    self.phase = if take == remaining {
                        Phase::ChunkCrlf
                    } else {
                        Phase::ChunkData {
                            remaining: remaining - take,
                        }
                    };
                    self.drain_lines(now)?;
                }
                Phase::ChunkCrlf => {
                    if self.buf.len() - pos < 2 {
                        break;
                    }
                    if &self.buf[pos..pos + 2] != b"\r\n" {
                        return Err("chunk not CRLF-terminated");
                    }
                    pos += 2;
                    self.phase = Phase::ChunkSize;
                }
                Phase::Trailer => {
                    let Some(eol) = find(&self.buf[pos..], b"\r\n") else {
                        break;
                    };
                    pos += eol + 2;
                    if eol == 0 {
                        self.phase = Phase::Done;
                    }
                }
                Phase::Done => break,
            }
        }
        self.buf.drain(..pos);
        Ok(())
    }

    /// Classifies every complete NDJSON line sitting in `line_buf`.
    fn drain_lines(&mut self, now: Instant) -> Result<(), &'static str> {
        while let Some(nl) = self.line_buf.iter().position(|&b| b == b'\n') {
            let rest = self.line_buf.split_off(nl + 1);
            let mut line = std::mem::replace(&mut self.line_buf, rest);
            line.pop();
            let text = std::str::from_utf8(&line).map_err(|_| "non-UTF-8 event line")?;
            let event = json::parse(text).map_err(|_| "malformed NDJSON event")?;
            self.events += 1;
            match event.get("event").and_then(Json::as_str) {
                Some("sample") => {
                    self.samples += 1;
                    if self.ttfs_ms.is_none() {
                        self.ttfs_ms = Some(ms_between(self.opened_at, now));
                    }
                }
                Some("done") => {
                    self.saw_done = true;
                    self.done_completed =
                        event.get("status").and_then(Json::as_str) == Some("completed");
                }
                _ => {}
            }
        }
        Ok(())
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn ms_between(from: Instant, to: Instant) -> f64 {
    to.saturating_duration_since(from).as_secs_f64() * 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small real tier over loopback: every stream opened before the
    /// drain, every one completed, nothing shed or lost.
    #[test]
    fn small_tier_runs_clean_on_the_streams_testbed() {
        let tier = 32;
        let server = crate::testbed::launch_streams(tier).expect("streams testbed");
        let report = run_tier(server.local_addr(), tier).expect("tier run");
        server.shutdown();

        assert!(
            report.clean(),
            "tier must run clean: {:?}",
            (
                report.shed,
                report.submit_errors,
                report.stream_errors,
                report.lost,
                report.completed,
                report.opened,
            )
        );
        assert_eq!(report.opened, tier);
        assert_eq!(report.samples, tier as u64 * SAMPLES_PER_JOB);
        assert_eq!(report.ttfs_ms.count, tier);
        assert_eq!(report.server.jobs_completed, tier as u64);
        assert_eq!(report.server.jobs_cancelled, 0);
    }

    #[test]
    fn fd_budget_is_sane_and_suite_json_carries_the_verdict() {
        assert!(max_open_streams() >= 16);
        let report = StreamsTierReport {
            requested: 1_000,
            submitted: 1_000,
            shed: 0,
            submit_errors: 0,
            opened: 1_000,
            completed: 1_000,
            stream_errors: 0,
            lost: 0,
            samples: 4_000,
            events: 6_000,
            wall_clock_s: 2.0,
            events_per_sec: 3_000.0,
            ttfs_ms: LatencySummary::from_ms(vec![1.0, 2.0, 3.0]),
            stream_done_ms: LatencySummary::from_ms(vec![2.0, 3.0, 4.0]),
            server: ServerSummary::default(),
        };
        assert!(report.clean());
        assert!(suite_pass(Scale::Full, std::slice::from_ref(&report)));

        let doc = json::parse(&streams_suite_json(
            Scale::Full,
            std::slice::from_ref(&report),
        ))
        .unwrap();
        assert_eq!(
            doc.get("benchmark").unwrap().as_str(),
            Some("gateway_streams")
        );
        assert_eq!(doc.get("io_threads").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("pass").unwrap().as_bool(), Some(true));

        // Full scale demands a ≥ 1 000-stream tier; a clean small tier
        // alone is not enough.
        let small = StreamsTierReport {
            requested: 100,
            submitted: 100,
            opened: 100,
            completed: 100,
            ..report
        };
        assert!(small.clean());
        assert!(!suite_pass(Scale::Full, std::slice::from_ref(&small)));
        assert!(suite_pass(Scale::Smoke, std::slice::from_ref(&small)));
    }
}
