//! Deterministic arrival processes for open-loop load generation.
//!
//! The generator schedules every request **before** the run starts: an
//! [`ArrivalProcess`] expands a `(duration, seed)` pair into a sorted list
//! of arrival offsets, and the driver dispatches each request at its
//! offset no matter how the service is keeping up. That open-loop shape is
//! the whole point — queueing delay inside the service cannot back-pressure
//! the offered load, so saturation shows up as shed requests and growing
//! queue waits instead of silently thinning the arrival stream (the
//! classic closed-loop *coordinated omission* bug).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// How request arrivals are spread over the scenario window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant offered rate: inter-arrival gaps
    /// are i.i.d. exponential with mean `1 / rps`.
    Poisson {
        /// Offered requests per second.
        rps: f64,
    },
    /// An on/off burst process: a square wave of period `period` whose
    /// first `duty` fraction offers `on_rps` and the remainder `off_rps`.
    /// Arrivals are generated at `on_rps` and thinned to `off_rps` inside
    /// the off phase, so the two phases share one memoryless stream.
    OnOff {
        /// Offered rate inside the burst phase (must be `>= off_rps`).
        on_rps: f64,
        /// Offered rate between bursts.
        off_rps: f64,
        /// Length of one on+off cycle.
        period: Duration,
        /// Fraction of each period spent in the burst phase, in `(0, 1)`.
        duty: f64,
    },
}

impl ArrivalProcess {
    /// The mean offered rate over a long window, in requests per second.
    pub fn mean_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rps } => rps,
            ArrivalProcess::OnOff {
                on_rps,
                off_rps,
                duty,
                ..
            } => on_rps * duty + off_rps * (1.0 - duty),
        }
    }

    /// Expands the process into sorted arrival offsets covering
    /// `[0, duration)`. Deterministic in `(self, duration, seed)`.
    pub fn schedule(&self, duration: Duration, seed: u64) -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (rate, thin): (f64, Option<(f64, Duration, f64)>) = match *self {
            ArrivalProcess::Poisson { rps } => (rps, None),
            ArrivalProcess::OnOff {
                on_rps,
                off_rps,
                period,
                duty,
            } => {
                assert!(
                    on_rps >= off_rps && on_rps > 0.0,
                    "OnOff needs on_rps >= off_rps > 0 offered load"
                );
                assert!(duty > 0.0 && duty < 1.0, "duty must be in (0, 1)");
                (on_rps, Some((off_rps / on_rps, period, duty)))
            }
        };
        assert!(rate > 0.0 && rate.is_finite(), "offered rate must be > 0");

        let mut arrivals = Vec::new();
        let mut at = 0.0f64;
        let horizon = duration.as_secs_f64();
        loop {
            // Exponential gap via inverse CDF; clamp the uniform away from
            // 1.0 so ln never sees zero.
            let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
            at += -(1.0 - u).ln() / rate;
            if at >= horizon {
                break;
            }
            if let Some((keep, period, duty)) = thin {
                let phase = (at % period.as_secs_f64()) / period.as_secs_f64();
                let in_burst = phase < duty;
                if !in_burst && rng.gen::<f64>() >= keep {
                    continue; // thinned: the off phase offers off_rps
                }
            }
            arrivals.push(Duration::from_secs_f64(at));
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_deterministic_and_close_to_rate() {
        let p = ArrivalProcess::Poisson { rps: 200.0 };
        let a = p.schedule(Duration::from_secs(20), 7);
        let b = p.schedule(Duration::from_secs(20), 7);
        assert_eq!(a, b, "same seed must reproduce the identical schedule");
        // 20 s at 200 rps => ~4000 arrivals; Poisson sd is ~63, allow 5 sd.
        let n = a.len() as f64;
        assert!(
            (n - 4_000.0).abs() < 320.0,
            "arrival count {n} too far from offered 4000"
        );
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets must be sorted");
        let c = p.schedule(Duration::from_secs(20), 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn on_off_bursts_concentrate_arrivals_in_the_duty_phase() {
        let p = ArrivalProcess::OnOff {
            on_rps: 400.0,
            off_rps: 40.0,
            period: Duration::from_secs(2),
            duty: 0.25,
        };
        let arrivals = p.schedule(Duration::from_secs(40), 99);
        let period = 2.0f64;
        let (mut on, mut off) = (0usize, 0usize);
        for at in &arrivals {
            let phase = (at.as_secs_f64() % period) / period;
            if phase < 0.25 {
                on += 1;
            } else {
                off += 1;
            }
        }
        // Expected: on ≈ 400 * 0.5s * 20 = 4000, off ≈ 40 * 1.5s * 20 = 1200.
        assert!(on > 2 * off, "burst phase must dominate: on={on} off={off}");
        let expected = p.mean_rps() * 40.0;
        let n = arrivals.len() as f64;
        assert!(
            (n - expected).abs() < expected * 0.15,
            "count {n} too far from offered {expected}"
        );
    }
}
