//! A self-contained service-under-test: a seeded Barabási–Albert graph
//! behind [`SimulatedOsn`], a [`SamplingService`], and a loopback
//! [`GatewayServer`] sized so the *service*, not the harness, is the
//! bottleneck under the preset scenarios.
//!
//! Every scenario gets a **fresh** testbed so the scraped metrics (shed
//! counts, history-reuse savings, Prometheus counters) belong to that
//! scenario alone rather than accumulating across the suite.

use crate::scenario::Scenario;
use std::io;
use std::time::Duration;
use wnw_access::SimulatedOsn;
use wnw_catalog::{CatalogNetwork, CsrGraph, GraphModel, GraphSpec};
use wnw_gateway::{GatewayConfig, GatewayServer};
use wnw_graph::generators::random::barabasi_albert;
use wnw_service::SamplingService;

/// Edges each newcomer attaches with in the testbed graph.
const BA_EDGES_PER_NODE: usize = 3;
/// Graph seed: fixed so the network itself is identical across runs and
/// across scenarios — only the workload varies.
const GRAPH_SEED: u64 = 0x0517_BEEF;

/// Launches a fresh gateway over a `nodes`-node simulated OSN, bound to an
/// OS-assigned loopback port. The caller owns the server (and should
/// `shutdown()` it once the run drains).
pub fn launch(nodes: usize) -> io::Result<GatewayServer<SimulatedOsn>> {
    let graph = barabasi_albert(nodes, BA_EDGES_PER_NODE, GRAPH_SEED)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("testbed graph: {e}")))?;
    let service = SamplingService::builder(SimulatedOsn::new(graph))
        .pool_threads(2)
        .max_in_flight(256)
        .build();
    GatewayServer::bind_with(service, "127.0.0.1:0", testbed_gateway_config())
}

/// Launches a fresh gateway over the **catalog substrate**: the same
/// testbed graph (model, `m`, seed) built as a [`CsrGraph`] and served
/// through [`CatalogNetwork`], cached on disk by the spec registry so
/// repeat runs load instead of regenerate. Everything above the access
/// layer — service, gateway, driver — is identical to [`launch`]; that
/// indifference is the point of the adapter.
pub fn launch_catalog(nodes: usize) -> io::Result<GatewayServer<CatalogNetwork>> {
    let csr = testbed_catalog(nodes).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("testbed catalog: {e}"))
    })?;
    let service = SamplingService::builder(CatalogNetwork::new(csr))
        .pool_threads(2)
        .max_in_flight(256)
        .build();
    GatewayServer::bind_with(service, "127.0.0.1:0", testbed_gateway_config())
}

/// The testbed graph as a cached CSR catalog (spec name
/// `loadgen_ba_{nodes}`, same model parameters and seed as [`launch`]).
pub fn testbed_catalog(nodes: usize) -> wnw_catalog::Result<CsrGraph> {
    let spec = GraphSpec::new(
        format!("loadgen_ba_{nodes}"),
        GraphModel::BarabasiAlbert {
            m: BA_EDGES_PER_NODE,
        },
        nodes,
        GRAPH_SEED,
    );
    spec.load_or_build().map(|(graph, _)| graph)
}

fn testbed_gateway_config() -> GatewayConfig {
    GatewayConfig {
        // Each streaming client holds a worker for its job's life; the
        // presets offer tens of concurrent streams at burst peaks.
        workers: 24,
        backlog: 64,
        // Short claim TTL: a job whose stream-open was shed should release
        // its admission slot quickly instead of squatting for the default
        // 60 s.
        claim_ttl: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

/// Launches a fresh testbed sized for `scenario`, runs it, and tears the
/// server down. The returned report is the scenario's bench row.
pub fn run_scenario(scenario: &Scenario) -> io::Result<crate::report::ScenarioReport> {
    let server = launch(scenario.nodes)?;
    let report = crate::driver::run_scenario_on(server.local_addr(), scenario);
    server.shutdown();
    report
}

/// [`run_scenario`] on the catalog-backed testbed: same workload, same
/// driver, CSR substrate underneath.
pub fn run_scenario_catalog(scenario: &Scenario) -> io::Result<crate::report::ScenarioReport> {
    let server = launch_catalog(scenario.nodes)?;
    let report = crate::driver::run_scenario_on(server.local_addr(), scenario);
    server.shutdown();
    report
}
