//! A self-contained service-under-test: a seeded Barabási–Albert graph
//! behind [`SimulatedOsn`], a [`SamplingService`], and a loopback
//! [`GatewayServer`] sized so the *service*, not the harness, is the
//! bottleneck under the preset scenarios.
//!
//! Every scenario gets a **fresh** testbed so the scraped metrics (shed
//! counts, history-reuse savings, Prometheus counters) belong to that
//! scenario alone rather than accumulating across the suite.

use crate::scenario::Scenario;
use std::io;
use std::sync::Arc;
use std::time::Duration;
use wnw_access::interface::SocialNetwork;
use wnw_access::{
    FaultInjector, FaultProfile, FaultStats, FaultyNetwork, ResilienceMonitor, ResilienceStats,
    ResilientNetwork, RetryPolicy, SimulatedOsn,
};
use wnw_catalog::{CatalogNetwork, CsrGraph, GraphModel, GraphSpec};
use wnw_gateway::{GatewayConfig, GatewayServer};
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::NodeId;
use wnw_service::SamplingService;

/// Edges each newcomer attaches with in the testbed graph.
const BA_EDGES_PER_NODE: usize = 3;
/// Graph seed: fixed so the network itself is identical across runs and
/// across scenarios — only the workload varies.
const GRAPH_SEED: u64 = 0x0517_BEEF;

/// Launches a fresh gateway over a `nodes`-node simulated OSN, bound to an
/// OS-assigned loopback port. The caller owns the server (and should
/// `shutdown()` it once the run drains).
pub fn launch(nodes: usize) -> io::Result<GatewayServer<SimulatedOsn>> {
    let graph = barabasi_albert(nodes, BA_EDGES_PER_NODE, GRAPH_SEED)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("testbed graph: {e}")))?;
    let service = SamplingService::builder(SimulatedOsn::new(graph))
        .pool_threads(2)
        .max_in_flight(256)
        .build();
    GatewayServer::bind_with(service, "127.0.0.1:0", testbed_gateway_config())
}

/// Launches a fresh gateway over the **catalog substrate**: the same
/// testbed graph (model, `m`, seed) built as a [`CsrGraph`] and served
/// through [`CatalogNetwork`], cached on disk by the spec registry so
/// repeat runs load instead of regenerate. Everything above the access
/// layer — service, gateway, driver — is identical to [`launch`]; that
/// indifference is the point of the adapter.
pub fn launch_catalog(nodes: usize) -> io::Result<GatewayServer<CatalogNetwork>> {
    let csr = testbed_catalog(nodes).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("testbed catalog: {e}"))
    })?;
    let service = SamplingService::builder(CatalogNetwork::new(csr))
        .pool_threads(2)
        .max_in_flight(256)
        .build();
    GatewayServer::bind_with(service, "127.0.0.1:0", testbed_gateway_config())
}

/// The testbed graph as a cached CSR catalog (spec name
/// `loadgen_ba_{nodes}`, same model parameters and seed as [`launch`]).
pub fn testbed_catalog(nodes: usize) -> wnw_catalog::Result<CsrGraph> {
    let spec = GraphSpec::new(
        format!("loadgen_ba_{nodes}"),
        GraphModel::BarabasiAlbert {
            m: BA_EDGES_PER_NODE,
        },
        nodes,
        GRAPH_SEED,
    );
    spec.load_or_build().map(|(graph, _)| graph)
}

/// Nodes in the streams-tier testbed graph: the tiers stress connection
/// concurrency, not sampling, so the graph stays small.
const STREAMS_NODES: usize = 2_000;

/// Launches the [`crate::streams`] tier testbed: the readiness loop held
/// to exactly [`crate::streams::IO_THREADS`] I/O threads (the headline
/// claim under test), admission wide open so a tier of `concurrent`
/// streams sheds nothing, and a claim TTL long enough that the harness's
/// submit-everything-then-open-everything sweep cannot get its unclaimed
/// jobs reaped mid-tier.
pub fn launch_streams(concurrent: usize) -> io::Result<GatewayServer<SimulatedOsn>> {
    let graph = barabasi_albert(STREAMS_NODES, BA_EDGES_PER_NODE, GRAPH_SEED)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("testbed graph: {e}")))?;
    let service = SamplingService::builder(SimulatedOsn::new(graph))
        .pool_threads(2)
        .max_in_flight(concurrent.max(256))
        .build();
    let config = GatewayConfig {
        io_threads: crate::streams::IO_THREADS,
        workers: 4,
        // Headroom above the tier for the submit connections and the
        // post-drain metrics scrape.
        max_connections: concurrent + 64,
        claim_ttl: Duration::from_secs(600),
        ..GatewayConfig::default()
    };
    GatewayServer::bind_with(service, "127.0.0.1:0", config)
}

fn testbed_gateway_config() -> GatewayConfig {
    GatewayConfig {
        // Streams ride the readiness loop, not threads; the task pool
        // only absorbs the blocking route handlers (submit, metrics),
        // so it stays narrow even at burst peaks.
        workers: 8,
        backlog: 64,
        // Short claim TTL: a job whose stream-open was shed should release
        // its admission slot quickly instead of squatting for the default
        // 60 s.
        claim_ttl: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

/// Launches a fresh testbed sized for `scenario`, runs it, and tears the
/// server down. The returned report is the scenario's bench row.
pub fn run_scenario(scenario: &Scenario) -> io::Result<crate::report::ScenarioReport> {
    let server = launch(scenario.nodes)?;
    let report = crate::driver::run_scenario_on(server.local_addr(), scenario);
    server.shutdown();
    report
}

/// [`run_scenario`] on the catalog-backed testbed: same workload, same
/// driver, CSR substrate underneath.
pub fn run_scenario_catalog(scenario: &Scenario) -> io::Result<crate::report::ScenarioReport> {
    let server = launch_catalog(scenario.nodes)?;
    let report = crate::driver::run_scenario_on(server.local_addr(), scenario);
    server.shutdown();
    report
}

/// Seed of the chaos testbed's fault schedule (distinct from the graph
/// seed and every scenario seed, so the three sources of randomness stay
/// independently reproducible). Chosen so the blackout draw lands on
/// exactly one tail node at smoke scale (id 444) and two at full scale
/// (444 and 1693) — low-degree BA latecomers. Blacking out a hub would
/// put a blackout contact on nearly every short walk and degrade ~100%
/// of jobs, scoring the topology rather than the resilience layer.
pub const CHAOS_FAULT_SEED: u64 = 28;

/// Retry / breaker policy the chaos testbed wraps its network with. The
/// breaker threshold sits well above one call's worth of consecutive
/// failures (`max_retries + 1 = 4`): one blacked-out node degrades its
/// own call without tripping the service-wide breaker — that takes four
/// hopeless calls back to back with no clean call in between. A trip
/// turns *every* concurrent fetch into a fast-failed (degraded) walker
/// for a whole cooldown, so the threshold is what keeps isolated node
/// failures from escalating into service-wide degradation windows.
pub const CHAOS_POLICY: RetryPolicy = RetryPolicy {
    max_retries: 3,
    base_backoff_secs: 1,
    max_backoff_secs: 8,
    breaker_threshold: 32,
    breaker_cooldown_secs: 4,
};

/// The chaos testbed's fault profile — the library's `chaos()` preset
/// verbatim. [`CHAOS_FAULT_SEED`] guarantees its blackout draw contains
/// node 444 at either testbed size, which the forced breaker trip
/// depends on.
pub fn chaos_profile() -> FaultProfile {
    FaultProfile::chaos()
}

/// What the chaos run proves beyond the scenario report: the injector's
/// fault tally, the resilience layer's own accounting, and the policy it
/// ran under — enough to check the acceptance invariants from the bench
/// artifact alone.
#[derive(Debug, Clone)]
pub struct ChaosEvidence {
    /// Faults the injector dealt, by type.
    pub fault_stats: FaultStats,
    /// The resilience layer's counters after the run drained.
    pub resilience: ResilienceStats,
    /// The counters right after the forced pre-run breaker cycle — the
    /// proof that open → half-open → closed completed before any load.
    pub pre_run: ResilienceStats,
    /// The retry/breaker policy the run used.
    pub policy: RetryPolicy,
    /// True: the testbed forced a breaker trip (and recovery) before the
    /// offered load started.
    pub forced_breaker_trip: bool,
}

impl ChaosEvidence {
    /// No call ever retried past the policy cap.
    pub fn retries_within_policy(&self) -> bool {
        self.resilience.retries_per_call.max <= u64::from(self.policy.max_retries)
    }

    /// The forced trip ran the full cycle: the breaker had opened and was
    /// closed again before the offered load started. (The *final*
    /// `resilience.breaker_open` may legitimately be true — a fault burst
    /// in the run's last moments leaves nothing behind it to drive the
    /// cooldown.)
    pub fn breaker_recovered(&self) -> bool {
        self.pre_run.breaker_opened >= 1 && !self.pre_run.breaker_open
    }
}

/// Launches the **fault-injected** testbed: the same seeded BA graph as
/// [`launch`], wrapped in a [`FaultyNetwork`] (seeded chaos fault
/// schedule) and a [`ResilientNetwork`] (retries, backoff, breaker), with
/// the resilience monitor attached to the service so `/v1/metrics` and
/// `/healthz` report the layer's counters.
///
/// Before binding the gateway the testbed **forces one breaker trip and
/// drives the full recovery cycle**: repeated calls to a blacked-out node
/// cross the failure threshold (open), further calls fail fast while the
/// simulated clock ticks toward the cooldown (the fast-fail path advances
/// the clock exactly so this terminates), and a half-open probe against a
/// healthy node closes the breaker again. The offered load then starts
/// against a *healthy* service whose stats already prove the
/// open → half-open → closed cycle ran.
pub fn launch_chaos(nodes: usize) -> io::Result<ChaosTestbed> {
    let graph = barabasi_albert(nodes, BA_EDGES_PER_NODE, GRAPH_SEED)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("testbed graph: {e}")))?;
    let faulty = FaultyNetwork::new(SimulatedOsn::new(graph), CHAOS_FAULT_SEED, chaos_profile());
    let injector = Arc::clone(faulty.injector());
    let resilient = ResilientNetwork::new(faulty, CHAOS_POLICY, CHAOS_FAULT_SEED);
    let monitor = resilient.monitor();

    force_breaker_cycle(&resilient, &monitor, &injector, nodes)?;
    let pre_run = monitor.stats();

    let service = SamplingService::builder(resilient)
        .pool_threads(2)
        .max_in_flight(256)
        .resilience(monitor.clone())
        .build();
    let server = GatewayServer::bind_with(service, "127.0.0.1:0", testbed_gateway_config())?;
    Ok(ChaosTestbed {
        server,
        monitor,
        injector,
        pre_run,
    })
}

/// A live fault-injected service-under-test plus the handles the chaos
/// verdicts are derived from.
pub struct ChaosTestbed {
    /// The gateway over the resilience-wrapped faulty network.
    pub server: GatewayServer<ResilientNetwork<FaultyNetwork<SimulatedOsn>>>,
    /// Monitor onto the resilience layer's live counters.
    pub monitor: ResilienceMonitor,
    /// The fault injector's accounting handle.
    pub injector: Arc<FaultInjector>,
    /// Resilience counters right after the forced breaker cycle.
    pub pre_run: ResilienceStats,
}

/// Trips the breaker against a blacked-out node, then drives it through
/// cooldown and a successful half-open probe so the run starts healthy.
fn force_breaker_cycle(
    resilient: &ResilientNetwork<FaultyNetwork<SimulatedOsn>>,
    monitor: &ResilienceMonitor,
    injector: &FaultInjector,
    nodes: usize,
) -> io::Result<()> {
    let pick = |want_blackout: bool| {
        // Scan from the top: high ids are the BA latecomers the Zipf skew
        // rarely starts jobs on, so the forced trip perturbs the node the
        // workload cares least about.
        (0..nodes as u32)
            .rev()
            .map(NodeId)
            .find(|v| injector.is_blackout(*v) == want_blackout)
    };
    let blackout = pick(true).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("no blackout node among {nodes}; raise blackout_fraction or change the seed"),
        )
    })?;
    let healthy = pick(false).expect("a testbed graph cannot be fully blacked out");

    // Open: every call to the blackout node fails all its attempts, so
    // consecutive failures cross the threshold within a bounded number of
    // calls.
    let calls_to_trip = CHAOS_POLICY
        .breaker_threshold
        .div_ceil(CHAOS_POLICY.max_retries + 1);
    for _ in 0..calls_to_trip {
        let _ = resilient.neighbors(blackout);
    }
    if !monitor.breaker_open() {
        return Err(io::Error::other("forced breaker trip did not open"));
    }

    // Recover: fast-fails tick the simulated clock through the cooldown;
    // the first half-open probe that lands on a clean schedule position
    // closes the breaker. Transient faults can fail a probe and re-open
    // it, so the spin cap is generous — but the loop is still bounded.
    let mut spins = 0u32;
    while resilient.neighbors(healthy).is_err() {
        spins += 1;
        if spins > 10_000 {
            return Err(io::Error::other("forced breaker recovery did not close"));
        }
    }
    if monitor.breaker_open() {
        return Err(io::Error::other("breaker still open after recovery probe"));
    }
    Ok(())
}

/// Runs `scenario` against the fault-injected testbed and returns both
/// the ordinary scenario report and the [`ChaosEvidence`] backing the
/// resilience verdicts in `BENCH_fault_resilience.json`.
pub fn run_scenario_chaos(
    scenario: &Scenario,
) -> io::Result<(crate::report::ScenarioReport, ChaosEvidence)> {
    let testbed = launch_chaos(scenario.nodes)?;
    let report = crate::driver::run_scenario_on(testbed.server.local_addr(), scenario);
    testbed.server.shutdown();
    let evidence = ChaosEvidence {
        fault_stats: testbed.injector.stats(),
        resilience: testbed.monitor.stats(),
        pre_run: testbed.pre_run,
        policy: testbed.monitor.policy(),
        forced_breaker_trip: true,
    };
    report.map(|report| (report, evidence))
}
