//! The open-loop client driver: dispatches a [`WorkPlan`] against a live
//! gateway over real loopback sockets and reduces what every client saw
//! into a [`ScenarioReport`].
//!
//! [`WorkPlan`]: crate::scenario::WorkPlan
//!
//! Open-loop means the dispatcher sleeps to each request's *pre-scheduled*
//! offset and then hands the request to its own thread, no matter how many
//! earlier requests are still in flight. A saturated service therefore
//! sheds load or grows its queue-wait tail — it cannot quietly slow the
//! arrival stream down, which is exactly the failure mode a closed-loop
//! driver hides (coordinated omission).

use crate::report::{LatencySummary, ScenarioReport, ServerSummary};
use crate::scenario::{PlannedRequest, Scenario};
use crate::slo::Observed;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use wnw_gateway::client::{self, DEFAULT_CLIENT_TIMEOUT};
use wnw_gateway::json::Json;

/// Diameter estimate submitted with every job: keeps burn-in, and with it
/// each job's life, short — load scenarios stress the *service*, not the
/// walk length.
const DIAMETER_ESTIMATE: u64 = 4;

/// Stream-open attempts before a request is recorded as failed (the open
/// itself can be shed by the accept loop under burst load).
const STREAM_OPEN_ATTEMPTS: usize = 3;

/// What one scripted client observed for its request.
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// The gateway answered the submit with `503`.
    pub shed: bool,
    /// The submit failed some other way (socket error, non-202).
    pub submit_error: bool,
    /// Terminal `done` status label, when a stream delivered one.
    pub status: Option<String>,
    /// The terminal event carried `degraded: true` — the resilience layer
    /// gave up on at least one of the job's walkers.
    pub degraded: bool,
    /// The stream errored or ended without a terminal event.
    pub stream_error: bool,
    /// Server-reported queue wait from the `done` event (ms).
    pub queue_wait_ms: Option<f64>,
    /// Dispatch → terminal event, client clock (ms).
    pub e2e_ms: Option<f64>,
    /// Dispatch → first `sample` event, client clock (ms).
    pub ttfs_ms: Option<f64>,
    /// Sample events this client received.
    pub samples: u64,
}

/// The raw result of driving one plan: per-request observations plus the
/// run's wall clock (first dispatch until the last stream drained).
#[derive(Debug)]
pub struct RunOutcome {
    /// One entry per planned request, in plan order.
    pub observations: Vec<Observation>,
    /// First dispatch → last stream drained.
    pub wall_clock: Duration,
}

/// Drives `plan` against the gateway at `addr`, open-loop.
pub fn run_plan(addr: SocketAddr, requests: &[PlannedRequest]) -> RunOutcome {
    let started = Instant::now();
    let observations: Vec<Observation> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| {
                // Open loop: sleep to the request's offset, then hand it to
                // its own thread regardless of what is still in flight.
                let target = started + request.at;
                if let Some(wait) = target.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                scope.spawn(move || drive_one(addr, request))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    RunOutcome {
        observations,
        wall_clock: started.elapsed(),
    }
}

/// One scripted client: submit, stream, optionally stall and cancel.
fn drive_one(addr: SocketAddr, request: &PlannedRequest) -> Observation {
    let mut obs = Observation::default();
    let t0 = Instant::now();

    let mut body = vec![
        ("samples", Json::UInt(request.samples as u64)),
        ("seed", Json::UInt(request.seed)),
        ("walkers", Json::UInt(request.walkers as u64)),
        ("diameter_estimate", Json::UInt(DIAMETER_ESTIMATE)),
        ("start_node", Json::UInt(u64::from(request.start_node))),
        ("priority", Json::str(request.priority)),
        ("history_policy", Json::str(request.history_policy)),
    ];
    if let Some(budget) = request.budget {
        body.push(("budget", Json::UInt(budget)));
    }

    let accepted = match client::post(addr, "/v1/jobs", &Json::obj(body)) {
        Ok(response) if response.status == 202 => response,
        Ok(response) if response.status == 503 => {
            obs.shed = true;
            return obs;
        }
        _ => {
            obs.submit_error = true;
            return obs;
        }
    };
    let Some(stream_path) = accepted
        .json()
        .ok()
        .and_then(|doc| doc.get("stream").and_then(Json::as_str).map(String::from))
    else {
        obs.submit_error = true;
        return obs;
    };
    // `/v1/jobs/{id}/stream` minus the suffix is the job resource path.
    let job_path = stream_path
        .strip_suffix("/stream")
        .unwrap_or(&stream_path)
        .to_string();

    let mut stream = None;
    for attempt in 0..STREAM_OPEN_ATTEMPTS {
        match client::open_stream_with_timeout(addr, &stream_path, DEFAULT_CLIENT_TIMEOUT) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) if attempt + 1 < STREAM_OPEN_ATTEMPTS => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => {}
        }
    }
    let Some(stream) = stream else {
        obs.stream_error = true;
        return obs;
    };

    let mut events_seen = 0usize;
    let mut cancel_sent = false;
    for event in stream {
        let Ok(event) = event else {
            obs.stream_error = true;
            break;
        };
        events_seen += 1;
        match event.get("event").and_then(Json::as_str) {
            Some("sample") => {
                obs.samples += 1;
                if obs.ttfs_ms.is_none() {
                    obs.ttfs_ms = Some(ms(t0.elapsed()));
                }
            }
            Some("done") => {
                obs.status = event.get("status").and_then(Json::as_str).map(String::from);
                obs.degraded = event
                    .get("degraded")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                obs.queue_wait_ms = event.get("queue_wait_ms").and_then(Json::as_f64);
                obs.e2e_ms = Some(ms(t0.elapsed()));
            }
            _ => {}
        }
        if let Some(after) = request.cancel_after_events {
            if !cancel_sent && events_seen >= after {
                cancel_sent = true;
                // Cooperative cancel; the stream still ends with `done`.
                let _ = client::delete(addr, &job_path);
            }
        }
        if let Some(stall) = request.stall {
            if events_seen.is_multiple_of(stall.every_events.max(1)) {
                std::thread::sleep(stall.pause);
            }
        }
    }
    if obs.status.is_none() && !obs.stream_error {
        // Stream drained without a terminal event — a server bug from the
        // client's point of view.
        obs.stream_error = true;
    }
    obs
}

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1_000.0
}

/// Scrapes `/v1/metrics` and `/v1/metrics/prometheus` after a run drains
/// and cross-checks the two: the exposition must validate and its job
/// lifecycle counters must agree with the JSON document.
pub fn scrape_server(addr: SocketAddr) -> io::Result<ServerSummary> {
    let metrics = client::get(addr, "/v1/metrics")?
        .json()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("metrics JSON: {e}")))?;
    let counter = |key: &str| metrics.get(key).and_then(Json::as_u64).unwrap_or(0);
    let nested = |outer: &str, key: &str| {
        metrics
            .get(outer)
            .and_then(|o| o.get(key))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    let mut summary = ServerSummary {
        jobs_submitted: counter("jobs_submitted"),
        jobs_completed: counter("jobs_completed"),
        jobs_cancelled: counter("jobs_cancelled"),
        jobs_rejected: counter("jobs_rejected"),
        shared_cache_savings: counter("shared_cache_savings"),
        history_hits: nested("history", "hits"),
        history_reused_walks: nested("history", "reused_walks"),
        history_reuse_savings: nested("history", "reuse_savings"),
        budget_refunded: counter("budget_refunded"),
        jobs_degraded: counter("jobs_degraded"),
        walkers_degraded: counter("walkers_degraded"),
        resilience_retries: nested("resilience", "retries"),
        resilience_recovered: nested("resilience", "recovered"),
        breaker_opened: nested("resilience", "breaker_opened"),
        breaker_fast_fails: nested("resilience", "breaker_fast_fails"),
        prometheus_series: 0,
        prometheus_consistent: false,
    };

    let scrape = client::get(addr, "/v1/metrics/prometheus")?;
    let text = String::from_utf8_lossy(&scrape.body).into_owned();
    if let Ok(stats) = wnw_telemetry::prometheus::validate(&text) {
        summary.prometheus_series = stats.series as u64;
        let prom = |name: &str| prometheus_value(&text, name);
        // Counters are monotone and the run has drained, so the scrape
        // (taken after the JSON document) must agree exactly.
        summary.prometheus_consistent = prom("wnw_jobs_submitted_total")
            == Some(summary.jobs_submitted)
            && prom("wnw_jobs_completed_total") == Some(summary.jobs_completed)
            && prom("wnw_jobs_cancelled_total") == Some(summary.jobs_cancelled);
    }
    Ok(summary)
}

/// The value of an unlabelled sample line, as an integer.
fn prometheus_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse::<f64>().ok().map(|v| v as u64)
    })
}

/// Runs `scenario` against the gateway at `addr`: plan → open-loop drive →
/// server scrape → SLO verdict, reduced to the scenario's report row.
pub fn run_scenario_on(addr: SocketAddr, scenario: &Scenario) -> io::Result<ScenarioReport> {
    let plan = scenario.plan();
    let outcome = run_plan(addr, &plan.requests);
    let server = scrape_server(addr)?;
    Ok(summarize(scenario, plan.fingerprint(), &outcome, server))
}

/// Reduces a run to its report row and SLO verdict.
pub fn summarize(
    scenario: &Scenario,
    plan_fingerprint: u64,
    outcome: &RunOutcome,
    server: ServerSummary,
) -> ScenarioReport {
    let obs = &outcome.observations;
    let offered = obs.len();
    let shed = obs.iter().filter(|o| o.shed).count();
    let submit_errors = obs.iter().filter(|o| o.submit_error).count();
    let submitted = offered - shed - submit_errors;
    let status_count = |label: &str| {
        obs.iter()
            .filter(|o| o.status.as_deref() == Some(label))
            .count()
    };
    let completed = status_count("completed");
    let cancelled = status_count("cancelled");
    let failed = submitted - completed - cancelled;
    let degraded = obs.iter().filter(|o| o.degraded).count();
    // A *lost* job is the resilience layer's cardinal sin: the gateway
    // accepted it, but its client never saw a terminal event. Shed and
    // submit-failed requests were never accepted, so they don't count.
    let lost = obs
        .iter()
        .filter(|o| !o.shed && !o.submit_error && o.status.is_none())
        .count();

    let collect = |f: fn(&Observation) -> Option<f64>| {
        LatencySummary::from_ms(obs.iter().filter_map(f).collect())
    };
    let queue_wait_ms = collect(|o| o.queue_wait_ms);
    let e2e_ms = collect(|o| o.e2e_ms);
    let ttfs_ms = collect(|o| o.ttfs_ms);

    let wall_clock_s = outcome.wall_clock.as_secs_f64();
    let throughput_rps = if wall_clock_s > 0.0 {
        completed as f64 / wall_clock_s
    } else {
        0.0
    };
    let shed_rate = if offered > 0 {
        shed as f64 / offered as f64
    } else {
        0.0
    };

    // Empty series mean the SLO's latency bounds were never exercised —
    // that is a failure (NaN never passes), not a vacuous pass.
    let p99_or_nan = |s: &LatencySummary| if s.count == 0 { f64::NAN } else { s.p99 };
    let slo = scenario.slo.evaluate(&Observed {
        throughput_rps,
        shed_rate,
        queue_wait_p99_ms: p99_or_nan(&queue_wait_ms),
        e2e_p99_ms: p99_or_nan(&e2e_ms),
        ttfs_p99_ms: p99_or_nan(&ttfs_ms),
        degraded_rate: if submitted > 0 {
            degraded as f64 / submitted as f64
        } else {
            0.0
        },
        lost_jobs: lost as u64,
    });

    ScenarioReport {
        scenario: scenario.name.to_string(),
        plan_fingerprint,
        offered,
        submitted,
        shed,
        submit_errors,
        completed,
        cancelled,
        failed,
        degraded,
        lost,
        wall_clock_s,
        throughput_rps,
        shed_rate,
        samples_delivered: obs.iter().map(|o| o.samples).sum(),
        queue_wait_ms,
        e2e_ms,
        ttfs_ms,
        server,
        slo,
    }
}
