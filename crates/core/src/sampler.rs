//! The assembled WALK-ESTIMATE sampler (Section 3, Algorithm WALK-ESTIMATE).
//!
//! Each draw:
//!
//! 1. **WALK** — run a short forward walk of `t` steps (walk-length policy,
//!    default `2·D̄ + 1`) from the starting node, yielding a candidate `v`;
//! 2. **ESTIMATE** — estimate `p_t(v)` with repeated backward walks, using
//!    the initial crawl and/or the history-weighted selection according to
//!    the configured variant;
//! 3. **Acceptance-rejection** — accept `v` with probability
//!    `β(v) = (q̃(v)/p̂_t(v)) · scale`, where `q̃` is the (unnormalised)
//!    target weight of the input walk and `scale` is bootstrapped from the
//!    ratios observed so far (10th percentile by default, Section 6.3.2).
//!
//! Rejected candidates simply trigger another short walk; the history of all
//! forward walks keeps improving the weighted backward sampling as the run
//! progresses.

use crate::config::{WalkEstimateConfig, WalkEstimateVariant};
use crate::estimate::crawl::InitialCrawl;
use crate::estimate::estimator::ProbabilityEstimator;
use crate::history::{
    FrozenHistory, HistoryHandle, HistoryView, ReuseCorrection, SharedWalkHistory,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wnw_access::{Result, SocialNetwork};
use wnw_graph::NodeId;
use wnw_mcmc::rejection::acceptance_probability;
use wnw_mcmc::sampler::{SampleRecord, Sampler};
use wnw_mcmc::transition::{RandomWalkKind, TargetDistribution};
use wnw_mcmc::walker;

/// The WALK-ESTIMATE sampler: a swap-in replacement for the traditional
/// sampler of the same [`RandomWalkKind`], producing samples of the same
/// target distribution at a lower query cost.
pub struct WalkEstimateSampler<N: SocialNetwork> {
    osn: N,
    kind: RandomWalkKind,
    config: WalkEstimateConfig,
    start: NodeId,
    walk_length: usize,
    estimator: ProbabilityEstimator,
    crawl: Option<InitialCrawl>,
    history: HistoryHandle,
    observed_ratios: Vec<f64>,
    rng: StdRng,
    /// Total forward walks performed (accepted + rejected candidates).
    forward_walks: u64,
}

impl<N: SocialNetwork> WalkEstimateSampler<N> {
    /// Creates a sampler starting from `osn.seed_node()` with the walk length
    /// resolved from the policy's assumed diameter bound.
    pub fn new(osn: N, kind: RandomWalkKind, config: WalkEstimateConfig, seed: u64) -> Self {
        let start = osn.seed_node();
        let walk_length = config.walk_length.resolve(None);
        let estimator = ProbabilityEstimator::from_config(kind, &config);
        WalkEstimateSampler {
            osn,
            kind,
            config,
            start,
            walk_length,
            estimator,
            crawl: None,
            history: HistoryHandle::default(),
            observed_ratios: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            forward_walks: 0,
        }
    }

    /// Overrides the starting node (also the crawl centre).
    pub fn with_start(mut self, start: NodeId) -> Self {
        self.start = start;
        self.crawl = None;
        self
    }

    /// Plugs this sampler into a pool-shared walk history: its forward walks
    /// are published to `shared` on [`flush_history`](Self::flush_history),
    /// and its weighted backward sampling reads everyone's published walks
    /// (plus its own unpublished ones). Used by the concurrent engine's
    /// cooperative mode; the estimator stays unbiased under any history, so
    /// this only changes variance, never correctness.
    pub fn with_shared_history(mut self, shared: Arc<SharedWalkHistory>) -> Self {
        self.history = HistoryHandle::shared(shared);
        self
    }

    /// Like [`with_shared_history`](Self::with_shared_history), additionally
    /// seeding reads with a frozen cross-job `base` (walks published by
    /// completed prior jobs, weighted by `correction`). The base is
    /// read-only: this sampler's own walks still flush to `shared` only, so
    /// reused history is never republished. Unbiasedness is unaffected —
    /// the selection distribution keeps its ε floor — richer history only
    /// focuses backward walks better.
    pub fn with_seeded_history(
        mut self,
        base: Arc<FrozenHistory>,
        correction: ReuseCorrection,
        shared: Arc<SharedWalkHistory>,
    ) -> Self {
        self.history = HistoryHandle::seeded(base, correction, shared);
        self
    }

    /// Publishes pending forward walks to the shared history, if any. The
    /// engine calls this at its deterministic round barriers; for samplers
    /// with a private history it is a no-op.
    pub fn flush_history(&mut self) {
        self.history.flush();
    }

    /// Re-resolves the walk length with a concrete diameter estimate
    /// (e.g. `7` for the paper's Google Plus experiments).
    pub fn with_diameter_estimate(mut self, diameter: usize) -> Self {
        self.walk_length = self.config.walk_length.resolve(Some(diameter));
        self
    }

    /// The forward walk length `t` in use.
    pub fn walk_length(&self) -> usize {
        self.walk_length
    }

    /// Number of forward walks (candidate draws) performed so far.
    pub fn forward_walks(&self) -> u64 {
        self.forward_walks
    }

    /// The wrapped access layer.
    pub fn network(&self) -> &N {
        &self.osn
    }

    /// The configured variant (WE / WE-None / WE-Crawl / WE-Weighted).
    pub fn variant(&self) -> WalkEstimateVariant {
        self.config.variant
    }

    fn ensure_crawl(&mut self) -> Result<()> {
        if self.config.variant.uses_crawl() && self.crawl.is_none() && self.config.crawl_depth > 0 {
            self.crawl = Some(InitialCrawl::build(
                &self.osn,
                self.kind,
                self.start,
                self.config.crawl_depth,
            )?);
        }
        Ok(())
    }
}

impl<N: SocialNetwork> Sampler for WalkEstimateSampler<N> {
    fn draw(&mut self) -> Result<SampleRecord> {
        self.ensure_crawl()?;
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            // WALK: a short forward walk to a candidate node.
            let walk = walker::random_walk(
                &self.osn,
                self.kind,
                self.start,
                self.walk_length,
                &mut self.rng,
            )?;
            self.forward_walks += 1;
            self.history.record_walk(&walk.path);
            let candidate = walk.current();

            // ESTIMATE: the candidate's sampling probability p_t(candidate).
            let history_view = self.history.view();
            let history: Option<&dyn HistoryView> = if self.config.variant.uses_weighted_sampling()
            {
                Some(&history_view)
            } else {
                None
            };
            let estimate = self.estimator.estimate_single(
                &self.osn,
                candidate,
                self.start,
                self.walk_length,
                self.crawl.as_ref(),
                history,
                &mut self.rng,
            )?;

            // Rejection sampling toward the input walk's target distribution.
            let degree = self.osn.degree(candidate)?;
            let target_weight = self.kind.target().weight(degree);
            let probability = estimate.probability;
            // The percentile bootstrap re-sorts the observed ratios on every
            // draw; once a few thousand ratios have been collected the
            // percentile is stable, so stop growing the vector (keeps a long
            // sampling run linear instead of quadratic in the sample count).
            const MAX_OBSERVED_RATIOS: usize = 4096;
            if probability > 0.0
                && target_weight > 0.0
                && self.observed_ratios.len() < MAX_OBSERVED_RATIOS
            {
                self.observed_ratios.push(probability / target_weight);
            }
            let scale = self.config.scaling_factor.resolve(&self.observed_ratios);
            let accept = match scale {
                // Until any ratio has been observed there is nothing to
                // correct against; accept the first candidate.
                None => true,
                Some(scale) => {
                    let beta = acceptance_probability(probability, target_weight, scale);
                    self.rng.gen::<f64>() < beta
                }
            };
            if accept || attempts >= self.config.max_attempts_per_sample {
                return Ok(SampleRecord {
                    node: candidate,
                    query_cost: self.osn.query_cost(),
                    attempts,
                });
            }
        }
    }

    fn target(&self) -> TargetDistribution {
        self.kind.target()
    }

    fn name(&self) -> String {
        format!("{}({})", self.config.variant.label(), self.kind.name())
    }

    fn flush_shared_state(&mut self) {
        self.flush_history();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::WalkLengthPolicy;
    use wnw_access::{QueryBudget, SimulatedOsn};
    use wnw_analytics::bias::EmpiricalDistribution;
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_graph::metrics;
    use wnw_mcmc::collect_samples;
    use wnw_mcmc::distribution::TransitionMatrix;

    fn osn_with_graph(n: usize, seed: u64) -> (SimulatedOsn, wnw_graph::Graph) {
        let graph = barabasi_albert(n, 3, seed).unwrap();
        (SimulatedOsn::new(graph.clone()), graph)
    }

    #[test]
    fn draws_valid_samples_and_tracks_cost() {
        let (osn, graph) = osn_with_graph(300, 1);
        let diameter = metrics::exact_diameter(&graph).unwrap();
        let mut sampler = WalkEstimateSampler::new(
            osn.clone(),
            RandomWalkKind::Simple,
            WalkEstimateConfig::default(),
            42,
        )
        .with_diameter_estimate(diameter);
        assert_eq!(sampler.walk_length(), 2 * diameter + 1);
        let run = collect_samples(&mut sampler, 10).unwrap();
        assert_eq!(run.len(), 10);
        for s in &run.samples {
            assert!(graph.contains(s.node));
            assert!(s.attempts >= 1);
        }
        for w in run.samples.windows(2) {
            assert!(w[1].query_cost >= w[0].query_cost);
        }
        assert!(sampler.forward_walks() >= 10);
        assert_eq!(sampler.name(), "WE(SRW)");
        assert_eq!(sampler.target(), TargetDistribution::DegreeProportional);
    }

    #[test]
    fn variant_labels_and_targets() {
        let (osn, _) = osn_with_graph(100, 2);
        let sampler = WalkEstimateSampler::new(
            osn.clone(),
            RandomWalkKind::MetropolisHastings,
            WalkEstimateConfig::default().with_variant(WalkEstimateVariant::CrawlOnly),
            1,
        );
        assert_eq!(sampler.name(), "WE-Crawl(MHRW)");
        assert_eq!(sampler.target(), TargetDistribution::Uniform);
        assert_eq!(sampler.variant(), WalkEstimateVariant::CrawlOnly);
    }

    #[test]
    fn budget_exhaustion_stops_cleanly() {
        let graph = barabasi_albert(300, 3, 3).unwrap();
        let osn = SimulatedOsn::builder(graph).budget(QueryBudget(80)).build();
        let mut sampler = WalkEstimateSampler::new(
            osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default(),
            5,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 1000).unwrap();
        assert!(run.budget_exhausted);
        assert!(run.final_query_cost() <= 80);
    }

    #[test]
    fn uniform_target_correction_beats_uncorrected_short_walk() {
        // WE with MHRW input targets the uniform distribution. Compare the
        // total-variation distance to uniform of (a) WE samples and (b) the
        // raw short-walk distribution it corrects — the correction must help.
        let (osn, graph) = osn_with_graph(40, 7);
        let n = graph.node_count();
        // Deliberately *under*-mixed walk length: at 2·D̄ + 1 the raw walk on
        // a 40-node graph is already so close to uniform that the empirical
        // TV of any sampler is dominated by sampling noise (~0.08 for 1500
        // samples over 40 nodes) and the comparison is meaningless. At t = 3
        // the raw distribution is visibly biased, which is exactly the regime
        // the acceptance-rejection correction exists for.
        let walk_length = 3;
        let config = WalkEstimateConfig {
            // Use a generous estimation budget so the acceptance probabilities
            // are driven by the correction, not by estimator noise.
            base_backward_repetitions: 4,
            refinement_backward_repetitions: 2,
            ..WalkEstimateConfig::default()
        }
        .with_walk_length(WalkLengthPolicy::Fixed(walk_length))
        .with_crawl_depth(2);
        let mut sampler =
            WalkEstimateSampler::new(osn, RandomWalkKind::MetropolisHastings, config, 11);
        let run = collect_samples(&mut sampler, 1500).unwrap();
        assert_eq!(run.len(), 1500);
        let empirical = EmpiricalDistribution::from_samples(n, &run.nodes());
        let uniform = vec![1.0 / n as f64; n];
        let we_tv = empirical.total_variation_distance(&uniform);

        // The raw (uncorrected) sampling distribution of the short MHRW walk.
        let raw = TransitionMatrix::new(&graph, RandomWalkKind::MetropolisHastings)
            .distribution_after(NodeId(0), walk_length);
        let raw_tv: f64 = 0.5
            * raw
                .iter()
                .zip(&uniform)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();

        assert!(
            we_tv < raw_tv,
            "WE should be closer to uniform than the uncorrected walk: {we_tv} vs {raw_tv}"
        );
    }

    #[test]
    fn rejection_is_actually_exercised() {
        let (osn, _) = osn_with_graph(200, 13);
        let config = WalkEstimateConfig::default();
        let mut sampler =
            WalkEstimateSampler::new(osn, RandomWalkKind::MetropolisHastings, config, 17)
                .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 60).unwrap();
        let total_attempts: u32 = run.samples.iter().map(|s| s.attempts).sum();
        assert!(
            total_attempts > run.len() as u32,
            "at least some candidates should be rejected (attempts {total_attempts})"
        );
    }

    #[test]
    fn max_attempts_guard_terminates_draws() {
        // An absurdly high manual scaling factor forces near-certain
        // rejection; the guard must still terminate each draw.
        let (osn, _) = osn_with_graph(100, 19);
        let config = WalkEstimateConfig {
            max_attempts_per_sample: 3,
            scaling_factor: wnw_mcmc::ScalingFactorPolicy::Manual(1e-30),
            ..WalkEstimateConfig::default()
        };
        let mut sampler = WalkEstimateSampler::new(osn, RandomWalkKind::Simple, config, 23)
            .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 5).unwrap();
        assert_eq!(run.len(), 5);
        assert!(run.samples.iter().all(|s| s.attempts <= 3));
    }

    #[test]
    fn we_none_variant_skips_crawl() {
        let (osn, _) = osn_with_graph(150, 29);
        let before = osn.query_cost();
        assert_eq!(before, 0);
        let config = WalkEstimateConfig::default().with_variant(WalkEstimateVariant::None);
        let mut sampler = WalkEstimateSampler::new(osn.clone(), RandomWalkKind::Simple, config, 31)
            .with_diameter_estimate(4);
        let _ = collect_samples(&mut sampler, 2).unwrap();
        // No 2-hop crawl of the (high-degree) start node: the query cost
        // should stay modest. A crawl of a BA hub would touch a large share
        // of the 150-node graph immediately.
        assert!(sampler.name().starts_with("WE-None"));
    }
}
