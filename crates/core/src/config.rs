//! Configuration of the WALK-ESTIMATE sampler.

use crate::walk::WalkLengthPolicy;
use wnw_mcmc::ScalingFactorPolicy;

/// Which of the paper's variance-reduction heuristics are enabled
/// (the ablation of Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalkEstimateVariant {
    /// Plain UNBIASED-ESTIMATE: no initial crawling, no weighted sampling
    /// ("WE-None").
    None,
    /// Initial crawling only ("WE-Crawl").
    CrawlOnly,
    /// Weighted backward sampling only ("WE-Weighted").
    WeightedOnly,
    /// Both heuristics — the full algorithm ("WE").
    #[default]
    Full,
}

impl WalkEstimateVariant {
    /// Whether the h-hop initial crawl is performed.
    pub fn uses_crawl(&self) -> bool {
        matches!(
            self,
            WalkEstimateVariant::CrawlOnly | WalkEstimateVariant::Full
        )
    }

    /// Whether backward steps use history-weighted sampling (WS-BW).
    pub fn uses_weighted_sampling(&self) -> bool {
        matches!(
            self,
            WalkEstimateVariant::WeightedOnly | WalkEstimateVariant::Full
        )
    }

    /// The label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            WalkEstimateVariant::None => "WE-None",
            WalkEstimateVariant::CrawlOnly => "WE-Crawl",
            WalkEstimateVariant::WeightedOnly => "WE-Weighted",
            WalkEstimateVariant::Full => "WE",
        }
    }
}

/// Full configuration of a [`WalkEstimateSampler`](crate::WalkEstimateSampler).
///
/// The defaults follow the paper's experimental setup (Section 7.1): walk
/// length `2·D̄ + 1` with the diameter conservatively assumed to be at most
/// 10, initial-crawling depth `h = 2`, weighted-sampling floor `ε = 0.1`,
/// and the 10th-percentile bootstrap for the rejection-sampling scaling
/// factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkEstimateConfig {
    /// How the forward walk length `t` is chosen.
    pub walk_length: WalkLengthPolicy,
    /// Depth of the initial crawl around the starting node (`h`, "a small
    /// number like 2 or 3").
    pub crawl_depth: usize,
    /// Minimum-probability floor `ε` of the weighted backward sampling
    /// (Algorithm 2).
    pub weighted_epsilon: f64,
    /// Number of independent backward estimates averaged per candidate
    /// before variance-based refinement.
    pub base_backward_repetitions: usize,
    /// Extra backward estimates distributed across candidates in proportion
    /// to their estimation variance (Algorithm 3's "remaining budget").
    pub refinement_backward_repetitions: usize,
    /// How the rejection-sampling scaling factor is resolved.
    pub scaling_factor: ScalingFactorPolicy,
    /// Which variance-reduction heuristics are active.
    pub variant: WalkEstimateVariant,
    /// Safety valve: after this many rejected candidates the current
    /// candidate is accepted unconditionally, so a badly estimated scaling
    /// factor cannot stall a draw forever. The paper does not need this on
    /// its datasets; it only matters on adversarial graphs (e.g. barbells).
    pub max_attempts_per_sample: u32,
}

impl Default for WalkEstimateConfig {
    fn default() -> Self {
        WalkEstimateConfig {
            walk_length: WalkLengthPolicy::default(),
            crawl_depth: 2,
            weighted_epsilon: 0.1,
            base_backward_repetitions: 3,
            refinement_backward_repetitions: 2,
            scaling_factor: ScalingFactorPolicy::Percentile(10.0),
            variant: WalkEstimateVariant::Full,
            max_attempts_per_sample: 64,
        }
    }
}

impl WalkEstimateConfig {
    /// Returns a copy with a different variant (used by the Figure 9
    /// ablation).
    pub fn with_variant(mut self, variant: WalkEstimateVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Returns a copy with a different walk-length policy.
    pub fn with_walk_length(mut self, policy: WalkLengthPolicy) -> Self {
        self.walk_length = policy;
        self
    }

    /// Returns a copy with a different crawl depth.
    pub fn with_crawl_depth(mut self, h: usize) -> Self {
        self.crawl_depth = h;
        self
    }

    /// Returns a copy with a different scaling-factor policy.
    pub fn with_scaling_factor(mut self, policy: ScalingFactorPolicy) -> Self {
        self.scaling_factor = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_flags() {
        assert!(!WalkEstimateVariant::None.uses_crawl());
        assert!(!WalkEstimateVariant::None.uses_weighted_sampling());
        assert!(WalkEstimateVariant::CrawlOnly.uses_crawl());
        assert!(!WalkEstimateVariant::CrawlOnly.uses_weighted_sampling());
        assert!(!WalkEstimateVariant::WeightedOnly.uses_crawl());
        assert!(WalkEstimateVariant::WeightedOnly.uses_weighted_sampling());
        assert!(WalkEstimateVariant::Full.uses_crawl());
        assert!(WalkEstimateVariant::Full.uses_weighted_sampling());
        assert_eq!(WalkEstimateVariant::Full.label(), "WE");
        assert_eq!(WalkEstimateVariant::None.label(), "WE-None");
    }

    #[test]
    fn default_config_matches_paper_settings() {
        let c = WalkEstimateConfig::default();
        assert_eq!(c.crawl_depth, 2);
        assert!((c.weighted_epsilon - 0.1).abs() < 1e-12);
        assert_eq!(c.scaling_factor, ScalingFactorPolicy::Percentile(10.0));
        assert_eq!(c.variant, WalkEstimateVariant::Full);
    }

    #[test]
    fn builder_style_overrides() {
        let c = WalkEstimateConfig::default()
            .with_variant(WalkEstimateVariant::CrawlOnly)
            .with_crawl_depth(1)
            .with_scaling_factor(ScalingFactorPolicy::ExactMin);
        assert_eq!(c.variant, WalkEstimateVariant::CrawlOnly);
        assert_eq!(c.crawl_depth, 1);
        assert_eq!(c.scaling_factor, ScalingFactorPolicy::ExactMin);
    }
}
