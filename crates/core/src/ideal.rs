//! IDEAL-WALK: the Theorem 1 cost model and the Section 4.2 case study.
//!
//! IDEAL-WALK is the idealised sampler used to justify WALK-ESTIMATE: assume
//! an oracle for the exact sampling probability `p_t(v)` and knowledge of a
//! few global parameters (spectral gap `λ`, maximum degree `d_max`), walk
//! exactly `t` steps, and correct with rejection sampling. Theorem 1 shows
//! the expected query cost per sample of this scheme is always below that of
//! the input random walk, with the optimum at
//!
//! ```text
//! t_opt = −log(−(1/Γ)·W(−Γ/(e·d_max))·d_max) / log(1 − λ)
//! ```
//!
//! (`W` = Lambert W, lower branch on the relevant domain). Two views are
//! provided:
//!
//! * [`IdealWalkAnalysis`] — the closed-form worst-case model of Theorem 1,
//!   parameterised by `(λ, d_max, Γ)`;
//! * [`exact_cost_per_sample`] / [`exact_cost_curve`] — the exact cost on a
//!   concrete small graph, obtained by evolving the true distribution and
//!   pricing rejection sampling with the true acceptance probability. This is
//!   what Figures 2–3 plot (the paper computes them "numerically over a
//!   number of theoretical graph models").

use wnw_analytics::numeric::lambert_w_minus1;
use wnw_graph::{Graph, NodeId};
use wnw_mcmc::distribution::TransitionMatrix;
use wnw_mcmc::transition::{RandomWalkKind, TargetDistribution};

/// Closed-form Theorem 1 cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealWalkAnalysis {
    /// Spectral gap `λ = 1 − s₂` of the input walk's transition matrix.
    pub lambda: f64,
    /// Maximum node degree `d_max`.
    pub d_max: f64,
    /// The `Γ` parameter of Theorem 1 — the scale against which the ℓ∞
    /// convergence error `(1 − λ)^t · d_max` must shrink before rejection
    /// sampling becomes viable. Bias requirements `Δ` must satisfy `Δ < Γ`.
    pub gamma: f64,
}

impl IdealWalkAnalysis {
    /// Builds the model from explicit parameters.
    pub fn new(lambda: f64, d_max: f64, gamma: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda < 1.0,
            "spectral gap must be in (0, 1), got {lambda}"
        );
        assert!(d_max >= 1.0, "maximum degree must be at least 1");
        assert!(gamma > 0.0, "gamma must be positive");
        IdealWalkAnalysis {
            lambda,
            d_max,
            gamma,
        }
    }

    /// Convenience constructor measuring `λ` and `d_max` from a graph and
    /// setting `Γ = 1` (the natural scale once degrees are measured in
    /// multiples of the stationary floor; any positive constant preserves the
    /// comparison because both cost formulas share it).
    pub fn from_graph(graph: &Graph, kind: RandomWalkKind) -> Self {
        let info = wnw_mcmc::spectral::spectral_gap(graph, kind, 1e-9);
        // Guard against a numerically zero gap (e.g. disconnected or
        // pathological graphs) so the logarithms below stay finite.
        let lambda = info.gap.clamp(1e-9, 1.0 - 1e-9);
        IdealWalkAnalysis::new(lambda, graph.max_degree().max(1) as f64, 1.0)
    }

    /// The optimal walk length `t_opt` of Theorem 1 (Equation 7).
    pub fn optimal_walk_length(&self) -> f64 {
        let arg = -self.gamma / (std::f64::consts::E * self.d_max);
        let w = lambert_w_minus1(arg);
        let inner = -(1.0 / self.gamma) * w * self.d_max;
        if inner <= 0.0 {
            return f64::NAN;
        }
        -(inner.ln()) / (1.0 - self.lambda).ln()
    }

    /// Worst-case expected query cost per sample of IDEAL-WALK when it walks
    /// `t` steps and must guarantee an ℓ∞ bias of `delta` (Equation 12's
    /// objective `t·(Γ − Δ)/(Γ − (1 − λ)^t·d_max)`), `f64::INFINITY` while the
    /// convergence error still exceeds `Γ`.
    pub fn cost_at(&self, t: f64, delta: f64) -> f64 {
        let residual = (1.0 - self.lambda).powf(t) * self.d_max;
        let denom = self.gamma - residual;
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        t * (self.gamma - delta) / denom
    }

    /// Cost at the optimal walk length.
    pub fn optimal_cost(&self, delta: f64) -> f64 {
        let t = self.optimal_walk_length();
        if t.is_nan() {
            return f64::INFINITY;
        }
        // The optimum of the continuous objective; evaluate nearby integer
        // lengths too so the reported cost corresponds to an executable walk.
        let candidates = [t, t.floor().max(1.0), t.ceil()];
        candidates
            .iter()
            .map(|&c| self.cost_at(c, delta))
            .fold(f64::INFINITY, f64::min)
    }

    /// Expected query cost per sample of the traditional input random walk to
    /// reach ℓ∞ bias `delta` (Equation 13): `log(Δ/d_max)/log(1 − λ)`.
    pub fn traditional_cost(&self, delta: f64) -> f64 {
        assert!(delta > 0.0, "bias requirement must be positive");
        (delta / self.d_max).ln() / (1.0 - self.lambda).ln()
    }

    /// Query-cost ratio `c / c_RW` at the optimal walk length; values below 1
    /// mean IDEAL-WALK wins. Theorem 1 proves this is < 1 whenever
    /// `0 < Δ < Γ`.
    pub fn cost_ratio(&self, delta: f64) -> f64 {
        self.optimal_cost(delta) / self.traditional_cost(delta)
    }

    /// Query-cost saving `1 − c/c_RW` (the y-axis of Figure 3).
    pub fn saving(&self, delta: f64) -> f64 {
        1.0 - self.cost_ratio(delta)
    }
}

/// Exact expected query cost per sample of IDEAL-WALK on a concrete graph:
/// walk exactly `t` steps from `start` under `kind`, then correct to the
/// target distribution with rejection sampling using the *exact* scaling
/// factor `min_v p_t(v)/q(v)`.
///
/// The overall acceptance probability of rejection sampling with the exact
/// scaling factor is precisely that minimum ratio (mass-weighted average of
/// `β`), so the expected cost per accepted sample is `t / min_v p_t(v)/q(v)`.
/// It is infinite until the walk is long enough to give every node positive
/// probability (i.e. `t ≥` eccentricity of the start node).
pub fn exact_cost_per_sample(
    graph: &Graph,
    kind: RandomWalkKind,
    start: NodeId,
    t: usize,
    target: TargetDistribution,
) -> f64 {
    exact_cost_per_sample_lazy(graph, kind, start, t, target, 0.0)
}

/// [`exact_cost_per_sample`] for the lazy walk `(1 − α)T + αI`.
///
/// Bipartite case-study graphs (hypercubes, balanced trees) need `α > 0` for
/// any walk length to cover all nodes — the paper's Footnote 1 assumption.
pub fn exact_cost_per_sample_lazy(
    graph: &Graph,
    kind: RandomWalkKind,
    start: NodeId,
    t: usize,
    target: TargetDistribution,
    laziness: f64,
) -> f64 {
    let matrix = build_matrix(graph, kind, laziness);
    let p = matrix.distribution_after(start, t);
    exact_cost_from_distribution(graph, &p, t, target)
}

/// The full cost curve `c(t)` for `t = 1..=max_t` (Figure 2): one exact
/// distribution evolution, pricing every prefix.
pub fn exact_cost_curve(
    graph: &Graph,
    kind: RandomWalkKind,
    start: NodeId,
    max_t: usize,
    target: TargetDistribution,
) -> Vec<f64> {
    exact_cost_curve_lazy(graph, kind, start, max_t, target, 0.0)
}

/// [`exact_cost_curve`] for the lazy walk `(1 − α)T + αI`.
pub fn exact_cost_curve_lazy(
    graph: &Graph,
    kind: RandomWalkKind,
    start: NodeId,
    max_t: usize,
    target: TargetDistribution,
    laziness: f64,
) -> Vec<f64> {
    let matrix = build_matrix(graph, kind, laziness);
    let trajectory = matrix.distribution_trajectory(start, max_t);
    trajectory
        .iter()
        .enumerate()
        .skip(1)
        .map(|(t, p)| exact_cost_from_distribution(graph, p, t, target))
        .collect()
}

fn build_matrix(graph: &Graph, kind: RandomWalkKind, laziness: f64) -> TransitionMatrix {
    let matrix = TransitionMatrix::new(graph, kind);
    if laziness > 0.0 {
        matrix.lazy(laziness)
    } else {
        matrix
    }
}

fn exact_cost_from_distribution(
    graph: &Graph,
    p: &[f64],
    t: usize,
    target: TargetDistribution,
) -> f64 {
    // Unnormalised target weights; the acceptance probability needs the
    // normalised q, so normalise here (the harness knows the full graph).
    let weights: Vec<f64> = graph
        .nodes()
        .map(|v| target.weight(graph.degree(v)))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    if total_weight <= 0.0 {
        return f64::INFINITY;
    }
    let min_ratio = p
        .iter()
        .zip(&weights)
        .map(|(&pv, &w)| {
            if w > 0.0 {
                pv / (w / total_weight)
            } else {
                f64::INFINITY
            }
        })
        .fold(f64::INFINITY, f64::min);
    if min_ratio <= 0.0 {
        return f64::INFINITY;
    }
    t as f64 / min_ratio
}

/// The walk length minimising [`exact_cost_per_sample`] over `1..=max_t`,
/// together with that minimal cost. Returns `None` if every length up to
/// `max_t` has infinite cost (start node cannot reach the whole graph).
pub fn exact_optimal_walk_length(
    graph: &Graph,
    kind: RandomWalkKind,
    start: NodeId,
    max_t: usize,
    target: TargetDistribution,
) -> Option<(usize, f64)> {
    exact_optimal_walk_length_lazy(graph, kind, start, max_t, target, 0.0)
}

/// [`exact_optimal_walk_length`] for the lazy walk `(1 − α)T + αI`.
pub fn exact_optimal_walk_length_lazy(
    graph: &Graph,
    kind: RandomWalkKind,
    start: NodeId,
    max_t: usize,
    target: TargetDistribution,
    laziness: f64,
) -> Option<(usize, f64)> {
    exact_cost_curve_lazy(graph, kind, start, max_t, target, laziness)
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i + 1, c))
        .filter(|(_, c)| c.is_finite())
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::classic::{balanced_binary_tree, barbell, cycle, hypercube};
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_graph::metrics;

    #[test]
    fn theorem1_topt_is_positive_and_finite() {
        let a = IdealWalkAnalysis::new(0.3, 50.0, 1.0);
        let t = a.optimal_walk_length();
        assert!(t.is_finite() && t > 0.0, "t_opt = {t}");
    }

    #[test]
    fn theorem1_optimum_beats_neighbors() {
        let a = IdealWalkAnalysis::new(0.2, 30.0, 1.0);
        let t = a.optimal_walk_length();
        let delta = 0.05;
        let at_opt = a.cost_at(t, delta);
        assert!(at_opt <= a.cost_at(t + 2.0, delta) + 1e-9);
        assert!(at_opt <= a.cost_at((t - 2.0).max(1.0), delta) + 1e-9);
    }

    #[test]
    fn topt_is_independent_of_delta() {
        // Theorem 1 observes t_opt does not depend on Δ.
        let a = IdealWalkAnalysis::new(0.15, 100.0, 1.0);
        let t = a.optimal_walk_length();
        // cost_at is minimised at the same t for different Δ values.
        for &delta in &[0.5, 0.1, 0.01] {
            let c_opt = a.cost_at(t, delta);
            assert!(c_opt <= a.cost_at(t * 1.3, delta) + 1e-9, "delta {delta}");
            assert!(
                c_opt <= a.cost_at((t * 0.7).max(1.0), delta) + 1e-9,
                "delta {delta}"
            );
        }
    }

    #[test]
    fn ideal_walk_always_beats_traditional_for_small_delta() {
        for (lambda, dmax) in [(0.4, 10.0), (0.1, 200.0), (0.02, 1000.0)] {
            let a = IdealWalkAnalysis::new(lambda, dmax, 1.0);
            for &delta in &[0.5, 0.1, 0.01, 1e-4] {
                let ratio = a.cost_ratio(delta);
                assert!(
                    ratio < 1.0,
                    "λ={lambda} dmax={dmax} Δ={delta}: ratio {ratio} should be < 1"
                );
                assert!(a.saving(delta) > 0.0);
            }
        }
    }

    #[test]
    fn smaller_delta_increases_both_costs_but_widens_the_gap() {
        let a = IdealWalkAnalysis::new(0.2, 50.0, 1.0);
        let loose = a.traditional_cost(0.1);
        let tight = a.traditional_cost(0.001);
        assert!(tight > loose);
        // The saving grows as Δ shrinks (Theorem 1's discussion).
        assert!(a.saving(0.001) >= a.saving(0.1) - 1e-9);
    }

    #[test]
    #[should_panic(expected = "spectral gap")]
    fn invalid_lambda_panics() {
        let _ = IdealWalkAnalysis::new(1.5, 10.0, 1.0);
    }

    #[test]
    fn from_graph_measures_parameters() {
        let g = barabasi_albert(60, 3, 5).unwrap();
        let a = IdealWalkAnalysis::from_graph(&g, RandomWalkKind::Simple);
        assert!(a.lambda > 0.0 && a.lambda < 1.0);
        assert_eq!(a.d_max, g.max_degree() as f64);
    }

    #[test]
    fn exact_cost_is_infinite_below_eccentricity() {
        let g = cycle(11); // eccentricity of any node is 5
        let cost4 = exact_cost_per_sample(
            &g,
            RandomWalkKind::Simple,
            NodeId(0),
            4,
            TargetDistribution::Uniform,
        );
        assert!(cost4.is_infinite());
        // A lazy-ish longer walk eventually has finite cost. Note the plain
        // cycle under SRW is periodic, so use MHRW (which self-loops on a
        // cycle only via rejection... it does not). Use length >= 6 with SRW:
        // parity still blocks half the nodes on an odd cycle? 11 is odd, so
        // all nodes become reachable with both parities mixing; length 10 is
        // comfortably finite.
        let cost10 = exact_cost_per_sample(
            &g,
            RandomWalkKind::Simple,
            NodeId(0),
            10,
            TargetDistribution::Uniform,
        );
        assert!(cost10.is_finite());
    }

    #[test]
    fn exact_cost_curve_dips_then_rises_slowly() {
        // Figure 2's qualitative shape: sharp drop to a minimum, slow rise.
        // Hypercubes are bipartite, so use the lazy walk the paper's footnote
        // assumes.
        let g = hypercube(5); // 32 nodes, matches the paper's case study size
        let laziness = 0.2;
        let curve = exact_cost_curve_lazy(
            &g,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            60,
            TargetDistribution::Uniform,
            laziness,
        );
        let (t_opt, c_opt) = exact_optimal_walk_length_lazy(
            &g,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            60,
            TargetDistribution::Uniform,
            laziness,
        )
        .unwrap();
        assert!(c_opt.is_finite());
        assert!(
            t_opt >= 5,
            "optimum should be at least the diameter, got {t_opt}"
        );
        // The curve at twice the optimum is worse than at the optimum, but
        // not catastrophically (slow increase).
        let later = curve[(2 * t_opt - 1).min(curve.len() - 1)];
        assert!(later >= c_opt);
        assert!(later < 10.0 * c_opt);
    }

    #[test]
    fn plain_walk_on_bipartite_graph_never_covers_all_nodes() {
        let g = hypercube(3);
        assert!(exact_optimal_walk_length(
            &g,
            RandomWalkKind::Simple,
            NodeId(0),
            40,
            TargetDistribution::Uniform,
        )
        .is_none());
    }

    #[test]
    fn larger_diameter_graphs_need_longer_walks() {
        // Paper Section 4.2: the cycle (diameter ⌊n/2⌋) has a much longer
        // optimal walk length than the low-diameter hypercube.
        let cycle_graph = cycle(31); // diameter 15, odd => aperiodic
        let cube = hypercube(5); // 32 nodes, diameter 5, bipartite
        let laziness = 0.2;
        let (t_cycle, _) = exact_optimal_walk_length_lazy(
            &cycle_graph,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            300,
            TargetDistribution::Uniform,
            laziness,
        )
        .unwrap();
        let (t_cube, _) = exact_optimal_walk_length_lazy(
            &cube,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            300,
            TargetDistribution::Uniform,
            laziness,
        )
        .unwrap();
        assert!(
            t_cycle > t_cube,
            "cycle optimum {t_cycle} should exceed hypercube optimum {t_cube}"
        );
        assert!(t_cycle >= metrics::exact_diameter(&cycle_graph).unwrap());
        assert!(t_cube >= metrics::exact_diameter(&cube).unwrap());

        // The balanced tree and barbell graphs still have finite optima
        // under the lazy walk (they appear in the Figure 2 case study).
        let tree = balanced_binary_tree(3);
        let barbell_graph = barbell(15);
        assert!(exact_optimal_walk_length_lazy(
            &tree,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            300,
            TargetDistribution::Uniform,
            laziness,
        )
        .is_some());
        assert!(exact_optimal_walk_length_lazy(
            &barbell_graph,
            RandomWalkKind::MetropolisHastings,
            NodeId(0),
            300,
            TargetDistribution::Uniform,
            laziness,
        )
        .is_some());
    }

    #[test]
    fn degree_proportional_target_is_cheaper_for_srw() {
        // Correcting SRW to its own stationary distribution needs less
        // rejection than correcting it to uniform.
        let g = barabasi_albert(40, 3, 9).unwrap();
        let to_uniform = exact_cost_per_sample(
            &g,
            RandomWalkKind::Simple,
            NodeId(0),
            12,
            TargetDistribution::Uniform,
        );
        let to_degree = exact_cost_per_sample(
            &g,
            RandomWalkKind::Simple,
            NodeId(0),
            12,
            TargetDistribution::DegreeProportional,
        );
        assert!(to_degree <= to_uniform);
    }
}
