//! The WALK component (Section 4.3): choosing the short-walk length.
//!
//! The walk must be at least as long as the graph diameter for every node to
//! have a positive sampling probability, but an overly long walk wastes the
//! savings. The paper's practical rule is to be *conservative rather than
//! aggressive*: walk `2·D̄ + 1` steps where `D̄` is an upper bound on the
//! diameter (commonly taken to be 8–10 for real online social networks, 7
//! for their Google Plus crawl).

/// How the forward walk length `t` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkLengthPolicy {
    /// A fixed number of steps.
    Fixed(usize),
    /// `multiplier · D̄ + offset`, where `D̄` is the (estimated or assumed)
    /// diameter upper bound. The paper uses `2·D̄ + 1`.
    DiameterMultiple {
        /// Multiplier applied to the diameter bound.
        multiplier: usize,
        /// Constant added after multiplying.
        offset: usize,
        /// The diameter upper bound `D̄` to use when the caller does not
        /// supply a better estimate.
        assumed_diameter: usize,
    },
}

impl Default for WalkLengthPolicy {
    /// The paper's default: `2·D̄ + 1` with `D̄ = 10`, the conservative bound
    /// quoted for real-world online social networks.
    fn default() -> Self {
        WalkLengthPolicy::DiameterMultiple {
            multiplier: 2,
            offset: 1,
            assumed_diameter: 10,
        }
    }
}

impl WalkLengthPolicy {
    /// The paper's rule with an explicit diameter bound.
    pub fn paper_default(diameter_bound: usize) -> Self {
        WalkLengthPolicy::DiameterMultiple {
            multiplier: 2,
            offset: 1,
            assumed_diameter: diameter_bound,
        }
    }

    /// Resolves the policy into a concrete number of steps.
    ///
    /// `estimated_diameter` overrides the policy's assumed bound when the
    /// caller has a better estimate (e.g. from a double-sweep BFS on a
    /// synthetic graph whose topology is known to the experiment harness).
    /// The result is always at least 1.
    pub fn resolve(&self, estimated_diameter: Option<usize>) -> usize {
        match *self {
            WalkLengthPolicy::Fixed(t) => t.max(1),
            WalkLengthPolicy::DiameterMultiple {
                multiplier,
                offset,
                assumed_diameter,
            } => {
                let d = estimated_diameter.unwrap_or(assumed_diameter).max(1);
                (multiplier * d + offset).max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_is_clamped_to_one() {
        assert_eq!(WalkLengthPolicy::Fixed(15).resolve(None), 15);
        assert_eq!(WalkLengthPolicy::Fixed(0).resolve(Some(100)), 1);
    }

    #[test]
    fn default_matches_paper_rule() {
        let p = WalkLengthPolicy::default();
        assert_eq!(p.resolve(None), 21); // 2·10 + 1
        assert_eq!(p.resolve(Some(7)), 15); // Google Plus setting: 2·7 + 1
    }

    #[test]
    fn paper_default_constructor() {
        let p = WalkLengthPolicy::paper_default(7);
        assert_eq!(p.resolve(None), 15);
        assert_eq!(p.resolve(Some(3)), 7);
    }

    #[test]
    fn zero_diameter_estimate_still_walks() {
        let p = WalkLengthPolicy::paper_default(10);
        assert_eq!(p.resolve(Some(0)), 3); // clamped diameter of 1
    }
}
