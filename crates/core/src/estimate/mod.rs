//! The ESTIMATE component (Section 5): estimating `p_t(v)` for a candidate
//! node `v` reached by a short forward walk.
//!
//! * [`unbiased`] — Algorithm 1 (UNBIASED-ESTIMATE): a backward random walk
//!   whose product of correction factors is a provably unbiased estimator of
//!   the sampling probability;
//! * [`crawl`] — the *initial crawling* heuristic: crawl the `h`-hop
//!   neighborhood of the starting node and compute exact probabilities
//!   within it, so backward walks can stop `h` steps early;
//! * [`weighted`] — the *weighted sampling* heuristic (Algorithm 2, WS-BW):
//!   bias backward steps toward neighbors that historic forward walks
//!   actually visited, with an importance-weighting correction that preserves
//!   unbiasedness;
//! * [`estimator`] — Algorithm 3: repeat backward estimates per candidate and
//!   spend a refinement budget where the estimation variance is largest.

pub mod crawl;
pub mod estimator;
pub mod unbiased;
pub mod weighted;

pub use crawl::InitialCrawl;
pub use estimator::{ProbabilityEstimate, ProbabilityEstimator};
