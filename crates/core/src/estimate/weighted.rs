//! Weighted backward sampling (Section 5.3, Algorithm 2, "WS-BW").
//!
//! When UNBIASED-ESTIMATE walks backwards it picks the previous node
//! uniformly among the current node's neighbors, even though most of them
//! carry (almost) no probability mass at that step. The weighted-sampling
//! heuristic instead biases the choice toward neighbors that historic
//! forward walks actually visited at the corresponding step, reserving a
//! minimum probability `ε` for every neighbor so no direction is ever
//! starved.
//!
//! One correction relative to the paper's pseudo-code: Algorithm 2 keeps the
//! `|N(u)|/|N(v)|` factor of the uniform estimator even though the selection
//! distribution is no longer uniform, which would bias the estimate. We use
//! the standard importance-weighting factor `T(v, u) / π_sel(v)` instead,
//! which reduces to the paper's factor when the selection is uniform and
//! keeps the estimator provably unbiased under any selection distribution
//! with full support — the property Section 5.1 establishes and Section 5.3
//! explicitly aims to preserve ("to maintain the unbiasedness of the
//! estimation algorithm"). This is documented in DESIGN.md.

use crate::history::HistoryView;
use wnw_graph::NodeId;

/// The backward selection distribution over `candidates` at forward step
/// `step` (i.e. the previous node was at step `step` of the forward walk).
///
/// Each candidate gets a floor of `ε / |candidates|`; the remaining `1 − ε`
/// is distributed proportionally to the historic visit counts at `step`
/// (uniformly when no walk has reached any candidate at that step yet).
/// Any [`HistoryView`] works — a walker's own history, or the pool-shared
/// view of the concurrent engine.
pub fn selection_distribution(
    candidates: &[NodeId],
    step: usize,
    history: &dyn HistoryView,
    epsilon: f64,
) -> Vec<f64> {
    let k = candidates.len();
    assert!(k > 0, "selection over an empty candidate set");
    let epsilon = epsilon.clamp(0.0, 1.0);
    let counts: Vec<u64> = candidates
        .iter()
        .map(|&c| history.count_at(c, step))
        .collect();
    let total: u64 = counts.iter().sum();
    let mut probs = vec![epsilon / k as f64; k];
    if total == 0 {
        // No history at this step: spread the remaining mass uniformly too.
        for p in &mut probs {
            *p += (1.0 - epsilon) / k as f64;
        }
    } else {
        for (p, &c) in probs.iter_mut().zip(&counts) {
            *p += (1.0 - epsilon) * c as f64 / total as f64;
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WalkHistory;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn no_history_gives_uniform() {
        let history = WalkHistory::new();
        let probs = selection_distribution(&ids(&[1, 2, 3, 4]), 3, &history, 0.1);
        assert_eq!(probs.len(), 4);
        for p in &probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn history_shifts_mass_but_keeps_floor() {
        let mut history = WalkHistory::new();
        // Two walks both visit node 2 at step 1.
        history.record_walk(&[NodeId(0), NodeId(2)]);
        history.record_walk(&[NodeId(0), NodeId(2)]);
        let candidates = ids(&[1, 2, 3]);
        let epsilon = 0.3;
        let probs = selection_distribution(&candidates, 1, &history, epsilon);
        // Node 2 receives the floor plus the full 1 − ε share.
        assert!((probs[1] - (0.1 + 0.7)).abs() < 1e-12);
        assert!((probs[0] - 0.1).abs() < 1e-12);
        assert!((probs[2] - 0.1).abs() < 1e-12);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_split_between_visited_candidates() {
        let mut history = WalkHistory::new();
        history.record_walk(&[NodeId(0), NodeId(1)]);
        history.record_walk(&[NodeId(0), NodeId(1)]);
        history.record_walk(&[NodeId(0), NodeId(1)]);
        history.record_walk(&[NodeId(0), NodeId(2)]);
        let probs = selection_distribution(&ids(&[1, 2]), 1, &history, 0.2);
        assert!((probs[0] - (0.1 + 0.8 * 0.75)).abs() < 1e-12);
        assert!((probs[1] - (0.1 + 0.8 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn every_candidate_keeps_positive_probability() {
        let mut history = WalkHistory::new();
        for _ in 0..1000 {
            history.record_walk(&[NodeId(0), NodeId(9)]);
        }
        let probs = selection_distribution(&ids(&[9, 1, 2, 3, 4]), 1, &history, 0.1);
        for &p in &probs {
            assert!(p >= 0.1 / 5.0 - 1e-12);
        }
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_one_is_fully_uniform_even_with_history() {
        let mut history = WalkHistory::new();
        history.record_walk(&[NodeId(0), NodeId(1)]);
        let probs = selection_distribution(&ids(&[1, 2]), 1, &history, 1.0);
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn empty_candidates_panic() {
        let history = WalkHistory::new();
        let _ = selection_distribution(&[], 0, &history, 0.1);
    }
}
