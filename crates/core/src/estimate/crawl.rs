//! Initial crawling (Section 5.2).
//!
//! Crawl the `h`-hop neighborhood of the walk's starting node once, and
//! compute the *exact* sampling probability `p_t(v)` for every crawled node
//! and every `t ≤ h` by propagating the transition probabilities forward
//! inside the crawled subgraph. A walk of `t ≤ h` steps can only reach nodes
//! within `h` hops, and every transition probability out of a node at depth
//! `< h` involves only degrees of nodes at depth `≤ h`, so these values are
//! exact — no estimation involved.
//!
//! Backward estimation then terminates as soon as its remaining step count
//! drops to `h`, replacing the noisiest tail of the recursion (the part
//! whose variance UNBIASED-ESTIMATE amplifies the most) with an exact value.
//!
//! The crawl's queries are charged like any other query; in practice they are
//! cheap because the WALK step keeps revisiting the same starting
//! neighborhood, so most of these nodes are already cached (Section 5.2).

use std::collections::HashMap;
use wnw_access::{Result, SocialNetwork};
use wnw_graph::NodeId;
use wnw_mcmc::RandomWalkKind;

/// Exact sampling probabilities within the `h`-hop neighborhood of a start
/// node.
#[derive(Debug, Clone)]
pub struct InitialCrawl {
    start: NodeId,
    depth: usize,
    /// `probabilities[t]` maps node → exact `p_t(node)`, for `t ≤ depth`.
    probabilities: Vec<HashMap<NodeId, f64>>,
    /// Degrees of every crawled node (handy for callers and tests).
    degrees: HashMap<NodeId, usize>,
}

impl InitialCrawl {
    /// Crawls the `depth`-hop neighborhood of `start` through the restricted
    /// interface and computes the exact `p_t` values for the walk design
    /// `kind`.
    pub fn build<N: SocialNetwork + ?Sized>(
        osn: &N,
        kind: RandomWalkKind,
        start: NodeId,
        depth: usize,
    ) -> Result<Self> {
        // Breadth-first crawl up to `depth`, keeping each node's neighbor
        // list so transition probabilities can be computed exactly.
        let mut dist: HashMap<NodeId, usize> = HashMap::new();
        let mut adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        dist.insert(start, 0);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            let neighbors = osn.neighbors(u)?;
            for &v in &neighbors {
                if du < depth && !dist.contains_key(&v) {
                    dist.insert(v, du + 1);
                    queue.push_back(v);
                }
            }
            adjacency.insert(u, neighbors);
        }
        let degrees: HashMap<NodeId, usize> =
            adjacency.iter().map(|(&v, nbrs)| (v, nbrs.len())).collect();

        // Forward propagation of exact probabilities for t = 0..=depth.
        let mut probabilities: Vec<HashMap<NodeId, f64>> = Vec::with_capacity(depth + 1);
        let mut current: HashMap<NodeId, f64> = HashMap::new();
        current.insert(start, 1.0);
        probabilities.push(current.clone());
        for _t in 1..=depth {
            let mut next: HashMap<NodeId, f64> = HashMap::new();
            for (&u, &mass) in &current {
                let neighbors = &adjacency[&u];
                let du = neighbors.len();
                if du == 0 {
                    *next.entry(u).or_insert(0.0) += mass;
                    continue;
                }
                let mut outgoing = 0.0;
                for &v in neighbors {
                    // v is within `depth` hops, so its degree is known.
                    let dv = degrees[&v];
                    let p = kind.edge_probability(du, dv);
                    outgoing += p;
                    *next.entry(v).or_insert(0.0) += mass * p;
                }
                let self_loop = (1.0 - outgoing).max(0.0);
                if self_loop > 0.0 {
                    *next.entry(u).or_insert(0.0) += mass * self_loop;
                }
            }
            probabilities.push(next.clone());
            current = next;
        }
        Ok(InitialCrawl {
            start,
            depth,
            probabilities,
            degrees,
        })
    }

    /// The starting node of the crawl.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The crawl depth `h`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Exact `p_t(v)` for `t ≤ depth` (0.0 for nodes outside the reachable
    /// set — which is exact, not an approximation).
    ///
    /// # Panics
    /// Panics if `t > depth`; callers must check [`depth`](Self::depth).
    pub fn exact_probability(&self, t: usize, v: NodeId) -> f64 {
        assert!(
            t <= self.depth,
            "crawl only covers probabilities up to t = {}",
            self.depth
        );
        self.probabilities[t].get(&v).copied().unwrap_or(0.0)
    }

    /// Whether `v` was reached by the crawl.
    pub fn contains(&self, v: NodeId) -> bool {
        self.degrees.contains_key(&v)
    }

    /// Number of crawled nodes.
    pub fn crawled_nodes(&self) -> usize {
        self.degrees.len()
    }

    /// Degree of a crawled node, if known.
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.degrees.get(&v).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::classic::{cycle, star};
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_mcmc::distribution::TransitionMatrix;

    #[test]
    fn crawl_probabilities_match_exact_evolution_srw() {
        let graph = barabasi_albert(80, 3, 11).unwrap();
        let osn = SimulatedOsn::new(graph.clone());
        let start = NodeId(5);
        let h = 2;
        let crawl = InitialCrawl::build(&osn, RandomWalkKind::Simple, start, h).unwrap();
        let matrix = TransitionMatrix::new(&graph, RandomWalkKind::Simple);
        for t in 0..=h {
            let exact = matrix.distribution_after(start, t);
            for v in graph.nodes() {
                let from_crawl = if crawl.contains(v) || exact[v.index()] == 0.0 {
                    crawl.exact_probability(t, v)
                } else {
                    // Nodes outside the crawl must have zero true probability
                    // for t <= h.
                    assert_eq!(exact[v.index()], 0.0, "node {v} at t={t}");
                    0.0
                };
                assert!(
                    (from_crawl - exact[v.index()]).abs() < 1e-12,
                    "t={t} v={v}: {from_crawl} vs {}",
                    exact[v.index()]
                );
            }
        }
    }

    #[test]
    fn crawl_probabilities_match_exact_evolution_mhrw() {
        let graph = barabasi_albert(60, 3, 13).unwrap();
        let osn = SimulatedOsn::new(graph.clone());
        let start = NodeId(2);
        let h = 3;
        let crawl =
            InitialCrawl::build(&osn, RandomWalkKind::MetropolisHastings, start, h).unwrap();
        let matrix = TransitionMatrix::new(&graph, RandomWalkKind::MetropolisHastings);
        for t in 0..=h {
            let exact = matrix.distribution_after(start, t);
            for v in graph.nodes() {
                let got = if t <= crawl.depth() {
                    crawl.exact_probability(t, v)
                } else {
                    0.0
                };
                assert!((got - exact[v.index()]).abs() < 1e-12, "t={t} v={v}");
            }
        }
    }

    #[test]
    fn crawl_of_depth_zero_is_just_the_start() {
        let osn = SimulatedOsn::new(cycle(6));
        let crawl = InitialCrawl::build(&osn, RandomWalkKind::Simple, NodeId(0), 0).unwrap();
        assert_eq!(crawl.crawled_nodes(), 1);
        assert_eq!(crawl.exact_probability(0, NodeId(0)), 1.0);
        assert_eq!(crawl.exact_probability(0, NodeId(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "crawl only covers")]
    fn asking_beyond_depth_panics() {
        let osn = SimulatedOsn::new(cycle(6));
        let crawl = InitialCrawl::build(&osn, RandomWalkKind::Simple, NodeId(0), 1).unwrap();
        let _ = crawl.exact_probability(2, NodeId(0));
    }

    #[test]
    fn star_crawl_has_exact_hub_probabilities() {
        // From a leaf of a star, p_1(hub) = 1 and p_2(leaves) = 1/(n-1) each
        // under SRW.
        let n = 6;
        let osn = SimulatedOsn::new(star(n));
        let crawl = InitialCrawl::build(&osn, RandomWalkKind::Simple, NodeId(3), 2).unwrap();
        assert_eq!(crawl.exact_probability(1, NodeId(0)), 1.0);
        for leaf in 1..n as u32 {
            assert!(
                (crawl.exact_probability(2, NodeId(leaf)) - 1.0 / (n as f64 - 1.0)).abs() < 1e-12
            );
        }
        assert_eq!(crawl.exact_probability(2, NodeId(0)), 0.0);
        assert_eq!(crawl.degree(NodeId(0)), Some(n - 1));
        assert_eq!(crawl.start(), NodeId(3));
    }

    #[test]
    fn crawl_query_cost_is_bounded_by_neighborhood_size() {
        let graph = barabasi_albert(200, 3, 17).unwrap();
        let osn = SimulatedOsn::new(graph);
        let crawl = InitialCrawl::build(&osn, RandomWalkKind::Simple, NodeId(0), 2).unwrap();
        assert_eq!(osn.query_cost(), crawl.crawled_nodes() as u64);
    }
}
