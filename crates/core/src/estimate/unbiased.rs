//! UNBIASED-ESTIMATE (Section 5.1, Algorithm 1) and its generalised backward
//! walk engine.
//!
//! The identity
//!
//! ```text
//! p_t(u) = Σ_{u' : T(u', u) > 0}  p_{t-1}(u') · T(u', u)
//! ```
//!
//! turns the estimation of `p_t(u)` into the estimation of `p_{t-1}(u')` for
//! one randomly chosen predecessor `u'`, corrected by the factor
//! `T(u', u) / π_sel(u')` where `π_sel` is the probability with which `u'`
//! was chosen. Iterating down to `t = 0` (where `p_0` is the indicator of
//! the starting node) gives an unbiased estimator for any selection
//! distribution with full support over the predecessors:
//!
//! * choosing uniformly over `N(u)` recovers the paper's Algorithm 1 exactly
//!   (the factor becomes `|N(u)| · T(u', u)`, i.e. `|N(u)|/|N(u')|` for SRW);
//! * choosing according to the history-weighted distribution of Algorithm 2
//!   gives the variance-reduced WS-BW variant;
//! * an [`InitialCrawl`] lets the recursion stop `h` steps early with an
//!   exact value.
//!
//! For designs with self-loops (MHRW), the candidate set is `N(u) ∪ {u}`
//! because the walk may also have *stayed* at `u` — the paper's pseudo-code
//! elides this, but without it the estimator would be biased low for MHRW.

use crate::estimate::crawl::InitialCrawl;
use crate::estimate::weighted;
use crate::history::HistoryView;
use rand::Rng;
use wnw_access::{Result, SocialNetwork};
use wnw_graph::NodeId;
use wnw_mcmc::RandomWalkKind;

/// Options for the backward walk engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackwardOptions<'a> {
    /// Exact probabilities within the starting node's `h`-hop neighborhood;
    /// when present, the recursion terminates as soon as `remaining ≤ h`.
    pub crawl: Option<&'a InitialCrawl>,
    /// Historic forward-walk visit counts for weighted backward sampling,
    /// together with the floor `ε`; `None` selects predecessors uniformly.
    pub weighting: Option<(&'a dyn HistoryView, f64)>,
}

/// Plain UNBIASED-ESTIMATE (Algorithm 1): uniform backward selection, no
/// crawl. One invocation produces one unbiased (but high-variance) estimate
/// of `p_t(node)` for a walk of `t` steps started at `start`.
pub fn unbiased_estimate<N: SocialNetwork + ?Sized, R: Rng + ?Sized>(
    osn: &N,
    kind: RandomWalkKind,
    node: NodeId,
    start: NodeId,
    t: usize,
    rng: &mut R,
) -> Result<f64> {
    backward_estimate(osn, kind, node, start, t, BackwardOptions::default(), rng)
}

/// The generalised backward-walk estimator: one estimate of `p_t(node)`.
pub fn backward_estimate<N: SocialNetwork + ?Sized, R: Rng + ?Sized>(
    osn: &N,
    kind: RandomWalkKind,
    node: NodeId,
    start: NodeId,
    t: usize,
    options: BackwardOptions<'_>,
    rng: &mut R,
) -> Result<f64> {
    let mut factor = 1.0;
    let mut current = node;
    let mut remaining = t;
    loop {
        // Early exact termination inside the crawled neighborhood.
        if let Some(crawl) = options.crawl {
            if remaining <= crawl.depth() && crawl.start() == start {
                return Ok(factor * crawl.exact_probability(remaining, current));
            }
        }
        if remaining == 0 {
            return Ok(if current == start { factor } else { 0.0 });
        }

        let neighbors = osn.neighbors(current)?;
        if neighbors.is_empty() {
            // An isolated node can only be reached by starting on it; the
            // walk cannot have arrived here from anywhere else.
            return Ok(if current == start { factor } else { 0.0 });
        }
        let degree_current = neighbors.len();

        // Predecessor candidates: all nodes with T(·, current) > 0.
        let mut candidates = neighbors.clone();
        if kind.has_self_loops() {
            candidates.push(current);
        }

        // Selection distribution over the candidates.
        let probs = match options.weighting {
            Some((history, epsilon)) => {
                weighted::selection_distribution(&candidates, remaining - 1, history, epsilon)
            }
            None => vec![1.0 / candidates.len() as f64; candidates.len()],
        };
        let choice = sample_index(&probs, rng);
        let previous = candidates[choice];
        let selection_probability = probs[choice];

        // Transition probability T(previous, current) of the *forward* walk.
        let transition = if previous == current {
            // Self-loop of MHRW: 1 − Σ_w T(current, w). Evaluating it exactly
            // needs the degree of every neighbor of `current`, which on a
            // dense hub would cost hundreds of queries for a single backward
            // step. Instead estimate it from a bounded uniform sample of
            // neighbors: E[min(1, d(u)/d(w))] over a uniform neighbor w gives
            // an unbiased estimate of the outgoing mass, and the factor
            // product stays unbiased because the sample is independent of
            // everything else in the recursion.
            const SELF_LOOP_NEIGHBOR_SAMPLE: usize = 8;
            let neighbor_degrees = if neighbors.len() <= SELF_LOOP_NEIGHBOR_SAMPLE {
                let mut all = Vec::with_capacity(neighbors.len());
                for &w in &neighbors {
                    all.push(osn.degree(w)?);
                }
                all
            } else {
                let mut sampled = Vec::with_capacity(SELF_LOOP_NEIGHBOR_SAMPLE);
                for _ in 0..SELF_LOOP_NEIGHBOR_SAMPLE {
                    let idx = rng.gen_range(0..neighbors.len());
                    sampled.push(osn.degree(neighbors[idx])?);
                }
                sampled
            };
            // `self_loop_probability` averages `min(1, d_u/d_w)` over the
            // provided degrees scaled by 1/d_u per entry; rescale the sampled
            // average to the full degree.
            let sampled_outgoing: f64 = neighbor_degrees
                .iter()
                .map(|&dw| kind.edge_probability(degree_current, dw))
                .sum::<f64>()
                / neighbor_degrees.len() as f64
                * degree_current as f64;
            (1.0 - sampled_outgoing).max(0.0)
        } else {
            let degree_previous = osn.degree(previous)?;
            if degree_previous == 0 {
                return Ok(0.0);
            }
            kind.edge_probability(degree_previous, degree_current)
        };

        factor *= transition / selection_probability;
        if factor == 0.0 {
            return Ok(0.0);
        }
        current = previous;
        remaining -= 1;
    }
}

/// Draws an index according to an (already normalised) probability vector.
fn sample_index<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let total: f64 = probs.iter().sum();
    let mut threshold = rng.gen::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        if threshold < p {
            return i;
        }
        threshold -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WalkHistory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::classic::{complete, cycle};
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_graph::Graph;
    use wnw_mcmc::distribution::TransitionMatrix;

    /// Averages many single estimates and compares against the exact value.
    #[allow(clippy::too_many_arguments)]
    fn mean_estimate(
        graph: &Graph,
        kind: RandomWalkKind,
        node: NodeId,
        start: NodeId,
        t: usize,
        repetitions: usize,
        options_builder: impl Fn(&SimulatedOsn) -> (Option<InitialCrawl>, Option<WalkHistory>),
        seed: u64,
    ) -> (f64, f64) {
        let osn = SimulatedOsn::new(graph.clone());
        let (crawl, history) = options_builder(&osn);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        for _ in 0..repetitions {
            let options = BackwardOptions {
                crawl: crawl.as_ref(),
                weighting: history.as_ref().map(|h| (h as &dyn HistoryView, 0.1)),
            };
            sum += backward_estimate(&osn, kind, node, start, t, options, &mut rng).unwrap();
        }
        let exact = TransitionMatrix::new(graph, kind).distribution_after(start, t)[node.index()];
        (sum / repetitions as f64, exact)
    }

    #[test]
    fn base_cases() {
        let osn = SimulatedOsn::new(cycle(5));
        let mut rng = StdRng::seed_from_u64(1);
        // t = 0: indicator of the start node.
        assert_eq!(
            unbiased_estimate(
                &osn,
                RandomWalkKind::Simple,
                NodeId(0),
                NodeId(0),
                0,
                &mut rng
            )
            .unwrap(),
            1.0
        );
        assert_eq!(
            unbiased_estimate(
                &osn,
                RandomWalkKind::Simple,
                NodeId(1),
                NodeId(0),
                0,
                &mut rng
            )
            .unwrap(),
            0.0
        );
    }

    #[test]
    fn exact_on_cycle_one_step() {
        // On a cycle, p_1(neighbor) = 1/2 exactly and the estimator has zero
        // variance (every backward path gives the same factor).
        let osn = SimulatedOsn::new(cycle(7));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let est = unbiased_estimate(
                &osn,
                RandomWalkKind::Simple,
                NodeId(1),
                NodeId(0),
                1,
                &mut rng,
            )
            .unwrap();
            assert!(est == 0.0 || (est - 1.0).abs() < 1e-12 || (est - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn unbiased_on_complete_graph_srw() {
        let graph = complete(8);
        let (mean, exact) = mean_estimate(
            &graph,
            RandomWalkKind::Simple,
            NodeId(3),
            NodeId(0),
            3,
            20_000,
            |_| (None, None),
            3,
        );
        assert!(
            (mean - exact).abs() / exact < 0.1,
            "mean {mean} exact {exact}"
        );
    }

    #[test]
    fn unbiased_on_ba_graph_srw() {
        let graph = barabasi_albert(40, 3, 5).unwrap();
        let (mean, exact) = mean_estimate(
            &graph,
            RandomWalkKind::Simple,
            NodeId(10),
            NodeId(0),
            4,
            60_000,
            |_| (None, None),
            7,
        );
        assert!(exact > 0.0);
        assert!(
            (mean - exact).abs() / exact < 0.2,
            "mean {mean} exact {exact}"
        );
    }

    #[test]
    fn unbiased_on_ba_graph_mhrw_with_self_loops() {
        let graph = barabasi_albert(30, 3, 9).unwrap();
        let (mean, exact) = mean_estimate(
            &graph,
            RandomWalkKind::MetropolisHastings,
            NodeId(7),
            NodeId(0),
            4,
            60_000,
            |_| (None, None),
            11,
        );
        assert!(exact > 0.0);
        assert!(
            (mean - exact).abs() / exact < 0.25,
            "mean {mean} exact {exact}"
        );
    }

    #[test]
    fn crawl_reduces_to_exact_when_it_covers_the_whole_walk() {
        // With crawl depth >= t the estimator returns the exact value with
        // zero variance.
        let graph = barabasi_albert(50, 3, 13).unwrap();
        let osn = SimulatedOsn::new(graph.clone());
        let crawl = InitialCrawl::build(&osn, RandomWalkKind::Simple, NodeId(0), 3).unwrap();
        let exact =
            TransitionMatrix::new(&graph, RandomWalkKind::Simple).distribution_after(NodeId(0), 3);
        let mut rng = StdRng::seed_from_u64(17);
        for v in [NodeId(1), NodeId(5), NodeId(20)] {
            let est = backward_estimate(
                &osn,
                RandomWalkKind::Simple,
                v,
                NodeId(0),
                3,
                BackwardOptions {
                    crawl: Some(&crawl),
                    weighting: None,
                },
                &mut rng,
            )
            .unwrap();
            assert!(
                (est - exact[v.index()]).abs() < 1e-12,
                "{v}: {est} vs {}",
                exact[v.index()]
            );
        }
    }

    #[test]
    fn crawl_assisted_estimate_stays_unbiased() {
        let graph = barabasi_albert(40, 3, 21).unwrap();
        let (mean, exact) = mean_estimate(
            &graph,
            RandomWalkKind::Simple,
            NodeId(15),
            NodeId(0),
            5,
            40_000,
            |osn| {
                (
                    Some(InitialCrawl::build(osn, RandomWalkKind::Simple, NodeId(0), 2).unwrap()),
                    None,
                )
            },
            23,
        );
        assert!(exact > 0.0);
        assert!(
            (mean - exact).abs() / exact < 0.15,
            "mean {mean} exact {exact}"
        );
    }

    #[test]
    fn weighted_estimate_stays_unbiased() {
        let graph = barabasi_albert(40, 3, 29).unwrap();
        let osn_for_history = SimulatedOsn::new(graph.clone());
        // Build a history from genuine forward walks so the weighting is
        // informative.
        let mut history = WalkHistory::new();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let walk = wnw_mcmc::random_walk(
                &osn_for_history,
                RandomWalkKind::Simple,
                NodeId(0),
                5,
                &mut rng,
            )
            .unwrap();
            history.record_walk(&walk.path);
        }
        let (mean, exact) = mean_estimate(
            &graph,
            RandomWalkKind::Simple,
            NodeId(12),
            NodeId(0),
            5,
            40_000,
            move |_| (None, Some(history.clone())),
            37,
        );
        assert!(exact > 0.0);
        assert!(
            (mean - exact).abs() / exact < 0.2,
            "mean {mean} exact {exact}"
        );
    }

    #[test]
    fn sample_index_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(41);
        let probs = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_index(&probs, &mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.7).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.1).abs() < 0.02);
    }
}
