//! Algorithm 3 — ESTIMATE: repeated backward estimates with variance-driven
//! budget allocation.
//!
//! A single backward estimate is unbiased but noisy, so ESTIMATE averages
//! several per candidate and then spends a refinement budget preferentially
//! on the candidates whose estimates still vary the most ("Choose nodes
//! randomly proportional to their variance").

use crate::config::{WalkEstimateConfig, WalkEstimateVariant};
use crate::estimate::crawl::InitialCrawl;
use crate::estimate::unbiased::{backward_estimate, BackwardOptions};
use crate::history::HistoryView;
use rand::Rng;
use wnw_access::{Result, SocialNetwork};
use wnw_analytics::stats::RunningStats;
use wnw_graph::NodeId;
use wnw_mcmc::RandomWalkKind;

/// The estimate of a candidate's sampling probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityEstimate {
    /// The candidate node.
    pub node: NodeId,
    /// Walk length the probability refers to.
    pub walk_length: usize,
    /// Mean of the backward estimates (the estimate of `p_t(node)`).
    pub probability: f64,
    /// Variance across the backward estimates.
    pub variance: f64,
    /// Number of backward estimates averaged.
    pub repetitions: usize,
}

/// Repeated-estimation engine implementing Algorithm 3.
#[derive(Debug, Clone)]
pub struct ProbabilityEstimator {
    kind: RandomWalkKind,
    base_repetitions: usize,
    refinement_repetitions: usize,
    epsilon: f64,
    variant: WalkEstimateVariant,
}

impl ProbabilityEstimator {
    /// Builds an estimator from the sampler configuration.
    pub fn from_config(kind: RandomWalkKind, config: &WalkEstimateConfig) -> Self {
        ProbabilityEstimator {
            kind,
            base_repetitions: config.base_backward_repetitions.max(1),
            refinement_repetitions: config.refinement_backward_repetitions,
            epsilon: config.weighted_epsilon,
            variant: config.variant,
        }
    }

    /// Builds an estimator with explicit parameters.
    pub fn new(
        kind: RandomWalkKind,
        base_repetitions: usize,
        refinement_repetitions: usize,
        epsilon: f64,
        variant: WalkEstimateVariant,
    ) -> Self {
        ProbabilityEstimator {
            kind,
            base_repetitions: base_repetitions.max(1),
            refinement_repetitions,
            epsilon,
            variant,
        }
    }

    fn options<'a>(
        &self,
        crawl: Option<&'a InitialCrawl>,
        history: Option<&'a dyn HistoryView>,
    ) -> BackwardOptions<'a> {
        BackwardOptions {
            crawl: if self.variant.uses_crawl() {
                crawl
            } else {
                None
            },
            weighting: if self.variant.uses_weighted_sampling() {
                history.map(|h| (h, self.epsilon))
            } else {
                None
            },
        }
    }

    /// Estimates `p_t(node)` for a single candidate, spending
    /// `base_repetitions + refinement_repetitions` backward walks on it.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list for Algorithm 3
    pub fn estimate_single<N: SocialNetwork + ?Sized, R: Rng + ?Sized>(
        &self,
        osn: &N,
        node: NodeId,
        start: NodeId,
        walk_length: usize,
        crawl: Option<&InitialCrawl>,
        history: Option<&dyn HistoryView>,
        rng: &mut R,
    ) -> Result<ProbabilityEstimate> {
        let options = self.options(crawl, history);
        let mut stats = RunningStats::new();
        let total = self.base_repetitions + self.refinement_repetitions;
        for _ in 0..total {
            let est = backward_estimate(osn, self.kind, node, start, walk_length, options, rng)?;
            stats.push(est);
        }
        Ok(ProbabilityEstimate {
            node,
            walk_length,
            probability: stats.mean(),
            variance: stats.variance(),
            repetitions: total,
        })
    }

    /// Estimates the probabilities of several candidates (Algorithm 3):
    /// every candidate receives `base_repetitions` backward walks, then a
    /// pooled refinement budget of `refinement_repetitions × |candidates|`
    /// extra walks is handed out with probability proportional to the current
    /// estimation variance of each candidate.
    pub fn estimate_many<N: SocialNetwork + ?Sized, R: Rng + ?Sized>(
        &self,
        osn: &N,
        candidates: &[(NodeId, usize)],
        start: NodeId,
        crawl: Option<&InitialCrawl>,
        history: Option<&dyn HistoryView>,
        rng: &mut R,
    ) -> Result<Vec<ProbabilityEstimate>> {
        let options = self.options(crawl, history);
        let mut stats: Vec<RunningStats> = vec![RunningStats::new(); candidates.len()];
        for (i, &(node, t)) in candidates.iter().enumerate() {
            for _ in 0..self.base_repetitions {
                let est = backward_estimate(osn, self.kind, node, start, t, options, rng)?;
                stats[i].push(est);
            }
        }
        // Refinement: allocate extra repetitions proportional to variance.
        let budget = self.refinement_repetitions * candidates.len();
        for _ in 0..budget {
            let variances: Vec<f64> = stats.iter().map(|s| s.variance()).collect();
            let total_var: f64 = variances.iter().sum();
            let idx = if total_var <= 0.0 {
                rng.gen_range(0..candidates.len())
            } else {
                let mut threshold = rng.gen::<f64>() * total_var;
                let mut chosen = candidates.len() - 1;
                for (i, &v) in variances.iter().enumerate() {
                    if threshold < v {
                        chosen = i;
                        break;
                    }
                    threshold -= v;
                }
                chosen
            };
            let (node, t) = candidates[idx];
            let est = backward_estimate(osn, self.kind, node, start, t, options, rng)?;
            stats[idx].push(est);
        }
        Ok(candidates
            .iter()
            .zip(&stats)
            .map(|(&(node, walk_length), s)| ProbabilityEstimate {
                node,
                walk_length,
                probability: s.mean(),
                variance: s.variance(),
                repetitions: s.count() as usize,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_mcmc::distribution::TransitionMatrix;

    fn setup(seed: u64) -> (SimulatedOsn, wnw_graph::Graph) {
        let graph = barabasi_albert(60, 3, seed).unwrap();
        (SimulatedOsn::new(graph.clone()), graph)
    }

    #[test]
    fn single_estimate_reports_statistics() {
        let (osn, _graph) = setup(3);
        let estimator = ProbabilityEstimator::new(
            RandomWalkKind::Simple,
            10,
            5,
            0.1,
            WalkEstimateVariant::None,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let est = estimator
            .estimate_single(&osn, NodeId(10), NodeId(0), 5, None, None, &mut rng)
            .unwrap();
        assert_eq!(est.repetitions, 15);
        assert_eq!(est.walk_length, 5);
        assert!(est.probability >= 0.0);
        assert!(est.variance >= 0.0);
    }

    #[test]
    fn initial_crawling_reduces_estimation_variance() {
        // Replacing the noisy tail of the backward recursion with exact
        // crawled probabilities can only lower the variance (law of total
        // variance) — the core claim of Section 5.2, and one axis of the
        // Figure 9 ablation.
        let (osn, graph) = setup(5);
        let start = NodeId(0);
        let t = 6;
        let target = NodeId(25);
        let crawl = InitialCrawl::build(&osn, RandomWalkKind::Simple, start, 3).unwrap();
        let plain = ProbabilityEstimator::new(
            RandomWalkKind::Simple,
            600,
            0,
            0.1,
            WalkEstimateVariant::None,
        );
        let crawled = ProbabilityEstimator::new(
            RandomWalkKind::Simple,
            600,
            0,
            0.1,
            WalkEstimateVariant::CrawlOnly,
        );
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let est_plain = plain
            .estimate_single(&osn, target, start, t, Some(&crawl), None, &mut rng_a)
            .unwrap();
        let est_crawled = crawled
            .estimate_single(&osn, target, start, t, Some(&crawl), None, &mut rng_b)
            .unwrap();
        let exact = TransitionMatrix::new(&graph, RandomWalkKind::Simple)
            .distribution_after(start, t)[target.index()];
        assert!(exact > 0.0);
        assert!(
            est_crawled.variance < est_plain.variance,
            "WE-Crawl variance {} should be below WE-None variance {}",
            est_crawled.variance,
            est_plain.variance
        );
        // Both remain in the right ballpark of the exact probability.
        assert!((est_crawled.probability - exact).abs() / exact < 0.5);
    }

    #[test]
    fn estimate_many_allocates_full_budget() {
        let (osn, _) = setup(7);
        let estimator =
            ProbabilityEstimator::new(RandomWalkKind::Simple, 4, 4, 0.1, WalkEstimateVariant::None);
        let mut rng = StdRng::seed_from_u64(13);
        let candidates = vec![(NodeId(5), 5), (NodeId(9), 5), (NodeId(30), 5)];
        let estimates = estimator
            .estimate_many(&osn, &candidates, NodeId(0), None, None, &mut rng)
            .unwrap();
        assert_eq!(estimates.len(), 3);
        let total_reps: usize = estimates.iter().map(|e| e.repetitions).sum();
        // 3 candidates × 4 base + 3 × 4 refinement.
        assert_eq!(total_reps, 24);
        for e in &estimates {
            assert!(
                e.repetitions >= 4,
                "every candidate keeps its base repetitions"
            );
        }
    }

    #[test]
    fn from_config_respects_variant() {
        let config = WalkEstimateConfig::default().with_variant(WalkEstimateVariant::CrawlOnly);
        let estimator =
            ProbabilityEstimator::from_config(RandomWalkKind::MetropolisHastings, &config);
        assert_eq!(estimator.variant, WalkEstimateVariant::CrawlOnly);
        assert_eq!(estimator.base_repetitions, config.base_backward_repetitions);
    }
}
