//! # wnw-core — WALK-ESTIMATE
//!
//! The primary contribution of *"Walk, Not Wait: Faster Sampling Over Online
//! Social Networks"* (Nazi et al., VLDB 2015): a swap-in replacement for any
//! random-walk sampler that forgoes the long burn-in wait and instead
//!
//! 1. **WALK**s a short, fixed number of steps (about twice the graph
//!    diameter) to obtain a candidate node,
//! 2. **ESTIMATE**s the candidate's sampling probability `p_t(v)` with a
//!    provably unbiased backward random walk, sharpened by *initial
//!    crawling* and *weighted sampling*, and
//! 3. applies **acceptance-rejection sampling** to correct the short-walk
//!    distribution to the input walk's target distribution.
//!
//! Module map (mirrors the paper's structure):
//!
//! * [`ideal`] — IDEAL-WALK: the Theorem 1 cost model, the optimal walk
//!   length `t_opt` (Lambert W), and the exact per-graph cost curves used in
//!   the Section 4.2 case study (Figures 2–3);
//! * [`walk`] — the practical WALK component: walk-length policies
//!   (Section 4.3, default `2·D̄ + 1`);
//! * [`estimate`] — the ESTIMATE component: [`estimate::unbiased`]
//!   (Algorithm 1), [`estimate::crawl`] (initial crawling),
//!   [`estimate::weighted`] (Algorithm 2, WS-BW), and
//!   [`estimate::estimator`] (Algorithm 3, variance-driven budget
//!   allocation);
//! * [`history`] — per-step visit counts of past forward walks, feeding the
//!   weighted-sampling heuristic;
//! * [`config`] / [`sampler`] — the assembled WALK-ESTIMATE sampler and its
//!   ablation variants (WE-None, WE-Crawl, WE-Weighted, WE), implementing the
//!   same [`Sampler`](wnw_mcmc::Sampler) trait as the traditional baselines.
//!
//! ```
//! use wnw_access::SimulatedOsn;
//! use wnw_core::{WalkEstimateConfig, WalkEstimateSampler};
//! use wnw_graph::generators::random::barabasi_albert;
//! use wnw_mcmc::{collect_samples, RandomWalkKind};
//!
//! let graph = barabasi_albert(500, 5, 7).unwrap();
//! let osn = SimulatedOsn::new(graph);
//! let config = WalkEstimateConfig::default();
//! let mut sampler = WalkEstimateSampler::new(
//!     osn, RandomWalkKind::MetropolisHastings, config, 42,
//! );
//! let run = collect_samples(&mut sampler, 10).unwrap();
//! assert_eq!(run.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod estimate;
pub mod history;
pub mod ideal;
pub mod long_run;
pub mod sampler;
pub mod walk;

pub use config::{WalkEstimateConfig, WalkEstimateVariant};
pub use estimate::estimator::ProbabilityEstimator;
pub use history::{
    FrozenHistory, HistoryHandle, HistoryKey, HistoryStore, HistoryStoreStats, HistoryView,
    OverlayHistory, ReuseCorrection, SharedWalkHistory, WalkHistory,
};
pub use ideal::IdealWalkAnalysis;
pub use long_run::WalkEstimateLongRunSampler;
pub use sampler::WalkEstimateSampler;
pub use walk::WalkLengthPolicy;
