//! History of forward walks, feeding the weighted-sampling heuristic.
//!
//! WALK-ESTIMATE repeatedly starts forward walks from the same node. The
//! weighted backward sampling of Algorithm 2 uses how often each node was
//! reached at each step of those past walks (`n_{u', t-1}` out of `n_hw`
//! walks) to focus backward steps on the neighbors that actually carry
//! probability mass.
//!
//! Three shapes of history live here:
//!
//! * [`WalkHistory`] — the plain single-walker structure;
//! * [`SharedWalkHistory`] — a lock-striped accumulator a pool of walkers
//!   merges into, so every walker's backward sampling benefits from *all*
//!   forward walks (the engine's cooperative mode);
//! * [`OverlayHistory`] — a shared snapshot plus a walker's not-yet-merged
//!   local walks, which is what a walker actually reads mid-round.
//!
//! The consumers ([`selection_distribution`](crate::estimate::weighted) and
//! the backward estimator) only need per-(node, step) counts, captured by the
//! [`HistoryView`] trait. Correctness never depends on *which* history a
//! walker sees: the importance-weighted backward estimator is unbiased for
//! any selection distribution with full support, so richer history only
//! reduces variance.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use wnw_access::sync::{read, write};
use wnw_graph::NodeId;

/// Read access to per-(node, step) visit counts of past forward walks.
pub trait HistoryView: std::fmt::Debug {
    /// Number of recorded walks that were at `node` at step `step`.
    fn count_at(&self, node: NodeId, step: usize) -> u64;

    /// Number of walks recorded (`n_hw`).
    fn walk_count(&self) -> u64;
}

/// Per-step visit counts across all recorded forward walks.
#[derive(Debug, Clone, Default)]
pub struct WalkHistory {
    /// `counts[t][v]` = number of recorded walks that were at node `v` at
    /// step `t`.
    counts: Vec<HashMap<NodeId, u64>>,
    /// Number of walks recorded.
    walks: u64,
}

impl WalkHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a forward walk given its full path (`path[0]` is the start).
    pub fn record_walk(&mut self, path: &[NodeId]) {
        if path.is_empty() {
            return;
        }
        if self.counts.len() < path.len() {
            self.counts.resize_with(path.len(), HashMap::new);
        }
        for (step, &node) in path.iter().enumerate() {
            *self.counts[step].entry(node).or_insert(0) += 1;
        }
        self.walks += 1;
    }

    /// Number of walks recorded so far (`n_hw`).
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Number of recorded walks that were at `node` at step `step`
    /// (`n_{node, step}`).
    pub fn count_at(&self, node: NodeId, step: usize) -> u64 {
        self.counts
            .get(step)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    /// All nodes seen at `step`, with their counts.
    pub fn nodes_at(&self, step: usize) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.counts
            .get(step)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&n, &c)| (n, c)))
    }

    /// Longest recorded path length (steps + 1), 0 when empty.
    pub fn max_recorded_length(&self) -> usize {
        self.counts.len()
    }

    /// Clears all recorded walks.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.walks = 0;
    }

    /// Whether no walks are recorded.
    pub fn is_empty(&self) -> bool {
        self.walks == 0
    }
}

impl HistoryView for WalkHistory {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        WalkHistory::count_at(self, node, step)
    }

    fn walk_count(&self) -> u64 {
        WalkHistory::walk_count(self)
    }
}

/// Number of independent stripes of a [`SharedWalkHistory`]. Counts for step
/// `t` live in stripe `t % STRIPE_COUNT`, so walkers reading different steps
/// of the backward recursion rarely contend.
pub const STRIPE_COUNT: usize = 16;

/// A walk history shared by a pool of concurrent walkers.
///
/// Writers batch: a walker records its forward walks into a private
/// [`WalkHistory`] and [`merge`](Self::merge)s it in at synchronisation
/// points chosen by the engine (merging per walk would serialise the pool on
/// these locks). Counts are additive, so the merged result is identical
/// for every arrival order — this is what keeps the engine's cooperative
/// mode deterministic at any thread count.
///
/// Stripes are `RwLock`s because the engine's schedule makes the history
/// read-only between barriers: the backward-sampling hot loop takes cheap
/// shared read locks (all walkers probing the same step would otherwise
/// serialise on one stripe), while merges — confined to the barrier window —
/// take the write lock.
#[derive(Debug, Default)]
pub struct SharedWalkHistory {
    /// `stripes[t % STRIPE_COUNT]` holds `step → node → count` for its steps.
    stripes: [RwLock<HashMap<usize, HashMap<NodeId, u64>>>; STRIPE_COUNT],
    walks: AtomicU64,
}

impl SharedWalkHistory {
    /// Creates an empty shared history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty shared history behind an [`Arc`], ready to hand to
    /// walkers.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Merges all counts of `local` in (additively).
    pub fn merge(&self, local: &WalkHistory) {
        if local.is_empty() {
            return;
        }
        for step in 0..local.max_recorded_length() {
            let mut stripe = write(&self.stripes[step % STRIPE_COUNT]);
            for (node, count) in local.nodes_at(step) {
                *stripe.entry(step).or_default().entry(node).or_insert(0) += count;
            }
        }
        self.walks.fetch_add(local.walk_count(), Ordering::Relaxed);
    }

    /// Records one walk directly (convenience for tests and single callers;
    /// pools should batch through [`merge`](Self::merge)).
    pub fn record_walk(&self, path: &[NodeId]) {
        if path.is_empty() {
            return;
        }
        for (step, &node) in path.iter().enumerate() {
            let mut stripe = write(&self.stripes[step % STRIPE_COUNT]);
            *stripe.entry(step).or_default().entry(node).or_insert(0) += 1;
        }
        self.walks.fetch_add(1, Ordering::Relaxed);
    }
}

impl HistoryView for SharedWalkHistory {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        read(&self.stripes[step % STRIPE_COUNT])
            .get(&step)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    fn walk_count(&self) -> u64 {
        self.walks.load(Ordering::Relaxed)
    }
}

/// A shared history snapshot overlaid with a walker's not-yet-merged local
/// walks: counts are the sum of both layers.
#[derive(Debug, Clone, Copy)]
pub struct OverlayHistory<'a> {
    base: &'a SharedWalkHistory,
    pending: &'a WalkHistory,
}

impl<'a> OverlayHistory<'a> {
    /// Combines a shared base with a walker's pending local walks.
    pub fn new(base: &'a SharedWalkHistory, pending: &'a WalkHistory) -> Self {
        OverlayHistory { base, pending }
    }
}

impl HistoryView for OverlayHistory<'_> {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        self.base.count_at(node, step) + self.pending.count_at(node, step)
    }

    fn walk_count(&self) -> u64 {
        self.base.walk_count() + self.pending.walk_count()
    }
}

/// The history a sampler records into: its own, or a pool's shared one.
#[derive(Debug, Clone)]
pub enum HistoryHandle {
    /// A private history, as the single-threaded samplers use.
    Local(WalkHistory),
    /// A pool-shared history plus this walker's pending (unmerged) walks.
    Shared {
        /// The accumulator shared by the pool.
        shared: Arc<SharedWalkHistory>,
        /// Walks recorded since the last [`flush`](HistoryHandle::flush).
        pending: WalkHistory,
    },
}

impl Default for HistoryHandle {
    fn default() -> Self {
        HistoryHandle::Local(WalkHistory::new())
    }
}

impl HistoryHandle {
    /// A handle merging into `shared`.
    pub fn shared(shared: Arc<SharedWalkHistory>) -> Self {
        HistoryHandle::Shared {
            shared,
            pending: WalkHistory::new(),
        }
    }

    /// Records one forward walk.
    pub fn record_walk(&mut self, path: &[NodeId]) {
        match self {
            HistoryHandle::Local(h) => h.record_walk(path),
            HistoryHandle::Shared { pending, .. } => pending.record_walk(path),
        }
    }

    /// Publishes pending walks to the shared accumulator (no-op for local
    /// handles). The engine calls this at its round barriers.
    pub fn flush(&mut self) {
        if let HistoryHandle::Shared { shared, pending } = self {
            shared.merge(pending);
            pending.clear();
        }
    }

    /// The view a backward estimator should read: local counts, or the
    /// shared counts overlaid with this walker's pending walks.
    pub fn view(&self) -> HistoryViewRef<'_> {
        match self {
            HistoryHandle::Local(h) => HistoryViewRef::Local(h),
            HistoryHandle::Shared { shared, pending } => {
                HistoryViewRef::Overlay(OverlayHistory::new(shared, pending))
            }
        }
    }
}

/// A borrowed [`HistoryView`] produced by [`HistoryHandle::view`].
#[derive(Debug, Clone, Copy)]
pub enum HistoryViewRef<'a> {
    /// View of a private history.
    Local(&'a WalkHistory),
    /// View of a shared history plus pending local walks.
    Overlay(OverlayHistory<'a>),
}

impl HistoryView for HistoryViewRef<'_> {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        match self {
            HistoryViewRef::Local(h) => h.count_at(node, step),
            HistoryViewRef::Overlay(o) => o.count_at(node, step),
        }
    }

    fn walk_count(&self) -> u64 {
        match self {
            HistoryViewRef::Local(h) => h.walk_count(),
            HistoryViewRef::Overlay(o) => o.walk_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(1)]);
        assert_eq!(h.walk_count(), 2);
        assert_eq!(h.count_at(NodeId(0), 0), 2);
        assert_eq!(h.count_at(NodeId(1), 1), 2);
        assert_eq!(h.count_at(NodeId(2), 2), 1);
        assert_eq!(h.count_at(NodeId(1), 2), 1);
        assert_eq!(h.count_at(NodeId(9), 1), 0);
        assert_eq!(h.max_recorded_length(), 3);
    }

    #[test]
    fn nodes_at_enumerates_step_visits() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1)]);
        h.record_walk(&[NodeId(0), NodeId(2)]);
        let mut at1: Vec<(NodeId, u64)> = h.nodes_at(1).collect();
        at1.sort();
        assert_eq!(at1, vec![(NodeId(1), 1), (NodeId(2), 1)]);
        assert_eq!(h.nodes_at(5).count(), 0);
    }

    #[test]
    fn empty_walk_is_ignored_and_clear_resets() {
        let mut h = WalkHistory::new();
        h.record_walk(&[]);
        assert_eq!(h.walk_count(), 0);
        h.record_walk(&[NodeId(3)]);
        assert_eq!(h.walk_count(), 1);
        h.clear();
        assert_eq!(h.walk_count(), 0);
        assert_eq!(h.max_recorded_length(), 0);
    }

    #[test]
    fn variable_length_walks_extend_history() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1)]);
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(h.max_recorded_length(), 4);
        assert_eq!(h.count_at(NodeId(3), 3), 1);
    }

    #[test]
    fn shared_history_merge_matches_direct_recording() {
        let shared = SharedWalkHistory::new();
        let mut a = WalkHistory::new();
        a.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        a.record_walk(&[NodeId(0), NodeId(2), NodeId(2)]);
        let mut b = WalkHistory::new();
        b.record_walk(&[NodeId(0), NodeId(1), NodeId(1)]);
        shared.merge(&a);
        shared.merge(&b);
        shared.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(HistoryView::walk_count(&shared), 4);
        assert_eq!(HistoryView::count_at(&shared, NodeId(0), 0), 4);
        assert_eq!(HistoryView::count_at(&shared, NodeId(1), 1), 3);
        assert_eq!(HistoryView::count_at(&shared, NodeId(2), 2), 3);
        assert_eq!(HistoryView::count_at(&shared, NodeId(9), 1), 0);
        // Merging an empty history is a no-op.
        shared.merge(&WalkHistory::new());
        assert_eq!(HistoryView::walk_count(&shared), 4);
    }

    #[test]
    fn shared_history_concurrent_merges_lose_nothing() {
        let shared = SharedWalkHistory::shared();
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let shared = shared.clone();
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let mut local = WalkHistory::new();
                        local.record_walk(&[NodeId(0), NodeId(t), NodeId(i % 5)]);
                        shared.merge(&local);
                    }
                });
            }
        });
        assert_eq!(HistoryView::walk_count(&*shared), 800);
        assert_eq!(HistoryView::count_at(&*shared, NodeId(0), 0), 800);
        let step2: u64 = (0..5)
            .map(|i| HistoryView::count_at(&*shared, NodeId(i), 2))
            .sum();
        assert_eq!(step2, 800);
    }

    #[test]
    fn overlay_sums_base_and_pending() {
        let shared = SharedWalkHistory::new();
        shared.record_walk(&[NodeId(0), NodeId(1)]);
        let mut pending = WalkHistory::new();
        pending.record_walk(&[NodeId(0), NodeId(1)]);
        pending.record_walk(&[NodeId(0), NodeId(2)]);
        let overlay = OverlayHistory::new(&shared, &pending);
        assert_eq!(overlay.walk_count(), 3);
        assert_eq!(overlay.count_at(NodeId(1), 1), 2);
        assert_eq!(overlay.count_at(NodeId(2), 1), 1);
        assert_eq!(overlay.count_at(NodeId(0), 0), 3);
    }

    #[test]
    fn handle_flush_publishes_and_clears_pending() {
        let shared = SharedWalkHistory::shared();
        let mut handle = HistoryHandle::shared(shared.clone());
        handle.record_walk(&[NodeId(0), NodeId(3)]);
        // Before the flush the walk is visible to this handle only.
        assert_eq!(handle.view().count_at(NodeId(3), 1), 1);
        assert_eq!(HistoryView::count_at(&*shared, NodeId(3), 1), 0);
        handle.flush();
        assert_eq!(HistoryView::count_at(&*shared, NodeId(3), 1), 1);
        assert_eq!(
            handle.view().count_at(NodeId(3), 1),
            1,
            "no double counting after flush"
        );
        assert_eq!(handle.view().walk_count(), 1);
        // Local handles flush to nowhere.
        let mut local = HistoryHandle::default();
        local.record_walk(&[NodeId(7)]);
        local.flush();
        assert_eq!(local.view().count_at(NodeId(7), 0), 1);
    }
}
