//! History of forward walks, feeding the weighted-sampling heuristic.
//!
//! WALK-ESTIMATE repeatedly starts forward walks from the same node. The
//! weighted backward sampling of Algorithm 2 uses how often each node was
//! reached at each step of those past walks (`n_{u', t-1}` out of `n_hw`
//! walks) to focus backward steps on the neighbors that actually carry
//! probability mass.
//!
//! Four shapes of history live here:
//!
//! * [`WalkHistory`] — the plain single-walker structure;
//! * [`SharedWalkHistory`] — a lock-striped accumulator a pool of walkers
//!   merges into, so every walker's backward sampling benefits from *all*
//!   forward walks (the engine's cooperative mode);
//! * [`OverlayHistory`] — a shared snapshot plus a walker's not-yet-merged
//!   local walks, which is what a walker actually reads mid-round;
//! * [`FrozenHistory`] — an immutable snapshot of walks published by
//!   *completed prior jobs*, handed out by the service-scoped
//!   [`HistoryStore`] so a new job can start from the evidence its
//!   predecessors already paid for (cross-job reuse).
//!
//! The consumers ([`selection_distribution`](crate::estimate::weighted) and
//! the backward estimator) only need per-(node, step) counts, captured by the
//! [`HistoryView`] trait. Correctness never depends on *which* history a
//! walker sees: the importance-weighted backward estimator is unbiased for
//! any selection distribution with full support, so richer history only
//! reduces variance. That is also what makes cross-job reuse safe — a
//! [`ReuseCorrection`] merely *reweights* the reused evidence against the
//! job's own fresh walks; the ε floor of the selection distribution keeps
//! full support either way, so the estimator contract is never violated.
//!
//! # Epoch rule (snapshot-on-admit)
//!
//! The [`HistoryStore`] is versioned by a monotone **epoch**, bumped on
//! every publication. A job takes its [`FrozenHistory`] snapshot exactly
//! once, at admission, and reads that immutable snapshot for its whole
//! life: publications that land mid-job are *never* observed. Results under
//! shared policies are therefore a pure function of the store's contents at
//! admission — deterministic given an admission order — and the default
//! isolated policy (no snapshot, no publication) keeps today's
//! thread-count- and co-load-invariance exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use wnw_access::sync::{read, write};
use wnw_graph::NodeId;
use wnw_mcmc::RandomWalkKind;

/// Read access to per-(node, step) visit counts of past forward walks.
pub trait HistoryView: std::fmt::Debug {
    /// Number of recorded walks that were at `node` at step `step`.
    fn count_at(&self, node: NodeId, step: usize) -> u64;

    /// Number of walks recorded (`n_hw`).
    fn walk_count(&self) -> u64;
}

/// Per-step visit counts across all recorded forward walks.
#[derive(Debug, Clone, Default)]
pub struct WalkHistory {
    /// `counts[t][v]` = number of recorded walks that were at node `v` at
    /// step `t`.
    counts: Vec<HashMap<NodeId, u64>>,
    /// Number of walks recorded.
    walks: u64,
}

impl WalkHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a forward walk given its full path (`path[0]` is the start).
    pub fn record_walk(&mut self, path: &[NodeId]) {
        if path.is_empty() {
            return;
        }
        if self.counts.len() < path.len() {
            self.counts.resize_with(path.len(), HashMap::new);
        }
        for (step, &node) in path.iter().enumerate() {
            *self.counts[step].entry(node).or_insert(0) += 1;
        }
        self.walks += 1;
    }

    /// Number of walks recorded so far (`n_hw`).
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Number of recorded walks that were at `node` at step `step`
    /// (`n_{node, step}`).
    pub fn count_at(&self, node: NodeId, step: usize) -> u64 {
        self.counts
            .get(step)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    /// All nodes seen at `step`, with their counts.
    pub fn nodes_at(&self, step: usize) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.counts
            .get(step)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&n, &c)| (n, c)))
    }

    /// Longest recorded path length (steps + 1), 0 when empty.
    pub fn max_recorded_length(&self) -> usize {
        self.counts.len()
    }

    /// Clears all recorded walks.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.walks = 0;
    }

    /// Whether no walks are recorded.
    pub fn is_empty(&self) -> bool {
        self.walks == 0
    }
}

impl HistoryView for WalkHistory {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        WalkHistory::count_at(self, node, step)
    }

    fn walk_count(&self) -> u64 {
        WalkHistory::walk_count(self)
    }
}

/// Number of independent stripes of a [`SharedWalkHistory`]. Counts for step
/// `t` live in stripe `t % STRIPE_COUNT`, so walkers reading different steps
/// of the backward recursion rarely contend.
pub const STRIPE_COUNT: usize = 16;

/// A walk history shared by a pool of concurrent walkers.
///
/// Writers batch: a walker records its forward walks into a private
/// [`WalkHistory`] and [`merge`](Self::merge)s it in at synchronisation
/// points chosen by the engine (merging per walk would serialise the pool on
/// these locks). Counts are additive, so the merged result is identical
/// for every arrival order — this is what keeps the engine's cooperative
/// mode deterministic at any thread count.
///
/// Stripes are `RwLock`s because the engine's schedule makes the history
/// read-only between barriers: the backward-sampling hot loop takes cheap
/// shared read locks (all walkers probing the same step would otherwise
/// serialise on one stripe), while merges — confined to the barrier window —
/// take the write lock.
#[derive(Debug, Default)]
pub struct SharedWalkHistory {
    /// `stripes[t % STRIPE_COUNT]` holds `step → node → count` for its steps.
    stripes: [RwLock<HashMap<usize, HashMap<NodeId, u64>>>; STRIPE_COUNT],
    walks: AtomicU64,
}

impl SharedWalkHistory {
    /// Creates an empty shared history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty shared history behind an [`Arc`], ready to hand to
    /// walkers.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Merges all counts of `local` in (additively).
    pub fn merge(&self, local: &WalkHistory) {
        if local.is_empty() {
            return;
        }
        for step in 0..local.max_recorded_length() {
            let mut stripe = write(&self.stripes[step % STRIPE_COUNT]);
            for (node, count) in local.nodes_at(step) {
                *stripe.entry(step).or_default().entry(node).or_insert(0) += count;
            }
        }
        self.walks.fetch_add(local.walk_count(), Ordering::Relaxed);
    }

    /// Records one walk directly (convenience for tests and single callers;
    /// pools should batch through [`merge`](Self::merge)).
    pub fn record_walk(&self, path: &[NodeId]) {
        if path.is_empty() {
            return;
        }
        for (step, &node) in path.iter().enumerate() {
            let mut stripe = write(&self.stripes[step % STRIPE_COUNT]);
            *stripe.entry(step).or_default().entry(node).or_insert(0) += 1;
        }
        self.walks.fetch_add(1, Ordering::Relaxed);
    }

    /// Exports the accumulated counts as a plain [`WalkHistory`] — the shape
    /// the [`HistoryStore`] ingests when a job publishes its walks at reap.
    /// Counts are additive, so the export is identical whatever order the
    /// walkers merged in.
    pub fn export(&self) -> WalkHistory {
        let mut per_step: HashMap<usize, HashMap<NodeId, u64>> = HashMap::new();
        for stripe in &self.stripes {
            for (&step, nodes) in read(stripe).iter() {
                per_step.insert(step, nodes.clone());
            }
        }
        let len = per_step.keys().max().map_or(0, |&s| s + 1);
        let mut counts = Vec::with_capacity(len);
        counts.resize_with(len, HashMap::new);
        for (step, nodes) in per_step {
            counts[step] = nodes;
        }
        WalkHistory {
            counts,
            walks: self.walks.load(Ordering::Relaxed),
        }
    }
}

impl HistoryView for SharedWalkHistory {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        read(&self.stripes[step % STRIPE_COUNT])
            .get(&step)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    fn walk_count(&self) -> u64 {
        self.walks.load(Ordering::Relaxed)
    }
}

/// A shared history snapshot overlaid with a walker's not-yet-merged local
/// walks: counts are the sum of both layers.
#[derive(Debug, Clone, Copy)]
pub struct OverlayHistory<'a> {
    base: &'a SharedWalkHistory,
    pending: &'a WalkHistory,
}

impl<'a> OverlayHistory<'a> {
    /// Combines a shared base with a walker's pending local walks.
    pub fn new(base: &'a SharedWalkHistory, pending: &'a WalkHistory) -> Self {
        OverlayHistory { base, pending }
    }
}

impl HistoryView for OverlayHistory<'_> {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        self.base.count_at(node, step) + self.pending.count_at(node, step)
    }

    fn walk_count(&self) -> u64 {
        self.base.walk_count() + self.pending.walk_count()
    }
}

/// How reused (prior-job) walk counts are weighted against a job's own.
///
/// Reuse can never *bias* the estimator — the importance-weighted backward
/// estimator is unbiased for any selection distribution with full support,
/// and the ε floor guarantees full support — but stale evidence from an
/// earlier epoch can misdirect backward walks (e.g. when per-fetch
/// neighbor-subset restrictions answered differently then), costing
/// variance. The correction discounts reused counts so prior epochs never
/// fully drown a job's own observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReuseCorrection {
    /// Reused counts enter at half weight (rounded up, so a single historic
    /// visit is never erased): the job's own walks count 2:1 against
    /// inherited ones. The default for shared policies.
    #[default]
    Reweighted,
    /// Reused counts merge at face value, as if the job had walked them
    /// itself.
    Raw,
}

impl ReuseCorrection {
    /// The effective weight of a reused count.
    pub fn apply(&self, count: u64) -> u64 {
        match self {
            ReuseCorrection::Reweighted => count.div_ceil(2),
            ReuseCorrection::Raw => count,
        }
    }

    /// The wire/display label.
    pub fn label(&self) -> &'static str {
        match self {
            ReuseCorrection::Reweighted => "reweighted",
            ReuseCorrection::Raw => "raw",
        }
    }
}

/// What makes two jobs' walk histories compatible for reuse: forward walks
/// from the same starting node under the same walk design sample the same
/// Markov chain, so their per-(node, step) visit counts are exchangeable —
/// at *any* walk length, since step `t`'s distribution does not depend on
/// how much further a walk continued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryKey {
    /// The starting node of the forward walks.
    pub start: NodeId,
    /// The input walk design.
    pub kind: RandomWalkKind,
}

/// An immutable snapshot of the walk history published by completed prior
/// jobs, taken from the [`HistoryStore`] at job admission.
///
/// The snapshot never changes after it is handed out (snapshot-on-admit):
/// publications that land while a job runs are only visible to jobs
/// admitted later.
#[derive(Debug, Clone, Default)]
pub struct FrozenHistory {
    /// `counts[t][v]` across every published walk. Per-step maps are
    /// `Arc`-shared with the store's live aggregate (and with earlier
    /// snapshots): a publication clones only the steps its delta touches,
    /// so snapshot cost does not grow with the steps left untouched.
    counts: Vec<Arc<HashMap<NodeId, u64>>>,
    /// Number of published walks aggregated.
    walks: u64,
    /// Store epoch this snapshot was frozen at.
    epoch: u64,
    /// Unique-node query cost the publishing jobs spent building these
    /// walks — what a reusing job inherits without paying.
    acquisition_cost: u64,
}

impl FrozenHistory {
    /// Store epoch the snapshot was frozen at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Unique-node queries the publishers spent on the reused walks.
    pub fn acquisition_cost(&self) -> u64 {
        self.acquisition_cost
    }

    /// Number of published walks aggregated in this snapshot.
    pub fn walks(&self) -> u64 {
        self.walks
    }
}

impl HistoryView for FrozenHistory {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        self.counts
            .get(step)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    fn walk_count(&self) -> u64 {
        self.walks
    }
}

/// Point-in-time counters of a [`HistoryStore`] (plain integers, shaped for
/// a metrics endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistoryStoreStats {
    /// Snapshot requests answered with a non-empty [`FrozenHistory`].
    pub hits: u64,
    /// Snapshot requests that found nothing published for their key.
    pub misses: u64,
    /// Publications accepted. By construction always equal to
    /// [`epoch`](Self::epoch) (each accepted publication is one epoch
    /// bump); both names are kept because frontends surface both.
    pub publications: u64,
    /// Walks accepted across all publications.
    pub published_walks: u64,
    /// Walks handed out for reuse, summed over snapshot hits.
    pub reused_walks: u64,
    /// Unique-node query cost of the reused walk histories, summed over
    /// snapshot hits — the queries reusing jobs inherited instead of
    /// re-spending to build an equally rich history.
    pub reuse_savings: u64,
    /// Current store epoch (0 until the first publication).
    pub epoch: u64,
}

/// Per-key aggregate the store grows publication by publication.
///
/// Per-step maps are shared (`Arc`) with the frozen snapshots handed out:
/// a publication copy-on-writes only the steps its delta touches
/// (`Arc::make_mut`), so publishing stays proportional to the delta's
/// footprint instead of re-cloning the whole accumulated history.
#[derive(Debug, Default)]
struct KeyAggregate {
    counts: Vec<Arc<HashMap<NodeId, u64>>>,
    walks: u64,
    acquisition_cost: u64,
    /// Copy-on-publish snapshot handed to admitted jobs.
    frozen: Arc<FrozenHistory>,
}

/// A service-scoped, concurrent, epoch-versioned store of published walk
/// histories, keyed by [`HistoryKey`].
///
/// Jobs admitted under a shared policy [`snapshot`](Self::snapshot) the
/// store once, at admission, and read that frozen state for their whole
/// life; jobs under a publishing policy [`publish`](Self::publish) their
/// merged walks when they are reaped (terminal for any reason — a cancelled
/// job's partial history is still evidence). Each publication bumps the
/// store [`epoch`](Self::epoch), so "which publications had completed when
/// this job was admitted" fully determines what the job sees.
#[derive(Debug)]
pub struct HistoryStore {
    inner: RwLock<HashMap<HistoryKey, KeyAggregate>>,
    epoch: AtomicU64,
    /// Publications are refused for a key holding at least this many walks
    /// (0 = unlimited). Bounds the store's memory under sustained traffic.
    max_walks_per_key: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    published_walks: AtomicU64,
    reused_walks: AtomicU64,
    reuse_savings: AtomicU64,
}

/// Default per-key walk cap of a [`HistoryStore`].
pub const DEFAULT_MAX_WALKS_PER_KEY: u64 = 1 << 18;

impl Default for HistoryStore {
    /// Same as [`HistoryStore::new`]: the default per-key walk cap applies.
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryStore {
    /// An empty store with the default per-key walk cap.
    pub fn new() -> Self {
        Self::with_max_walks(DEFAULT_MAX_WALKS_PER_KEY)
    }

    /// An empty store refusing publications once a key holds `max_walks`
    /// walks (0 = unlimited).
    pub fn with_max_walks(max_walks: u64) -> Self {
        HistoryStore {
            inner: RwLock::default(),
            epoch: AtomicU64::new(0),
            max_walks_per_key: max_walks,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            published_walks: AtomicU64::new(0),
            reused_walks: AtomicU64::new(0),
            reuse_savings: AtomicU64::new(0),
        }
    }

    /// Current epoch: the number of accepted publications so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The frozen snapshot an admitted job should read, or `None` when
    /// nothing has been published for `key` yet. Records a hit or miss and,
    /// on a hit, credits the snapshot's walks and acquisition cost to the
    /// reuse counters.
    pub fn snapshot(&self, key: &HistoryKey) -> Option<Arc<FrozenHistory>> {
        let frozen = read(&self.inner)
            .get(key)
            .filter(|aggregate| aggregate.walks > 0)
            .map(|aggregate| Arc::clone(&aggregate.frozen));
        match &frozen {
            Some(snapshot) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.reused_walks
                    .fetch_add(snapshot.walks, Ordering::Relaxed);
                self.reuse_savings
                    .fetch_add(snapshot.acquisition_cost, Ordering::Relaxed);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        frozen
    }

    /// Publishes a reaped job's merged walk history under `key`, charging
    /// `acquisition_cost` (the job's own unique-node query cost) to the
    /// snapshot future reusers inherit. Returns whether the publication was
    /// accepted: empty histories and keys already at the walk cap are
    /// refused without bumping the epoch.
    pub fn publish(&self, key: HistoryKey, history: &WalkHistory, acquisition_cost: u64) -> bool {
        if history.is_empty() {
            return false;
        }
        let mut inner = write(&self.inner);
        let aggregate = inner.entry(key).or_default();
        if self.max_walks_per_key > 0 && aggregate.walks >= self.max_walks_per_key {
            return false;
        }
        if aggregate.counts.len() < history.max_recorded_length() {
            aggregate
                .counts
                .resize_with(history.max_recorded_length(), Arc::default);
        }
        for (step, step_counts) in aggregate.counts.iter_mut().enumerate() {
            let mut nodes = history.nodes_at(step).peekable();
            if nodes.peek().is_none() {
                // Untouched step: stays Arc-shared with prior snapshots.
                continue;
            }
            // Copy-on-write: clones the step's map only when it is still
            // shared with an earlier snapshot, and only for touched steps.
            let step_counts = Arc::make_mut(step_counts);
            for (node, count) in nodes {
                *step_counts.entry(node).or_insert(0) += count;
            }
        }
        aggregate.walks += history.walk_count();
        aggregate.acquisition_cost += acquisition_cost;
        // The epoch *is* the count of accepted publications (stats() reports
        // it under both names).
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        aggregate.frozen = Arc::new(FrozenHistory {
            counts: aggregate.counts.clone(),
            walks: aggregate.walks,
            epoch,
            acquisition_cost: aggregate.acquisition_cost,
        });
        self.published_walks
            .fetch_add(history.walk_count(), Ordering::Relaxed);
        true
    }

    /// A copy of every counter.
    pub fn stats(&self) -> HistoryStoreStats {
        let epoch = self.epoch();
        HistoryStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            publications: epoch,
            published_walks: self.published_walks.load(Ordering::Relaxed),
            reused_walks: self.reused_walks.load(Ordering::Relaxed),
            reuse_savings: self.reuse_savings.load(Ordering::Relaxed),
            epoch,
        }
    }
}

/// A frozen cross-job base under a job's live history: reused counts enter
/// through the [`ReuseCorrection`], live counts at face value.
#[derive(Debug, Clone, Copy)]
pub struct SeededHistory<'a> {
    base: &'a FrozenHistory,
    correction: ReuseCorrection,
    live: OverlayHistory<'a>,
}

impl HistoryView for SeededHistory<'_> {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        self.correction.apply(self.base.count_at(node, step)) + self.live.count_at(node, step)
    }

    fn walk_count(&self) -> u64 {
        self.correction.apply(self.base.walks) + self.live.walk_count()
    }
}

/// The history a sampler records into: its own, or a pool's shared one.
#[derive(Debug, Clone)]
pub enum HistoryHandle {
    /// A private history, as the single-threaded samplers use.
    Local(WalkHistory),
    /// A pool-shared history plus this walker's pending (unmerged) walks.
    Shared {
        /// The accumulator shared by the pool.
        shared: Arc<SharedWalkHistory>,
        /// Walks recorded since the last [`flush`](HistoryHandle::flush).
        pending: WalkHistory,
    },
    /// A pool-shared history seeded with a frozen cross-job base. Walks are
    /// recorded and flushed exactly like [`Shared`](HistoryHandle::Shared) —
    /// the base is read-only and never republished, so publication at reap
    /// exports only the job's own walks.
    Seeded {
        /// The frozen prior-jobs snapshot (taken at admission).
        base: Arc<FrozenHistory>,
        /// How the base's counts are weighted against the job's own.
        correction: ReuseCorrection,
        /// The accumulator shared by the pool.
        shared: Arc<SharedWalkHistory>,
        /// Walks recorded since the last [`flush`](HistoryHandle::flush).
        pending: WalkHistory,
    },
}

impl Default for HistoryHandle {
    fn default() -> Self {
        HistoryHandle::Local(WalkHistory::new())
    }
}

impl HistoryHandle {
    /// A handle merging into `shared`.
    pub fn shared(shared: Arc<SharedWalkHistory>) -> Self {
        HistoryHandle::Shared {
            shared,
            pending: WalkHistory::new(),
        }
    }

    /// A handle merging into `shared` whose reads are seeded with a frozen
    /// cross-job `base` weighted by `correction`.
    pub fn seeded(
        base: Arc<FrozenHistory>,
        correction: ReuseCorrection,
        shared: Arc<SharedWalkHistory>,
    ) -> Self {
        HistoryHandle::Seeded {
            base,
            correction,
            shared,
            pending: WalkHistory::new(),
        }
    }

    /// Records one forward walk.
    pub fn record_walk(&mut self, path: &[NodeId]) {
        match self {
            HistoryHandle::Local(h) => h.record_walk(path),
            HistoryHandle::Shared { pending, .. } | HistoryHandle::Seeded { pending, .. } => {
                pending.record_walk(path)
            }
        }
    }

    /// Publishes pending walks to the shared accumulator (no-op for local
    /// handles). The engine calls this at its round barriers.
    pub fn flush(&mut self) {
        match self {
            HistoryHandle::Local(_) => {}
            HistoryHandle::Shared { shared, pending }
            | HistoryHandle::Seeded {
                shared, pending, ..
            } => {
                shared.merge(pending);
                pending.clear();
            }
        }
    }

    /// The view a backward estimator should read: local counts, or the
    /// shared counts overlaid with this walker's pending walks (plus the
    /// corrected frozen base, for seeded handles).
    pub fn view(&self) -> HistoryViewRef<'_> {
        match self {
            HistoryHandle::Local(h) => HistoryViewRef::Local(h),
            HistoryHandle::Shared { shared, pending } => {
                HistoryViewRef::Overlay(OverlayHistory::new(shared, pending))
            }
            HistoryHandle::Seeded {
                base,
                correction,
                shared,
                pending,
            } => HistoryViewRef::Seeded(SeededHistory {
                base,
                correction: *correction,
                live: OverlayHistory::new(shared, pending),
            }),
        }
    }
}

/// A borrowed [`HistoryView`] produced by [`HistoryHandle::view`].
#[derive(Debug, Clone, Copy)]
pub enum HistoryViewRef<'a> {
    /// View of a private history.
    Local(&'a WalkHistory),
    /// View of a shared history plus pending local walks.
    Overlay(OverlayHistory<'a>),
    /// View of a corrected frozen base under a shared history plus pending
    /// local walks.
    Seeded(SeededHistory<'a>),
}

impl HistoryView for HistoryViewRef<'_> {
    fn count_at(&self, node: NodeId, step: usize) -> u64 {
        match self {
            HistoryViewRef::Local(h) => h.count_at(node, step),
            HistoryViewRef::Overlay(o) => o.count_at(node, step),
            HistoryViewRef::Seeded(s) => s.count_at(node, step),
        }
    }

    fn walk_count(&self) -> u64 {
        match self {
            HistoryViewRef::Local(h) => h.walk_count(),
            HistoryViewRef::Overlay(o) => o.walk_count(),
            HistoryViewRef::Seeded(s) => s.walk_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(1)]);
        assert_eq!(h.walk_count(), 2);
        assert_eq!(h.count_at(NodeId(0), 0), 2);
        assert_eq!(h.count_at(NodeId(1), 1), 2);
        assert_eq!(h.count_at(NodeId(2), 2), 1);
        assert_eq!(h.count_at(NodeId(1), 2), 1);
        assert_eq!(h.count_at(NodeId(9), 1), 0);
        assert_eq!(h.max_recorded_length(), 3);
    }

    #[test]
    fn nodes_at_enumerates_step_visits() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1)]);
        h.record_walk(&[NodeId(0), NodeId(2)]);
        let mut at1: Vec<(NodeId, u64)> = h.nodes_at(1).collect();
        at1.sort();
        assert_eq!(at1, vec![(NodeId(1), 1), (NodeId(2), 1)]);
        assert_eq!(h.nodes_at(5).count(), 0);
    }

    #[test]
    fn empty_walk_is_ignored_and_clear_resets() {
        let mut h = WalkHistory::new();
        h.record_walk(&[]);
        assert_eq!(h.walk_count(), 0);
        h.record_walk(&[NodeId(3)]);
        assert_eq!(h.walk_count(), 1);
        h.clear();
        assert_eq!(h.walk_count(), 0);
        assert_eq!(h.max_recorded_length(), 0);
    }

    #[test]
    fn variable_length_walks_extend_history() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1)]);
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(h.max_recorded_length(), 4);
        assert_eq!(h.count_at(NodeId(3), 3), 1);
    }

    #[test]
    fn shared_history_merge_matches_direct_recording() {
        let shared = SharedWalkHistory::new();
        let mut a = WalkHistory::new();
        a.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        a.record_walk(&[NodeId(0), NodeId(2), NodeId(2)]);
        let mut b = WalkHistory::new();
        b.record_walk(&[NodeId(0), NodeId(1), NodeId(1)]);
        shared.merge(&a);
        shared.merge(&b);
        shared.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(HistoryView::walk_count(&shared), 4);
        assert_eq!(HistoryView::count_at(&shared, NodeId(0), 0), 4);
        assert_eq!(HistoryView::count_at(&shared, NodeId(1), 1), 3);
        assert_eq!(HistoryView::count_at(&shared, NodeId(2), 2), 3);
        assert_eq!(HistoryView::count_at(&shared, NodeId(9), 1), 0);
        // Merging an empty history is a no-op.
        shared.merge(&WalkHistory::new());
        assert_eq!(HistoryView::walk_count(&shared), 4);
    }

    #[test]
    fn shared_history_concurrent_merges_lose_nothing() {
        let shared = SharedWalkHistory::shared();
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let shared = shared.clone();
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let mut local = WalkHistory::new();
                        local.record_walk(&[NodeId(0), NodeId(t), NodeId(i % 5)]);
                        shared.merge(&local);
                    }
                });
            }
        });
        assert_eq!(HistoryView::walk_count(&*shared), 800);
        assert_eq!(HistoryView::count_at(&*shared, NodeId(0), 0), 800);
        let step2: u64 = (0..5)
            .map(|i| HistoryView::count_at(&*shared, NodeId(i), 2))
            .sum();
        assert_eq!(step2, 800);
    }

    #[test]
    fn overlay_sums_base_and_pending() {
        let shared = SharedWalkHistory::new();
        shared.record_walk(&[NodeId(0), NodeId(1)]);
        let mut pending = WalkHistory::new();
        pending.record_walk(&[NodeId(0), NodeId(1)]);
        pending.record_walk(&[NodeId(0), NodeId(2)]);
        let overlay = OverlayHistory::new(&shared, &pending);
        assert_eq!(overlay.walk_count(), 3);
        assert_eq!(overlay.count_at(NodeId(1), 1), 2);
        assert_eq!(overlay.count_at(NodeId(2), 1), 1);
        assert_eq!(overlay.count_at(NodeId(0), 0), 3);
    }

    #[test]
    fn handle_flush_publishes_and_clears_pending() {
        let shared = SharedWalkHistory::shared();
        let mut handle = HistoryHandle::shared(shared.clone());
        handle.record_walk(&[NodeId(0), NodeId(3)]);
        // Before the flush the walk is visible to this handle only.
        assert_eq!(handle.view().count_at(NodeId(3), 1), 1);
        assert_eq!(HistoryView::count_at(&*shared, NodeId(3), 1), 0);
        handle.flush();
        assert_eq!(HistoryView::count_at(&*shared, NodeId(3), 1), 1);
        assert_eq!(
            handle.view().count_at(NodeId(3), 1),
            1,
            "no double counting after flush"
        );
        assert_eq!(handle.view().walk_count(), 1);
        // Local handles flush to nowhere.
        let mut local = HistoryHandle::default();
        local.record_walk(&[NodeId(7)]);
        local.flush();
        assert_eq!(local.view().count_at(NodeId(7), 0), 1);
    }

    fn key() -> HistoryKey {
        HistoryKey {
            start: NodeId(0),
            kind: RandomWalkKind::Simple,
        }
    }

    fn walks(paths: &[&[NodeId]]) -> WalkHistory {
        let mut h = WalkHistory::new();
        for path in paths {
            h.record_walk(path);
        }
        h
    }

    #[test]
    fn shared_history_export_round_trips_counts() {
        let shared = SharedWalkHistory::new();
        shared.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        shared.record_walk(&[NodeId(0), NodeId(1)]);
        let export = shared.export();
        assert_eq!(export.walk_count(), 2);
        assert_eq!(export.max_recorded_length(), 3);
        assert_eq!(export.count_at(NodeId(0), 0), 2);
        assert_eq!(export.count_at(NodeId(1), 1), 2);
        assert_eq!(export.count_at(NodeId(2), 2), 1);
        // An empty accumulator exports an empty history.
        assert!(SharedWalkHistory::new().export().is_empty());
    }

    #[test]
    fn store_snapshot_misses_until_published_then_hits() {
        let store = HistoryStore::new();
        assert_eq!(store.epoch(), 0);
        assert!(store.snapshot(&key()).is_none());
        assert!(store.publish(key(), &walks(&[&[NodeId(0), NodeId(1)]]), 40));
        assert_eq!(store.epoch(), 1);
        let snap = store.snapshot(&key()).expect("published key hits");
        assert_eq!(snap.walks(), 1);
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.acquisition_cost(), 40);
        assert_eq!(HistoryView::count_at(&*snap, NodeId(1), 1), 1);
        // A different key still misses.
        let other = HistoryKey {
            start: NodeId(9),
            kind: RandomWalkKind::MetropolisHastings,
        };
        assert!(store.snapshot(&other).is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.publications, 1);
        assert_eq!(stats.published_walks, 1);
        assert_eq!(stats.reused_walks, 1);
        assert_eq!(stats.reuse_savings, 40);
        assert_eq!(stats.epoch, 1);
    }

    #[test]
    fn snapshot_on_admit_is_frozen_against_later_publications() {
        let store = HistoryStore::new();
        store.publish(key(), &walks(&[&[NodeId(0), NodeId(1)]]), 10);
        let admitted = store.snapshot(&key()).unwrap();
        // A mid-job publication must not leak into the held snapshot.
        store.publish(key(), &walks(&[&[NodeId(0), NodeId(1)]]), 5);
        assert_eq!(admitted.walks(), 1);
        assert_eq!(HistoryView::count_at(&*admitted, NodeId(1), 1), 1);
        assert_eq!(admitted.epoch(), 1);
        // A job admitted after the second publication sees both.
        let later = store.snapshot(&key()).unwrap();
        assert_eq!(later.walks(), 2);
        assert_eq!(HistoryView::count_at(&*later, NodeId(1), 1), 2);
        assert_eq!(later.epoch(), 2);
        assert_eq!(later.acquisition_cost(), 15);
    }

    #[test]
    fn empty_and_over_cap_publications_are_refused() {
        let store = HistoryStore::with_max_walks(2);
        assert!(!store.publish(key(), &WalkHistory::new(), 99));
        assert_eq!(store.epoch(), 0);
        assert!(store.publish(key(), &walks(&[&[NodeId(0)], &[NodeId(0)]]), 7));
        // The key now holds 2 walks — at the cap, further publications are
        // refused and the epoch stays put.
        assert!(!store.publish(key(), &walks(&[&[NodeId(0)]]), 7));
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.stats().published_walks, 2);
    }

    #[test]
    fn reuse_correction_weights_counts() {
        assert_eq!(ReuseCorrection::Raw.apply(5), 5);
        assert_eq!(ReuseCorrection::Reweighted.apply(5), 3);
        assert_eq!(ReuseCorrection::Reweighted.apply(4), 2);
        // A single historic visit survives the discount.
        assert_eq!(ReuseCorrection::Reweighted.apply(1), 1);
        assert_eq!(ReuseCorrection::Reweighted.apply(0), 0);
        assert_eq!(ReuseCorrection::default(), ReuseCorrection::Reweighted);
        assert_eq!(ReuseCorrection::Reweighted.label(), "reweighted");
        assert_eq!(ReuseCorrection::Raw.label(), "raw");
    }

    #[test]
    fn seeded_handle_sums_corrected_base_and_live_layers() {
        let store = HistoryStore::new();
        store.publish(
            key(),
            &walks(&[
                &[NodeId(0), NodeId(1)],
                &[NodeId(0), NodeId(1)],
                &[NodeId(0), NodeId(1)],
            ]),
            12,
        );
        let base = store.snapshot(&key()).unwrap();
        let shared = SharedWalkHistory::shared();
        shared.record_walk(&[NodeId(0), NodeId(2)]);
        let mut handle = HistoryHandle::seeded(base.clone(), ReuseCorrection::Reweighted, shared);
        handle.record_walk(&[NodeId(0), NodeId(1)]);
        let view = handle.view();
        // Base 3 visits at (1,1) discounted to 2, plus the pending walk.
        assert_eq!(view.count_at(NodeId(1), 1), 3);
        assert_eq!(view.count_at(NodeId(2), 1), 1);
        // walk_count: ceil(3/2)=2 base + 1 shared + 1 pending.
        assert_eq!(view.walk_count(), 4);
        // Under Raw, the base enters at face value.
        let raw = HistoryHandle::seeded(base, ReuseCorrection::Raw, SharedWalkHistory::shared());
        assert_eq!(raw.view().count_at(NodeId(1), 1), 3);
        assert_eq!(raw.view().walk_count(), 3);
        // Flushing a seeded handle publishes only its own pending walks.
        handle.flush();
        if let HistoryHandle::Seeded { shared, .. } = &handle {
            assert_eq!(HistoryView::walk_count(&**shared), 2);
        } else {
            unreachable!();
        }
    }
}
