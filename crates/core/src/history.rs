//! History of forward walks, feeding the weighted-sampling heuristic.
//!
//! WALK-ESTIMATE repeatedly starts forward walks from the same node. The
//! weighted backward sampling of Algorithm 2 uses how often each node was
//! reached at each step of those past walks (`n_{u', t-1}` out of `n_hw`
//! walks) to focus backward steps on the neighbors that actually carry
//! probability mass.

use std::collections::HashMap;
use wnw_graph::NodeId;

/// Per-step visit counts across all recorded forward walks.
#[derive(Debug, Clone, Default)]
pub struct WalkHistory {
    /// `counts[t][v]` = number of recorded walks that were at node `v` at
    /// step `t`.
    counts: Vec<HashMap<NodeId, u64>>,
    /// Number of walks recorded.
    walks: u64,
}

impl WalkHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a forward walk given its full path (`path[0]` is the start).
    pub fn record_walk(&mut self, path: &[NodeId]) {
        if path.is_empty() {
            return;
        }
        if self.counts.len() < path.len() {
            self.counts.resize_with(path.len(), HashMap::new);
        }
        for (step, &node) in path.iter().enumerate() {
            *self.counts[step].entry(node).or_insert(0) += 1;
        }
        self.walks += 1;
    }

    /// Number of walks recorded so far (`n_hw`).
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Number of recorded walks that were at `node` at step `step`
    /// (`n_{node, step}`).
    pub fn count_at(&self, node: NodeId, step: usize) -> u64 {
        self.counts.get(step).and_then(|m| m.get(&node)).copied().unwrap_or(0)
    }

    /// All nodes seen at `step`, with their counts.
    pub fn nodes_at(&self, step: usize) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.counts.get(step).into_iter().flat_map(|m| m.iter().map(|(&n, &c)| (n, c)))
    }

    /// Longest recorded path length (steps + 1), 0 when empty.
    pub fn max_recorded_length(&self) -> usize {
        self.counts.len()
    }

    /// Clears all recorded walks.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.walks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(2)]);
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(1)]);
        assert_eq!(h.walk_count(), 2);
        assert_eq!(h.count_at(NodeId(0), 0), 2);
        assert_eq!(h.count_at(NodeId(1), 1), 2);
        assert_eq!(h.count_at(NodeId(2), 2), 1);
        assert_eq!(h.count_at(NodeId(1), 2), 1);
        assert_eq!(h.count_at(NodeId(9), 1), 0);
        assert_eq!(h.max_recorded_length(), 3);
    }

    #[test]
    fn nodes_at_enumerates_step_visits() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1)]);
        h.record_walk(&[NodeId(0), NodeId(2)]);
        let mut at1: Vec<(NodeId, u64)> = h.nodes_at(1).collect();
        at1.sort();
        assert_eq!(at1, vec![(NodeId(1), 1), (NodeId(2), 1)]);
        assert_eq!(h.nodes_at(5).count(), 0);
    }

    #[test]
    fn empty_walk_is_ignored_and_clear_resets() {
        let mut h = WalkHistory::new();
        h.record_walk(&[]);
        assert_eq!(h.walk_count(), 0);
        h.record_walk(&[NodeId(3)]);
        assert_eq!(h.walk_count(), 1);
        h.clear();
        assert_eq!(h.walk_count(), 0);
        assert_eq!(h.max_recorded_length(), 0);
    }

    #[test]
    fn variable_length_walks_extend_history() {
        let mut h = WalkHistory::new();
        h.record_walk(&[NodeId(0), NodeId(1)]);
        h.record_walk(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(h.max_recorded_length(), 4);
        assert_eq!(h.count_at(NodeId(3), 3), 1);
    }
}
