//! WALK-ESTIMATE applied to the "one long run" scheme — the extension the
//! paper sketches at the end of Section 6.1.
//!
//! The standard WALK-ESTIMATE performs many short runs and keeps only the
//! final node of each walk. Its one-long-run counterpart keeps *every* node
//! along a single continuing walk as a candidate, estimates the sampling
//! probability of each position, and applies acceptance-rejection per
//! candidate. Compared to the many-short-runs WE it amortises the forward
//! walking cost across several candidates per pass, at the price of
//! correlated samples — the usual one-long-run trade-off, quantified by
//! [`effective_sample_size`](wnw_mcmc::effective_sample_size).
//!
//! The sampling probability of the node at step `t` of the continuing walk is
//! not stationary (that is the whole point of not waiting), so each candidate
//! at absolute step `t` is estimated exactly like a short-walk candidate with
//! walk length `min(t, t_max)`: beyond `t_max = 2·walk_length` steps the
//! distribution changes so little that the estimate for `t_max` is reused —
//! the same "estimate only as far back as matters" reasoning that motivates
//! the short walk in the first place.

use crate::config::WalkEstimateConfig;
use crate::estimate::crawl::InitialCrawl;
use crate::estimate::estimator::ProbabilityEstimator;
use crate::history::WalkHistory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wnw_access::{Result, SocialNetwork};
use wnw_graph::NodeId;
use wnw_mcmc::rejection::acceptance_probability;
use wnw_mcmc::sampler::{SampleRecord, Sampler};
use wnw_mcmc::transition::{RandomWalkKind, TargetDistribution};
use wnw_mcmc::walker;

/// One-long-run WALK-ESTIMATE: a single continuing walk whose positions are
/// individually corrected to the target distribution.
pub struct WalkEstimateLongRunSampler<N: SocialNetwork> {
    osn: N,
    kind: RandomWalkKind,
    config: WalkEstimateConfig,
    start: NodeId,
    walk_length: usize,
    estimator: ProbabilityEstimator,
    crawl: Option<InitialCrawl>,
    history: WalkHistory,
    observed_ratios: Vec<f64>,
    rng: StdRng,
    current: NodeId,
    /// Absolute step index of `current` within the continuing walk.
    step: usize,
    /// Path of the continuing walk (feeds the weighted-sampling history).
    path: Vec<NodeId>,
}

impl<N: SocialNetwork> WalkEstimateLongRunSampler<N> {
    /// Creates a sampler starting from `osn.seed_node()`.
    pub fn new(osn: N, kind: RandomWalkKind, config: WalkEstimateConfig, seed: u64) -> Self {
        let start = osn.seed_node();
        let walk_length = config.walk_length.resolve(None);
        let estimator = ProbabilityEstimator::from_config(kind, &config);
        WalkEstimateLongRunSampler {
            osn,
            kind,
            config,
            start,
            walk_length,
            estimator,
            crawl: None,
            history: WalkHistory::new(),
            observed_ratios: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            current: start,
            step: 0,
            path: vec![start],
        }
    }

    /// Re-resolves the walk length with a concrete diameter estimate.
    pub fn with_diameter_estimate(mut self, diameter: usize) -> Self {
        self.walk_length = self.config.walk_length.resolve(Some(diameter));
        self
    }

    /// The wrapped access layer.
    pub fn network(&self) -> &N {
        &self.osn
    }

    /// Total steps taken by the continuing walk so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    fn ensure_crawl(&mut self) -> Result<()> {
        if self.config.variant.uses_crawl() && self.crawl.is_none() && self.config.crawl_depth > 0 {
            self.crawl = Some(InitialCrawl::build(
                &self.osn,
                self.kind,
                self.start,
                self.config.crawl_depth,
            )?);
        }
        Ok(())
    }

    /// The walk length whose distribution is used to price the candidate at
    /// the current absolute step: capped at `2 × walk_length` because the
    /// distribution barely moves after that (the diminishing-returns
    /// observation of Section 4.1).
    fn effective_walk_length(&self) -> usize {
        self.step.min(2 * self.walk_length).max(1)
    }
}

impl<N: SocialNetwork> Sampler for WalkEstimateLongRunSampler<N> {
    fn draw(&mut self) -> Result<SampleRecord> {
        self.ensure_crawl()?;
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            // Advance the continuing walk by one step and consider the new
            // position a candidate.
            self.current = walker::step(&self.osn, self.kind, self.current, &mut self.rng)?;
            self.step += 1;
            self.path.push(self.current);
            // Feed the weighted-sampling history with the prefix that matters
            // for backward estimation (positions up to the capped length).
            if self.path.len() <= 2 * self.walk_length + 1 {
                self.history.record_walk(&self.path);
            }

            let t = self.effective_walk_length();
            let history: Option<&dyn crate::history::HistoryView> =
                if self.config.variant.uses_weighted_sampling() {
                    Some(&self.history)
                } else {
                    None
                };
            // For steps beyond the cap the walk no longer starts at `start`
            // from the estimator's point of view; the estimate of p_t is
            // performed against the *original* start, which stays valid
            // because the distribution after the cap changes negligibly.
            let estimate = self.estimator.estimate_single(
                &self.osn,
                self.current,
                self.start,
                t,
                self.crawl.as_ref(),
                history,
                &mut self.rng,
            )?;
            let degree = self.osn.degree(self.current)?;
            let target_weight = self.kind.target().weight(degree);
            // Same bound as the short-run sampler: the percentile bootstrap
            // stabilises after a few thousand ratios.
            const MAX_OBSERVED_RATIOS: usize = 4096;
            if estimate.probability > 0.0
                && target_weight > 0.0
                && self.observed_ratios.len() < MAX_OBSERVED_RATIOS
            {
                self.observed_ratios
                    .push(estimate.probability / target_weight);
            }
            let scale = self.config.scaling_factor.resolve(&self.observed_ratios);
            let accept = match scale {
                None => true,
                Some(scale) => {
                    let beta = acceptance_probability(estimate.probability, target_weight, scale);
                    self.rng.gen::<f64>() < beta
                }
            };
            if accept || attempts >= self.config.max_attempts_per_sample {
                return Ok(SampleRecord {
                    node: self.current,
                    query_cost: self.osn.query_cost(),
                    attempts,
                });
            }
        }
    }

    fn target(&self) -> TargetDistribution {
        self.kind.target()
    }

    fn name(&self) -> String {
        format!(
            "{}-long-run({})",
            self.config.variant.label(),
            self.kind.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_access::{QueryBudget, SimulatedOsn};
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_mcmc::{collect_samples, effective_sample_size};

    fn graph(seed: u64) -> wnw_graph::Graph {
        barabasi_albert(400, 3, seed).unwrap()
    }

    #[test]
    fn produces_valid_samples_with_monotone_cost() {
        let g = graph(3);
        let osn = SimulatedOsn::new(g.clone());
        let mut sampler = WalkEstimateLongRunSampler::new(
            osn,
            RandomWalkKind::MetropolisHastings,
            WalkEstimateConfig::default(),
            7,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 15).unwrap();
        assert_eq!(run.len(), 15);
        assert!(sampler.steps_taken() >= 15);
        let mut last = 0;
        for s in &run.samples {
            assert!(g.contains(s.node));
            assert!(s.query_cost >= last);
            last = s.query_cost;
        }
        assert_eq!(sampler.name(), "WE-long-run(MHRW)");
        assert_eq!(sampler.target(), TargetDistribution::Uniform);
    }

    #[test]
    fn long_run_amortises_forward_walking() {
        // The amortisation claim of Section 6.1, stated on the quantity that
        // is deterministic: the continuing walk advances one step per
        // candidate instead of re-walking the full short-walk length, so its
        // total forward steps stay well below `samples × walk_length`.
        // (Unique-node query costs also tend to be lower, but that depends on
        // how much the short walks overlap around the start node, so it is
        // not asserted here.)
        let g = graph(5);
        let samples = 25;

        let osn_short = SimulatedOsn::new(g.clone());
        let short = crate::sampler::WalkEstimateSampler::new(
            osn_short,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default(),
            11,
        )
        .with_diameter_estimate(4);
        let short_walk_length = short.walk_length();

        let osn_long = SimulatedOsn::new(g);
        let mut long = WalkEstimateLongRunSampler::new(
            osn_long.clone(),
            RandomWalkKind::Simple,
            WalkEstimateConfig::default(),
            11,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut long, samples).unwrap();
        assert_eq!(run.len(), samples);

        let total_attempts: usize = run.samples.iter().map(|s| s.attempts as usize).sum();
        assert_eq!(
            long.steps_taken(),
            total_attempts,
            "one forward step per candidate"
        );
        assert!(
            long.steps_taken() < samples * short_walk_length,
            "long run took {} forward steps, short runs would take at least {}",
            long.steps_taken(),
            samples * short_walk_length
        );
    }

    #[test]
    fn long_run_samples_are_correlated() {
        // The price of amortisation: consecutive samples are nearby on the
        // graph, so the effective sample size of their degree sequence is
        // well below the raw count.
        let g = graph(7);
        let osn = SimulatedOsn::new(g.clone());
        let mut sampler = WalkEstimateLongRunSampler::new(
            osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default(),
            13,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 60).unwrap();
        let degrees: Vec<f64> = run.nodes().iter().map(|&v| g.degree(v) as f64).collect();
        let ess = effective_sample_size(&degrees);
        assert!(ess <= 60.0);
    }

    #[test]
    fn budget_exhaustion_stops_cleanly() {
        let osn = SimulatedOsn::builder(graph(9))
            .budget(QueryBudget(60))
            .build();
        let mut sampler = WalkEstimateLongRunSampler::new(
            osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default(),
            17,
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut sampler, 10_000).unwrap();
        assert!(run.budget_exhausted);
        assert!(run.final_query_cost() <= 60);
    }
}
