//! The gateway server: a readiness loop over non-blocking sockets,
//! routing requests over one [`SamplingService`].
//!
//! Concurrency model: `io_threads` (default 2) readiness loops share one
//! non-blocking `TcpListener` and step every connection they own through
//! its [`Conn`] state machine — accumulate request bytes, route, buffer
//! NDJSON stream events, write on writability. No thread ever blocks on a
//! socket, so the thread count bounds *CPU* concurrency only: thousands
//! of slow or idle streaming clients cost two threads, not thousands.
//! Work that can block or compute (job submission, metrics snapshots,
//! trace replays) is handed to a small task pool of `workers` threads
//! whose replies re-arm the waiting connection.
//!
//! Load shedding happens at `max_connections`: a connection beyond the
//! cap is answered `503`, half-closed, and linger-drained so the client
//! reads the status instead of a connection reset — the same
//! shed-don't-queue philosophy as the service's admission control.
//!
//! Client disconnects during a stream surface as write errors or write
//! stalls; the connection drops its claimed
//! [`SampleStream`](wnw_service::SampleStream), which is the service's
//! consumer-hang-up signal: the scheduler cancels the job at the next
//! delivery and refunds its unused budget.

use crate::conn::{Conn, ConnLimits, Step};
use crate::http::{
    error_bytes, is_idle_timeout, json_bytes, response_bytes, Request, RequestParser,
};
use crate::json::{self, Json};
use crate::{prom, wire};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wnw_access::interface::ThreadedNetwork;
use wnw_service::{
    AdmissionError, ClaimError, JobId, JobRegistry, SamplingService, ServiceMetricsSnapshot,
};

/// Tuning knobs of a [`GatewayServer`].
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Task-pool threads for blocking work (job submission, metrics and
    /// trace snapshots). Streaming clients do NOT occupy these — they
    /// live on the I/O threads. Default 4.
    pub workers: usize,
    /// Connections accepted per readiness tick per I/O thread (an accept
    /// burst bound, not a queue depth). Default 64.
    pub backlog: usize,
    /// Readiness-loop threads carrying every connection. Default 2.
    pub io_threads: usize,
    /// Open connections beyond which new arrivals are shed with `503`.
    /// Default 1024.
    pub max_connections: usize,
    /// Largest accepted request body. Default 64 KiB.
    pub max_body_bytes: usize,
    /// Whole-request deadline (a stalled partial request gets `408`) and
    /// keep-alive idle reap timeout. Default 5 s.
    pub read_timeout: Duration,
    /// How long a connection's pending bytes may make zero write progress
    /// before the peer counts as wedged (dropping the connection cancels
    /// and refunds a streamed job). Default 5 s.
    pub write_timeout: Duration,
    /// How long a submitted job's stream may sit unclaimed before the
    /// gateway reaps it (cancelling the job and refunding its budget, via
    /// [`JobRegistry::sweep_unclaimed`]). Bounds the memory and query
    /// budget a fire-and-forget submitter can burn. Default 60 s.
    pub claim_ttl: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            backlog: 64,
            io_threads: 2,
            max_connections: 1024,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            claim_ttl: Duration::from_secs(60),
        }
    }
}

/// Shared state of all gateway threads.
struct State<N: ThreadedNetwork + 'static> {
    service: SamplingService<N>,
    registry: JobRegistry,
    config: GatewayConfig,
    shutdown: AtomicBool,
    /// Open connections across all I/O threads (shed gate).
    connections: AtomicUsize,
    /// When the gateway came up — `/healthz` reports the uptime.
    started: Instant,
}

/// A blocking unit of work dispatched to the task pool; it delivers its
/// response bytes through the channel captured inside.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// An HTTP/1.1 frontend over a [`SamplingService`], bound to a loopback (or
/// any TCP) address.
///
/// | Route | Meaning |
/// |---|---|
/// | `POST /v1/jobs` | submit a sampling request (JSON body) |
/// | `GET /v1/jobs/{id}/stream` | chunked NDJSON event stream of the job |
/// | `DELETE /v1/jobs/{id}` | cooperative cancel |
/// | `GET /v1/metrics` | service metrics snapshot (JSON) |
/// | `GET /v1/metrics/prometheus` | Prometheus text exposition of the same snapshot |
/// | `GET /v1/jobs/{id}/trace` | the job's lifecycle trace events (JSON array) |
/// | `GET /healthz` | liveness probe (`status` `ok`/`degraded`, `version`, `uptime_seconds`, breaker + fault counts when a resilience monitor is attached) |
///
/// See the [crate docs](crate) for the wire format and a walkthrough.
#[derive(Debug)]
pub struct GatewayServer<N: ThreadedNetwork + 'static> {
    addr: SocketAddr,
    /// `None` only transiently inside [`shutdown`](Self::shutdown), after
    /// the threads are joined (defuses the `Drop` teardown).
    state: Option<Arc<State<N>>>,
    io_threads: Vec<JoinHandle<()>>,
    task_threads: Vec<JoinHandle<()>>,
}

// Manual Debug for State would drag N: Debug bounds around; the server's
// Debug only needs the address.
impl<N: ThreadedNetwork + 'static> std::fmt::Debug for State<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("registry_len", &self.registry.len())
            .finish_non_exhaustive()
    }
}

impl<N: ThreadedNetwork + 'static> GatewayServer<N> {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and starts serving `service` with the default configuration.
    pub fn bind(service: SamplingService<N>, addr: &str) -> io::Result<Self> {
        Self::bind_with(service, addr, GatewayConfig::default())
    }

    /// Binds `addr` with an explicit configuration.
    pub fn bind_with(
        service: SamplingService<N>,
        addr: &str,
        config: GatewayConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let state = Arc::new(State {
            service,
            registry: JobRegistry::default(),
            config,
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            started: Instant::now(),
        });

        let (task_tx, task_rx) = std::sync::mpsc::channel::<Task>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let task_threads = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&task_rx);
                std::thread::Builder::new()
                    .name(format!("wnw-gateway-task-{i}"))
                    .spawn(move || task_loop(rx))
                    .expect("spawn gateway task worker")
            })
            .collect();
        let io_threads = (0..config.io_threads.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let state = Arc::clone(&state);
                let tasks = task_tx.clone();
                std::thread::Builder::new()
                    .name(format!("wnw-gateway-io-{i}"))
                    .spawn(move || io_loop(listener, state, tasks))
                    .expect("spawn gateway io thread")
            })
            .collect();
        // The I/O threads hold the only task senders: once they exit, the
        // task workers drain the queue and exit too.
        drop(task_tx);

        Ok(GatewayServer {
            addr,
            state: Some(state),
            io_threads,
            task_threads,
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the underlying service's metrics.
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.state
            .as_ref()
            .expect("state present until shutdown")
            .service
            .metrics()
    }

    /// Stops accepting, cancels every registered job so in-flight streams
    /// reach their `Done` event promptly, drains the I/O and task
    /// threads, shuts the service down, and returns its final metrics
    /// snapshot.
    pub fn shutdown(mut self) -> ServiceMetricsSnapshot {
        self.stop_threads();
        let state = self.state.take().expect("shutdown runs once");
        match Arc::try_unwrap(state) {
            Ok(state) => state.service.shutdown(),
            // All threads were joined, so this Arc is unique; if that ever
            // stops holding, the service still drains when the last clone
            // drops — return the best snapshot available.
            Err(state) => state.service.metrics(),
        }
    }

    fn stop_threads(&mut self) {
        let Some(state) = self.state.as_ref() else {
            return;
        };
        state.shutdown.store(true, Ordering::SeqCst);
        // Streams buffered by connections end once their jobs go terminal.
        state.registry.cancel_all();
        for handle in self.io_threads.drain(..) {
            let _ = handle.join();
        }
        // The I/O threads held the task senders; the workers now drain
        // whatever was queued and exit.
        for handle in self.task_threads.drain(..) {
            let _ = handle.join();
        }
        // A task worker may have been mid-submit when the first
        // cancel_all ran, registering its job just after. Every thread is
        // joined now, so the registry is quiescent; cancel again so the
        // service drain never waits on a straggler running to completion.
        state.registry.cancel_all();
    }
}

impl<N: ThreadedNetwork + 'static> Drop for GatewayServer<N> {
    /// Dropping the server tears the HTTP threads down and drains the
    /// service like [`shutdown`](Self::shutdown), discarding the snapshot.
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn task_loop(rx: Arc<Mutex<Receiver<Task>>>) {
    loop {
        let task = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
        match task {
            Ok(task) => task(),
            Err(_) => return, // every sender gone: shutdown.
        }
    }
}

/// Idle backoff bounds of a readiness loop: sleep briefly when a tick
/// moved nothing, doubling up to the cap so an idle gateway costs ~nothing
/// while a busy one spins flat out.
const MIN_IDLE_SLEEP: Duration = Duration::from_micros(100);
const MAX_IDLE_SLEEP: Duration = Duration::from_millis(2);
/// Steps one connection may take back-to-back in a tick before yielding
/// to its neighbours (fairness under pipelining).
const MAX_STEPS_PER_TICK: usize = 8;

fn io_loop<N: ThreadedNetwork + 'static>(
    listener: Arc<TcpListener>,
    state: Arc<State<N>>,
    tasks: Sender<Task>,
) {
    let parser = RequestParser::new(state.config.max_body_bytes);
    let limits = ConnLimits::for_config(&state.config);
    let mut conns: Vec<Conn<TcpStream>> = Vec::new();
    let mut idle_sleep = MIN_IDLE_SLEEP;
    while !state.shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        let mut progressed = false;

        // Accept a bounded burst of new connections.
        for _ in 0..state.config.backlog.max(1) {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let mut conn = Conn::new(stream, parser, limits, now);
                    let open = state.connections.fetch_add(1, Ordering::SeqCst);
                    if open >= state.config.max_connections {
                        conn.shed(now);
                    }
                    conns.push(conn);
                }
                Err(e) if is_idle_timeout(&e) => break,
                Err(_) => break,
            }
        }

        // Step every connection; remove the finished ones.
        let mut i = 0;
        while i < conns.len() {
            let mut done = false;
            for _ in 0..MAX_STEPS_PER_TICK {
                match conns[i].step(now, &state.registry) {
                    Step::Route(request) => {
                        progressed = true;
                        route(&state, &tasks, &mut conns[i], &request, now);
                    }
                    Step::Progress => progressed = true,
                    Step::Idle => break,
                    Step::Done => {
                        done = true;
                        break;
                    }
                }
            }
            if done {
                conns.swap_remove(i);
                state.connections.fetch_sub(1, Ordering::SeqCst);
            } else {
                i += 1;
            }
        }

        if progressed {
            idle_sleep = MIN_IDLE_SLEEP;
        } else {
            std::thread::sleep(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(MAX_IDLE_SLEEP);
        }
    }
    // Shutdown: dropping the connections drops their claimed streams (the
    // hang-up signal for any job the registry cancel missed).
    state.connections.fetch_sub(conns.len(), Ordering::SeqCst);
}

/// Routes one parsed request on the I/O thread. Cheap lookups answer
/// inline; anything that can block is dispatched to the task pool and the
/// connection parks in its waiting state.
fn route<N: ThreadedNetwork + 'static>(
    state: &Arc<State<N>>,
    tasks: &Sender<Task>,
    conn: &mut Conn<TcpStream>,
    request: &Request,
    now: Instant,
) {
    // During shutdown, answer the in-flight request but stop reusing the
    // connection so the I/O loop can exit.
    let keep_alive = request.keep_alive() && !state.shutdown.load(Ordering::SeqCst);
    let close = !keep_alive;
    let segments = request.path_segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            conn.push_response(now, json_bytes(200, &health_json(state), close), keep_alive);
        }
        ("GET", ["v1", "metrics"]) => {
            let state = Arc::clone(state);
            dispatch(tasks, conn, keep_alive, move || {
                json_bytes(200, &wire::metrics_to_json(&state.service.metrics()), close)
            });
        }
        ("GET", ["v1", "metrics", "prometheus"]) => {
            let state = Arc::clone(state);
            dispatch(tasks, conn, keep_alive, move || {
                let body = prom::exposition(&state.service.metrics());
                response_bytes(200, "text/plain; version=0.0.4", body.as_bytes(), close)
            });
        }
        ("GET", ["v1", "jobs", id, "trace"]) => {
            let state = Arc::clone(state);
            let id = id.to_string();
            dispatch(tasks, conn, keep_alive, move || {
                let events = parse_id(&id).map_or_else(Vec::new, |id| state.service.trace_of(id));
                if events.is_empty() {
                    // Unknown job, tracing off, or the ring evicted it.
                    error_bytes(404, "no trace for job", close)
                } else {
                    let body = Json::Arr(events.iter().map(wire::trace_event_to_json).collect());
                    json_bytes(200, &body, close)
                }
            });
        }
        ("POST", ["v1", "jobs"]) => {
            let state = Arc::clone(state);
            let body = request.body.clone();
            dispatch(tasks, conn, keep_alive, move || {
                submit_response(&state, &body, close)
            });
        }
        // Claiming is a cheap registry lookup, and the stream must attach
        // to this connection's state machine — always inline. Stream
        // responses (and their claim errors, as before) close the
        // connection.
        ("GET", ["v1", "jobs", id, "stream"]) => match parse_id(id)
            .ok_or(ClaimError::Unknown)
            .and_then(|id| state.registry.claim_stream(id).map(|s| (s, id)))
        {
            Ok((stream, id)) => conn.begin_stream(stream, id),
            Err(ClaimError::Unknown) => {
                conn.push_response(now, error_bytes(404, "unknown job", true), false);
            }
            Err(ClaimError::AlreadyClaimed) => {
                conn.push_response(now, error_bytes(409, "stream already claimed", true), false);
            }
        },
        ("DELETE", ["v1", "jobs", id]) => match parse_id(id) {
            Some(id) if state.registry.cancel(id) => {
                let body = Json::obj(vec![
                    ("job_id", Json::UInt(id.0)),
                    ("cancelled", Json::Bool(true)),
                ]);
                conn.push_response(now, json_bytes(200, &body, close), keep_alive);
            }
            _ => conn.push_response(now, error_bytes(404, "unknown job", close), keep_alive),
        },
        // Known paths under the wrong method get a 405, unknown paths 404.
        (_, ["healthz"])
        | (_, ["v1", "metrics"])
        | (_, ["v1", "metrics", "prometheus"])
        | (_, ["v1", "jobs"])
        | (_, ["v1", "jobs", _, "stream"])
        | (_, ["v1", "jobs", _, "trace"])
        | (_, ["v1", "jobs", _]) => {
            conn.push_response(
                now,
                error_bytes(405, "method not allowed", close),
                keep_alive,
            );
        }
        _ => conn.push_response(now, error_bytes(404, "no such route", close), keep_alive),
    }
}

/// Parks `conn` and runs `work` on the task pool; the reply re-arms the
/// connection. If the pool is gone (shutdown), the dropped sender
/// surfaces as `500` + close on the next step.
fn dispatch<F>(tasks: &Sender<Task>, conn: &mut Conn<TcpStream>, keep_alive: bool, work: F)
where
    F: FnOnce() -> Vec<u8> + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(1);
    conn.begin_wait(rx, keep_alive);
    let task: Task = Box::new(move || {
        // The connection may have died while we computed; nothing to do.
        let _ = tx.send(work());
    });
    let _ = tasks.send(task);
}

/// The `/healthz` body. With a resilience monitor attached, an open
/// circuit breaker downgrades the probe to "degraded" (still 200: the
/// gateway is alive and serving, the backend is shedding) and the body
/// carries the breaker and fault counts a prober needs to alert on.
/// Without a monitor the original three-field shape is kept.
fn health_json<N: ThreadedNetwork + 'static>(state: &State<N>) -> Json {
    let resilience = state.service.resilience().map(|m| m.stats());
    let degraded = resilience.is_some_and(|s| s.breaker_open);
    let mut fields = vec![
        (
            "status",
            Json::str(if degraded { "degraded" } else { "ok" }),
        ),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        (
            "uptime_seconds",
            Json::UInt(state.started.elapsed().as_secs()),
        ),
    ];
    if let Some(stats) = resilience {
        fields.push(("breaker_open", Json::Bool(stats.breaker_open)));
        fields.push(("breaker_opened", Json::UInt(stats.breaker_opened)));
        fields.push(("breaker_fast_fails", Json::UInt(stats.breaker_fast_fails)));
        fields.push(("faults_seen", Json::UInt(stats.faults_seen)));
        fields.push(("retries_exhausted", Json::UInt(stats.retries_exhausted)));
    }
    Json::obj(fields)
}

/// `POST /v1/jobs` on the task pool: sweep, parse, submit, register,
/// answer `202` with the id.
fn submit_response<N: ThreadedNetwork + 'static>(
    state: &State<N>,
    body: &[u8],
    close: bool,
) -> Vec<u8> {
    // Reap fire-and-forget jobs whose streams were never claimed: they are
    // still burning query budget and buffering events. Sweeping on every
    // submission bounds the unclaimed population by the submission rate
    // within one TTL window.
    state.registry.sweep_unclaimed(state.config.claim_ttl);
    let request = match std::str::from_utf8(body)
        .map_err(|_| "request body is not UTF-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
        .and_then(|json| wire::sample_request_from_json(&json))
    {
        Ok(sample_request) => sample_request,
        Err(message) => return error_bytes(400, &message, close),
    };
    match state.service.submit(request) {
        Ok(ticket) => {
            let id = state.registry.register(ticket);
            let body = Json::obj(vec![
                ("job_id", Json::UInt(id.0)),
                ("stream", Json::Str(format!("/v1/jobs/{}/stream", id.0))),
            ]);
            json_bytes(202, &body, close)
        }
        Err(err @ AdmissionError::Invalid(_)) => error_bytes(400, &err.to_string(), close),
        Err(err @ (AdmissionError::Saturated { .. } | AdmissionError::ShuttingDown)) => {
            error_bytes(503, &err.to_string(), close)
        }
    }
}

fn parse_id(text: &str) -> Option<JobId> {
    text.parse::<u64>().ok().map(JobId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use std::io::{Read, Write};
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::random::barabasi_albert;

    fn server() -> GatewayServer<SimulatedOsn> {
        let osn = SimulatedOsn::new(barabasi_albert(400, 3, 5).unwrap());
        let service = SamplingService::builder(osn).pool_threads(1).build();
        GatewayServer::bind(service, "127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn health_metrics_and_unknown_routes() {
        let server = server();
        let addr = server.local_addr();
        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        let health = health.json().unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            health.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(health.get("uptime_seconds").unwrap().as_u64().is_some());
        assert!(
            health.get("breaker_open").is_none(),
            "without a resilience monitor the probe keeps its three-field shape"
        );

        let metrics = client::get(addr, "/v1/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let doc = metrics.json().unwrap();
        assert_eq!(doc.get("jobs_submitted").unwrap().as_u64(), Some(0));
        assert!(doc.get("shared_cache_savings").is_some());
        assert!(doc.get("max_queue_wait_ms").is_some());
        assert!(doc.get("pool").unwrap().get("unique_nodes").is_some());

        assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
        assert_eq!(
            client::get(addr, "/v1/jobs/xyz/stream").unwrap().status,
            404
        );
        assert_eq!(client::delete(addr, "/v1/jobs/99").unwrap().status, 404);
        assert_eq!(client::get(addr, "/v1/jobs/99/trace").unwrap().status, 404);
        // Wrong method on a known path.
        assert_eq!(client::delete(addr, "/healthz").unwrap().status, 405);
        assert_eq!(client::get(addr, "/v1/jobs").unwrap().status, 405);
        assert_eq!(
            client::delete(addr, "/v1/metrics/prometheus")
                .unwrap()
                .status,
            405
        );
        assert_eq!(
            client::delete(addr, "/v1/jobs/1/trace").unwrap().status,
            405
        );
        server.shutdown();
    }

    #[test]
    fn healthz_reports_degraded_while_the_breaker_is_open() {
        use wnw_access::interface::SocialNetwork;
        use wnw_access::{FaultProfile, FaultyNetwork, ResilientNetwork, RetryPolicy};
        use wnw_graph::NodeId;

        let faulty = FaultyNetwork::new(
            SimulatedOsn::new(barabasi_albert(200, 3, 5).unwrap()),
            7,
            FaultProfile {
                blackout_fraction: 1.0,
                ..FaultProfile::OFF
            },
        );
        let policy = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown_secs: 1 << 40,
            ..RetryPolicy::DEFAULT
        };
        let resilient = ResilientNetwork::new(faulty, policy, 7);
        let monitor = resilient.monitor();
        // Trip the breaker before the gateway comes up: every node is
        // blacked out, so the first failed attempt crosses threshold 1.
        assert!(resilient.neighbors(NodeId(0)).is_err());
        assert!(monitor.breaker_open());

        let service = SamplingService::builder(resilient)
            .pool_threads(1)
            .resilience(monitor)
            .build();
        let server = GatewayServer::bind(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200, "degraded is alive, not down");
        let health = health.json().unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(health.get("breaker_open").unwrap().as_bool(), Some(true));
        assert_eq!(health.get("breaker_opened").unwrap().as_u64(), Some(1));
        assert!(health.get("faults_seen").unwrap().as_u64().unwrap() >= 1);
        assert!(health.get("retries_exhausted").unwrap().as_u64().is_some());
        assert!(health.get("breaker_fast_fails").unwrap().as_u64().is_some());
        server.shutdown();
    }

    #[test]
    fn prometheus_scrape_validates_and_trace_replays_a_job() {
        let server = server();
        let addr = server.local_addr();

        // Run one job to completion so the histograms have mass.
        let body = json::parse(r#"{"samples": 5, "seed": 21, "walkers": 2}"#).unwrap();
        let accepted = client::post(addr, "/v1/jobs", &body)
            .unwrap()
            .json()
            .unwrap();
        let id = accepted.get("job_id").unwrap().as_u64().unwrap();
        let path = accepted
            .get("stream")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let done = client::open_stream(addr, &path)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.get("event").unwrap().as_str() == Some("done"))
            .expect("done event");
        assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));

        let scrape = client::get(addr, "/v1/metrics/prometheus").unwrap();
        assert_eq!(scrape.status, 200);
        assert!(scrape
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")));
        let text = String::from_utf8(scrape.body.clone()).unwrap();
        let stats = wnw_telemetry::prometheus::validate(&text).expect("scrape validates");
        assert!(stats.series >= 20, "got only {} series", stats.series);
        assert_eq!(stats.histograms, 6);
        assert!(text.contains("wnw_jobs_completed_total 1"));
        assert!(text.contains("wnw_queue_wait_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("wnw_job_latency_us_count 1"));
        assert!(text.contains("wnw_time_to_first_sample_us_count 1"));

        // The finished job's trace replays its whole life.
        let trace = client::get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
        assert_eq!(trace.status, 200);
        let Json::Arr(events) = trace.json().unwrap() else {
            panic!("trace body must be a JSON array");
        };
        let labels: Vec<String> = events
            .iter()
            .map(|e| e.get("event").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(labels.first().map(String::as_str), Some("submitted"));
        assert_eq!(labels.last().map(String::as_str), Some("finished"));
        assert!(labels.iter().any(|l| l == "first_round"));
        assert!(labels.iter().any(|l| l == "sample_published"));
        let at: Vec<u64> = events
            .iter()
            .map(|e| e.get("at_us").unwrap().as_u64().unwrap())
            .collect();
        assert!(at.windows(2).all(|w| w[0] <= w[1]), "monotone timestamps");
        server.shutdown();
    }

    #[test]
    fn submit_stream_and_delete_lifecycle() {
        let server = server();
        let addr = server.local_addr();
        let body =
            json::parse(r#"{"samples": 6, "seed": 11, "walkers": 2, "diameter_estimate": 4}"#)
                .unwrap();
        let resp = client::post(addr, "/v1/jobs", &body).unwrap();
        assert_eq!(resp.status, 202);
        let doc = resp.json().unwrap();
        let id = doc.get("job_id").unwrap().as_u64().unwrap();
        let path = doc.get("stream").unwrap().as_str().unwrap().to_string();
        assert_eq!(path, format!("/v1/jobs/{id}/stream"));

        let mut samples = 0;
        let mut done = None;
        for line in client::open_stream(addr, &path).unwrap() {
            let event = line.unwrap();
            match event.get("event").unwrap().as_str().unwrap() {
                "sample" => samples += 1,
                "done" => done = Some(event.clone()),
                _ => {}
            }
        }
        assert_eq!(samples, 6);
        let done = done.expect("stream ends with done");
        assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));
        assert_eq!(done.get("samples").unwrap().as_u64(), Some(6));

        // The registry entry is gone once the stream was served.
        assert_eq!(
            client::get(addr, &path).unwrap().status,
            404,
            "served streams are discarded"
        );
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_completed, 1);
        assert_eq!(metrics.samples_delivered, 6);
    }

    #[test]
    fn second_stream_claim_conflicts() {
        let server = server();
        let addr = server.local_addr();
        // A large job keeps the first stream open while we try the second.
        let body = json::parse(r#"{"samples": 100000, "seed": 3, "walkers": 2}"#).unwrap();
        let id = client::post(addr, "/v1/jobs", &body)
            .unwrap()
            .json()
            .unwrap()
            .get("job_id")
            .unwrap()
            .as_u64()
            .unwrap();
        let path = format!("/v1/jobs/{id}/stream");
        let mut first = client::open_stream(addr, &path).unwrap();
        assert!(first.next().is_some(), "first claim streams events");
        let second = client::get(addr, &path).unwrap();
        assert_eq!(second.status, 409, "stream is single-consumer");
        drop(first);
        server.shutdown();
    }

    #[test]
    fn invalid_bodies_are_rejected_with_400() {
        let server = server();
        let addr = server.local_addr();
        let resp = client::post(addr, "/v1/jobs", &Json::str("not an object")).unwrap();
        assert_eq!(resp.status, 400);
        let resp = client::post(addr, "/v1/jobs", &json::parse(r#"{"seed": 1}"#).unwrap()).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp
            .json()
            .unwrap()
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("samples"));
        // Zero samples passes wire parsing but fails service admission.
        let resp = client::post(
            addr,
            "/v1/jobs",
            &json::parse(r#"{"samples": 0, "seed": 1}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(resp.status, 400);
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_rejected, 1);
        assert_eq!(metrics.jobs_submitted, 0);
    }

    #[test]
    fn delete_cancels_a_registered_job() {
        let server = server();
        let addr = server.local_addr();
        let body = json::parse(r#"{"samples": 1000000, "seed": 9, "walkers": 2}"#).unwrap();
        let id = client::post(addr, "/v1/jobs", &body)
            .unwrap()
            .json()
            .unwrap()
            .get("job_id")
            .unwrap()
            .as_u64()
            .unwrap();
        let resp = client::delete(addr, &format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.json().unwrap().get("cancelled").unwrap().as_bool(),
            Some(true)
        );
        // The stream is still claimable and ends with a cancelled outcome.
        let done = client::open_stream(addr, &format!("/v1/jobs/{id}/stream"))
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.get("event").unwrap().as_str() == Some("done"))
            .expect("done event");
        assert_eq!(done.get("status").unwrap().as_str(), Some("cancelled"));
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1);
    }

    #[test]
    fn fire_and_forget_jobs_are_reaped_after_the_claim_ttl() {
        let osn = SimulatedOsn::new(barabasi_albert(400, 3, 5).unwrap());
        let service = SamplingService::builder(osn).pool_threads(1).build();
        let config = GatewayConfig {
            claim_ttl: Duration::ZERO,
            ..GatewayConfig::default()
        };
        let server = GatewayServer::bind_with(service, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        // Fire-and-forget: submit a huge job and never open its stream.
        let abandoned = json::parse(r#"{"samples": 1000000, "seed": 4, "walkers": 2}"#).unwrap();
        let id = client::post(addr, "/v1/jobs", &abandoned)
            .unwrap()
            .json()
            .unwrap()
            .get("job_id")
            .unwrap()
            .as_u64()
            .unwrap();
        // The next submission sweeps it (TTL zero): the job is cancelled
        // and its registry entry is gone.
        let small = json::parse(r#"{"samples": 3, "seed": 5, "walkers": 2}"#).unwrap();
        let resp = client::post(addr, "/v1/jobs", &small).unwrap();
        assert_eq!(resp.status, 202);
        let small_path = resp
            .json()
            .unwrap()
            .get("stream")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(
            client::get(addr, &format!("/v1/jobs/{id}/stream"))
                .unwrap()
                .status,
            404,
            "the reaped job's entry must be gone"
        );
        // The swept job released its slot: the small one completes.
        let done = client::open_stream(addr, &small_path)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.get("event").unwrap().as_str() == Some("done"))
            .unwrap();
        assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1, "abandoned job was cancelled");
        assert_eq!(metrics.jobs_completed, 1);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let server = server();
        let addr = server.local_addr();
        let mut conn = client::Connection::connect(addr).unwrap();
        for _ in 0..3 {
            let resp = conn.get("/healthz").unwrap();
            assert_eq!(resp.status, 200);
        }
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn shed_connections_receive_the_503_even_mid_request_body() {
        let osn = SimulatedOsn::new(barabasi_albert(200, 3, 5).unwrap());
        let service = SamplingService::builder(osn).pool_threads(1).build();
        let config = GatewayConfig {
            max_connections: 1,
            ..GatewayConfig::default()
        };
        let server = GatewayServer::bind_with(service, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();
        // Occupy the only slot with a keep-alive connection.
        let mut held = client::Connection::connect(addr).unwrap();
        assert_eq!(held.get("/healthz").unwrap().status, 200);

        // The next client is shed — and must read the 503 even though it
        // is still mid-request-body when the gateway decides.
        let mut shed = std::net::TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        shed.write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 60\r\n\r\n{\"samples\"")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        shed.write_all(b": 5, \"seed\": 1, \"walkers\": 2, \"budget\": 123456789}")
            .unwrap();
        let mut response = String::new();
        shed.read_to_string(&mut response)
            .expect("a clean 503, not a connection reset");
        assert!(
            response.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "got: {response}"
        );
        assert!(response.contains("gateway at capacity"));

        drop(held);
        server.shutdown();
    }

    #[test]
    fn stalled_partial_requests_get_408_by_the_whole_request_deadline() {
        let osn = SimulatedOsn::new(barabasi_albert(200, 3, 5).unwrap());
        let service = SamplingService::builder(osn).pool_threads(1).build();
        let config = GatewayConfig {
            read_timeout: Duration::from_millis(300),
            ..GatewayConfig::default()
        };
        let server = GatewayServer::bind_with(service, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        let mut stalled = std::net::TcpStream::connect(addr).unwrap();
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let started = Instant::now();
        stalled.write_all(b"GET /healthz HTT").unwrap();
        // Keep trickling bytes slower than the old per-read timeout would
        // ever notice: the whole-request deadline must still fire.
        std::thread::sleep(Duration::from_millis(150));
        let _ = stalled.write_all(b"P");
        let mut response = String::new();
        stalled.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "got: {response}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "reaped by the request deadline, not per-read timeouts"
        );
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let server = server();
        let addr = server.local_addr();
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let first = response.find("HTTP/1.1 200 OK").expect("first response");
        let second = response[first + 1..]
            .find("HTTP/1.1 200 OK")
            .expect("second response");
        let healthz = response.find("\"status\":\"ok\"").expect("healthz body");
        let metrics = response.find("jobs_submitted").expect("metrics body");
        assert!(healthz < metrics, "responses keep request order");
        assert!(second > 0);
        server.shutdown();
    }
}
