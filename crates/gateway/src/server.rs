//! The gateway server: a `TcpListener` accept loop feeding a bounded worker
//! pool, routing requests over one [`SamplingService`].
//!
//! Concurrency model: one accept thread plus `workers` connection-serving
//! threads, joined by a bounded hand-off queue. A worker owns a connection
//! for its whole life (keep-alive requests are served back to back; a
//! streaming response occupies its worker until the job's `Done` event), so
//! `workers` bounds the number of concurrently served connections and the
//! queue bounds how many accepted connections may wait — beyond that, the
//! accept loop sheds load with `503` instead of queueing unboundedly, the
//! same philosophy as the service's admission control.
//!
//! Client disconnects during a stream surface as write errors; the handler
//! drops its claimed [`SampleStream`](wnw_service::SampleStream), which is
//! the service's consumer-hang-up signal: the scheduler cancels the job at
//! the next delivery and refunds its unused budget.

use crate::http::{
    read_request, write_error, write_json, write_response, ChunkedWriter, Request, RequestError,
};
use crate::json::{self, Json};
use crate::{prom, wire};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wnw_access::interface::ThreadedNetwork;
use wnw_service::{
    AdmissionError, ClaimError, JobId, JobRegistry, SamplingService, ServiceMetricsSnapshot,
};

/// Tuning knobs of a [`GatewayServer`].
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Connection-serving threads. Each streaming client occupies one for
    /// its job's whole life, so size this at least to the expected number
    /// of concurrent streams. Default 4.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// accept loop starts shedding load with `503`. Default 8.
    pub backlog: usize,
    /// Largest accepted request body. Default 64 KiB.
    pub max_body_bytes: usize,
    /// Idle read timeout on a keep-alive connection; also the worst-case
    /// time a worker lingers on a silent client. Default 5 s.
    pub read_timeout: Duration,
    /// Write timeout towards slow or dead clients. Default 5 s.
    pub write_timeout: Duration,
    /// How long a submitted job's stream may sit unclaimed before the
    /// gateway reaps it (cancelling the job and refunding its budget, via
    /// [`JobRegistry::sweep_unclaimed`]). Bounds the memory and query
    /// budget a fire-and-forget submitter can burn. Default 60 s.
    pub claim_ttl: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            backlog: 8,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            claim_ttl: Duration::from_secs(60),
        }
    }
}

/// Shared state of all gateway threads.
struct State<N: ThreadedNetwork + 'static> {
    service: SamplingService<N>,
    registry: JobRegistry,
    config: GatewayConfig,
    shutdown: AtomicBool,
    /// When the gateway came up — `/healthz` reports the uptime.
    started: Instant,
}

/// An HTTP/1.1 frontend over a [`SamplingService`], bound to a loopback (or
/// any TCP) address.
///
/// | Route | Meaning |
/// |---|---|
/// | `POST /v1/jobs` | submit a sampling request (JSON body) |
/// | `GET /v1/jobs/{id}/stream` | chunked NDJSON event stream of the job |
/// | `DELETE /v1/jobs/{id}` | cooperative cancel |
/// | `GET /v1/metrics` | service metrics snapshot (JSON) |
/// | `GET /v1/metrics/prometheus` | Prometheus text exposition of the same snapshot |
/// | `GET /v1/jobs/{id}/trace` | the job's lifecycle trace events (JSON array) |
/// | `GET /healthz` | liveness probe (`status` `ok`/`degraded`, `version`, `uptime_seconds`, breaker + fault counts when a resilience monitor is attached) |
///
/// See the [crate docs](crate) for the wire format and a walkthrough.
#[derive(Debug)]
pub struct GatewayServer<N: ThreadedNetwork + 'static> {
    addr: SocketAddr,
    /// `None` only transiently inside [`shutdown`](Self::shutdown), after
    /// the threads are joined (defuses the `Drop` teardown).
    state: Option<Arc<State<N>>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

// Manual Debug for State would drag N: Debug bounds around; the server's
// Debug only needs the address.
impl<N: ThreadedNetwork + 'static> std::fmt::Debug for State<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("registry_len", &self.registry.len())
            .finish_non_exhaustive()
    }
}

impl<N: ThreadedNetwork + 'static> GatewayServer<N> {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and starts serving `service` with the default configuration.
    pub fn bind(service: SamplingService<N>, addr: &str) -> io::Result<Self> {
        Self::bind_with(service, addr, GatewayConfig::default())
    }

    /// Binds `addr` with an explicit configuration.
    pub fn bind_with(
        service: SamplingService<N>,
        addr: &str,
        config: GatewayConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            service,
            registry: JobRegistry::default(),
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });

        let workers = config.workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("wnw-gateway-worker-{i}"))
                    .spawn(move || worker_loop(state, rx))
                    .expect("spawn gateway worker")
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("wnw-gateway-accept".into())
            .spawn(move || accept_loop(listener, accept_state, tx))
            .expect("spawn gateway accept thread");

        Ok(GatewayServer {
            addr,
            state: Some(state),
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the underlying service's metrics.
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.state
            .as_ref()
            .expect("state present until shutdown")
            .service
            .metrics()
    }

    /// Stops accepting, cancels every registered job so in-flight streams
    /// reach their `Done` event promptly, drains the workers, shuts the
    /// service down, and returns its final metrics snapshot.
    pub fn shutdown(mut self) -> ServiceMetricsSnapshot {
        self.stop_threads();
        let state = self.state.take().expect("shutdown runs once");
        match Arc::try_unwrap(state) {
            Ok(state) => state.service.shutdown(),
            // All threads were joined, so this Arc is unique; if that ever
            // stops holding, the service still drains when the last clone
            // drops — return the best snapshot available.
            Err(state) => state.service.metrics(),
        }
    }

    fn stop_threads(&mut self) {
        let Some(state) = self.state.as_ref() else {
            return;
        };
        state.shutdown.store(true, Ordering::SeqCst);
        // Streams held by workers end once their jobs go terminal.
        state.registry.cancel_all();
        // Unblock the accept() call; the errorless connect also drains fine
        // if a worker picks it up first.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // A worker may have been mid-submit when the first cancel_all ran,
        // registering its job just after. Now that every worker is joined
        // the registry is quiescent; cancel again so the service drain
        // below never waits on a straggler job running to completion.
        state.registry.cancel_all();
    }
}

impl<N: ThreadedNetwork + 'static> Drop for GatewayServer<N> {
    /// Dropping the server tears the HTTP threads down and drains the
    /// service like [`shutdown`](Self::shutdown), discarding the snapshot.
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop<N: ThreadedNetwork + 'static>(
    listener: TcpListener,
    state: Arc<State<N>>,
    tx: SyncSender<TcpStream>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return; // tx drops; workers drain the queue, then exit.
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Every worker is busy and the wait queue is full: shed
                // load at the door rather than queueing unboundedly.
                let _ = stream.set_write_timeout(Some(state.config.write_timeout));
                let _ = write_error(&mut stream, 503, "gateway at capacity; retry later", true);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop<N: ThreadedNetwork + 'static>(
    state: Arc<State<N>>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
) {
    loop {
        let next = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
        match next {
            Ok(stream) => {
                let _ = serve_connection(&state, stream);
            }
            Err(_) => return, // accept loop gone: shutdown.
        }
    }
}

/// Serves one connection: keep-alive loop of parse → route → respond.
fn serve_connection<N: ThreadedNetwork + 'static>(
    state: &State<N>,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_read_timeout(Some(state.config.read_timeout))?;
    stream.set_write_timeout(Some(state.config.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader, state.config.max_body_bytes) {
            Ok(request) => request,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return Ok(()),
            Err(RequestError::Malformed(message)) => {
                let _ = write_error(&mut writer, 400, message, true);
                return Ok(());
            }
            Err(RequestError::TooLarge(message)) => {
                let _ = write_error(&mut writer, 413, message, true);
                return Ok(());
            }
        };
        // During shutdown, answer the in-flight request but stop reusing
        // the connection so the worker can exit.
        let keep_alive = request.keep_alive() && !state.shutdown.load(Ordering::SeqCst);
        let keep_alive = respond(state, &request, &mut writer, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Routes one request. Returns whether the connection may be reused.
fn respond<N: ThreadedNetwork + 'static>(
    state: &State<N>,
    request: &Request,
    writer: &mut TcpStream,
    keep_alive: bool,
) -> io::Result<bool> {
    let segments = request.path_segments();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => {
            // With a resilience monitor attached, an open circuit breaker
            // downgrades the probe to "degraded" (still 200: the gateway is
            // alive and serving, the backend is shedding) and the body
            // carries the breaker and fault counts a prober needs to alert
            // on. Without a monitor the original three-field shape is kept.
            let resilience = state.service.resilience().map(|m| m.stats());
            let degraded = resilience.is_some_and(|s| s.breaker_open);
            let mut fields = vec![
                (
                    "status",
                    Json::str(if degraded { "degraded" } else { "ok" }),
                ),
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                (
                    "uptime_seconds",
                    Json::UInt(state.started.elapsed().as_secs()),
                ),
            ];
            if let Some(stats) = resilience {
                fields.push(("breaker_open", Json::Bool(stats.breaker_open)));
                fields.push(("breaker_opened", Json::UInt(stats.breaker_opened)));
                fields.push(("breaker_fast_fails", Json::UInt(stats.breaker_fast_fails)));
                fields.push(("faults_seen", Json::UInt(stats.faults_seen)));
                fields.push(("retries_exhausted", Json::UInt(stats.retries_exhausted)));
            }
            write_json(writer, 200, &Json::obj(fields), !keep_alive)?;
        }
        ("GET", ["v1", "metrics"]) => {
            let body = wire::metrics_to_json(&state.service.metrics());
            write_json(writer, 200, &body, !keep_alive)?;
        }
        ("GET", ["v1", "metrics", "prometheus"]) => {
            let body = prom::exposition(&state.service.metrics());
            write_response(
                writer,
                200,
                "text/plain; version=0.0.4",
                body.as_bytes(),
                !keep_alive,
            )?;
        }
        ("GET", ["v1", "jobs", id, "trace"]) => {
            let events = parse_id(id).map_or_else(Vec::new, |id| state.service.trace_of(id));
            if events.is_empty() {
                // Unknown job, tracing off, or the ring already evicted it.
                write_error(writer, 404, "no trace for job", !keep_alive)?;
            } else {
                let body = Json::Arr(events.iter().map(wire::trace_event_to_json).collect());
                write_json(writer, 200, &body, !keep_alive)?;
            }
        }
        ("POST", ["v1", "jobs"]) => return submit(state, request, writer, keep_alive),
        ("GET", ["v1", "jobs", id, "stream"]) => return stream_job(state, id, writer),
        ("DELETE", ["v1", "jobs", id]) => match parse_id(id) {
            Some(id) if state.registry.cancel(id) => {
                let body = Json::obj(vec![
                    ("job_id", Json::UInt(id.0)),
                    ("cancelled", Json::Bool(true)),
                ]);
                write_json(writer, 200, &body, !keep_alive)?;
            }
            _ => write_error(writer, 404, "unknown job", !keep_alive)?,
        },
        // Known paths under the wrong method get a 405, unknown paths 404.
        (_, ["healthz"])
        | (_, ["v1", "metrics"])
        | (_, ["v1", "metrics", "prometheus"])
        | (_, ["v1", "jobs"])
        | (_, ["v1", "jobs", _, "stream"])
        | (_, ["v1", "jobs", _, "trace"])
        | (_, ["v1", "jobs", _]) => {
            write_error(writer, 405, "method not allowed", !keep_alive)?;
        }
        _ => write_error(writer, 404, "no such route", !keep_alive)?,
    }
    Ok(keep_alive)
}

/// `POST /v1/jobs`: parse, submit, register, answer `202` with the id.
fn submit<N: ThreadedNetwork + 'static>(
    state: &State<N>,
    request: &Request,
    writer: &mut TcpStream,
    keep_alive: bool,
) -> io::Result<bool> {
    // Reap fire-and-forget jobs whose streams were never claimed: they are
    // still burning query budget and buffering events. Sweeping on every
    // submission bounds the unclaimed population by the submission rate
    // within one TTL window.
    state.registry.sweep_unclaimed(state.config.claim_ttl);
    let body = match std::str::from_utf8(&request.body)
        .map_err(|_| "request body is not UTF-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
        .and_then(|json| wire::sample_request_from_json(&json))
    {
        Ok(sample_request) => sample_request,
        Err(message) => {
            write_error(writer, 400, &message, !keep_alive)?;
            return Ok(keep_alive);
        }
    };
    match state.service.submit(body) {
        Ok(ticket) => {
            let id = state.registry.register(ticket);
            let body = Json::obj(vec![
                ("job_id", Json::UInt(id.0)),
                ("stream", Json::Str(format!("/v1/jobs/{}/stream", id.0))),
            ]);
            write_json(writer, 202, &body, !keep_alive)?;
        }
        Err(err @ AdmissionError::Invalid(_)) => {
            write_error(writer, 400, &err.to_string(), !keep_alive)?;
        }
        Err(err @ (AdmissionError::Saturated { .. } | AdmissionError::ShuttingDown)) => {
            write_error(writer, 503, &err.to_string(), !keep_alive)?;
        }
    }
    Ok(keep_alive)
}

/// `GET /v1/jobs/{id}/stream`: chunked NDJSON of the job's events. The
/// connection is never reused afterwards; a mid-stream client disconnect
/// drops the claimed stream, which cancels the job and refunds its budget
/// (the service's hang-up path).
fn stream_job<N: ThreadedNetwork + 'static>(
    state: &State<N>,
    id: &str,
    writer: &mut TcpStream,
) -> io::Result<bool> {
    let Some(id) = parse_id(id) else {
        write_error(writer, 404, "unknown job", true)?;
        return Ok(false);
    };
    let events = match state.registry.claim_stream(id) {
        Ok(events) => events,
        Err(ClaimError::Unknown) => {
            write_error(writer, 404, "unknown job", true)?;
            return Ok(false);
        }
        Err(ClaimError::AlreadyClaimed) => {
            write_error(writer, 409, "stream already claimed", true)?;
            return Ok(false);
        }
    };
    let mut body = match ChunkedWriter::begin(&mut *writer, 200, "application/x-ndjson") {
        Ok(body) => body,
        Err(_) => {
            // The client died before the response head went out. The entry
            // must not linger half-claimed: discard it (dropping the claimed
            // stream already cancelled the job).
            state.registry.discard(id);
            return Ok(false);
        }
    };
    let mut line = String::new();
    for event in events {
        line.clear();
        line.push_str(&wire::event_to_json(&event).encode());
        line.push('\n');
        // A write failure here is the client hanging up: stop consuming,
        // drop `events` (→ cooperative cancel + budget refund), clean the
        // registry entry, and give the connection up.
        if body.write_chunk(line.as_bytes()).is_err() {
            state.registry.discard(id);
            return Ok(false);
        }
    }
    // Discard before the terminal chunk: a client that observes the end of
    // the stream must find the registry entry already gone (404, not 409).
    state.registry.discard(id);
    let _ = body.finish();
    Ok(false)
}

fn parse_id(text: &str) -> Option<JobId> {
    text.parse::<u64>().ok().map(JobId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::random::barabasi_albert;

    fn server() -> GatewayServer<SimulatedOsn> {
        let osn = SimulatedOsn::new(barabasi_albert(400, 3, 5).unwrap());
        let service = SamplingService::builder(osn).pool_threads(1).build();
        GatewayServer::bind(service, "127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn health_metrics_and_unknown_routes() {
        let server = server();
        let addr = server.local_addr();
        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        let health = health.json().unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            health.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(health.get("uptime_seconds").unwrap().as_u64().is_some());
        assert!(
            health.get("breaker_open").is_none(),
            "without a resilience monitor the probe keeps its three-field shape"
        );

        let metrics = client::get(addr, "/v1/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let doc = metrics.json().unwrap();
        assert_eq!(doc.get("jobs_submitted").unwrap().as_u64(), Some(0));
        assert!(doc.get("shared_cache_savings").is_some());
        assert!(doc.get("max_queue_wait_ms").is_some());
        assert!(doc.get("pool").unwrap().get("unique_nodes").is_some());

        assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
        assert_eq!(
            client::get(addr, "/v1/jobs/xyz/stream").unwrap().status,
            404
        );
        assert_eq!(client::delete(addr, "/v1/jobs/99").unwrap().status, 404);
        assert_eq!(client::get(addr, "/v1/jobs/99/trace").unwrap().status, 404);
        // Wrong method on a known path.
        assert_eq!(client::delete(addr, "/healthz").unwrap().status, 405);
        assert_eq!(client::get(addr, "/v1/jobs").unwrap().status, 405);
        assert_eq!(
            client::delete(addr, "/v1/metrics/prometheus")
                .unwrap()
                .status,
            405
        );
        assert_eq!(
            client::delete(addr, "/v1/jobs/1/trace").unwrap().status,
            405
        );
        server.shutdown();
    }

    #[test]
    fn healthz_reports_degraded_while_the_breaker_is_open() {
        use wnw_access::interface::SocialNetwork;
        use wnw_access::{FaultProfile, FaultyNetwork, ResilientNetwork, RetryPolicy};
        use wnw_graph::NodeId;

        let faulty = FaultyNetwork::new(
            SimulatedOsn::new(barabasi_albert(200, 3, 5).unwrap()),
            7,
            FaultProfile {
                blackout_fraction: 1.0,
                ..FaultProfile::OFF
            },
        );
        let policy = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown_secs: 1 << 40,
            ..RetryPolicy::DEFAULT
        };
        let resilient = ResilientNetwork::new(faulty, policy, 7);
        let monitor = resilient.monitor();
        // Trip the breaker before the gateway comes up: every node is
        // blacked out, so the first failed attempt crosses threshold 1.
        assert!(resilient.neighbors(NodeId(0)).is_err());
        assert!(monitor.breaker_open());

        let service = SamplingService::builder(resilient)
            .pool_threads(1)
            .resilience(monitor)
            .build();
        let server = GatewayServer::bind(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200, "degraded is alive, not down");
        let health = health.json().unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(health.get("breaker_open").unwrap().as_bool(), Some(true));
        assert_eq!(health.get("breaker_opened").unwrap().as_u64(), Some(1));
        assert!(health.get("faults_seen").unwrap().as_u64().unwrap() >= 1);
        assert!(health.get("retries_exhausted").unwrap().as_u64().is_some());
        assert!(health.get("breaker_fast_fails").unwrap().as_u64().is_some());
        server.shutdown();
    }

    #[test]
    fn prometheus_scrape_validates_and_trace_replays_a_job() {
        let server = server();
        let addr = server.local_addr();

        // Run one job to completion so the histograms have mass.
        let body = json::parse(r#"{"samples": 5, "seed": 21, "walkers": 2}"#).unwrap();
        let accepted = client::post(addr, "/v1/jobs", &body)
            .unwrap()
            .json()
            .unwrap();
        let id = accepted.get("job_id").unwrap().as_u64().unwrap();
        let path = accepted
            .get("stream")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let done = client::open_stream(addr, &path)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.get("event").unwrap().as_str() == Some("done"))
            .expect("done event");
        assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));

        let scrape = client::get(addr, "/v1/metrics/prometheus").unwrap();
        assert_eq!(scrape.status, 200);
        assert!(scrape
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")));
        let text = String::from_utf8(scrape.body.clone()).unwrap();
        let stats = wnw_telemetry::prometheus::validate(&text).expect("scrape validates");
        assert!(stats.series >= 20, "got only {} series", stats.series);
        assert_eq!(stats.histograms, 6);
        assert!(text.contains("wnw_jobs_completed_total 1"));
        assert!(text.contains("wnw_queue_wait_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("wnw_job_latency_us_count 1"));
        assert!(text.contains("wnw_time_to_first_sample_us_count 1"));

        // The finished job's trace replays its whole life.
        let trace = client::get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
        assert_eq!(trace.status, 200);
        let Json::Arr(events) = trace.json().unwrap() else {
            panic!("trace body must be a JSON array");
        };
        let labels: Vec<String> = events
            .iter()
            .map(|e| e.get("event").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(labels.first().map(String::as_str), Some("submitted"));
        assert_eq!(labels.last().map(String::as_str), Some("finished"));
        assert!(labels.iter().any(|l| l == "first_round"));
        assert!(labels.iter().any(|l| l == "sample_published"));
        let at: Vec<u64> = events
            .iter()
            .map(|e| e.get("at_us").unwrap().as_u64().unwrap())
            .collect();
        assert!(at.windows(2).all(|w| w[0] <= w[1]), "monotone timestamps");
        server.shutdown();
    }

    #[test]
    fn submit_stream_and_delete_lifecycle() {
        let server = server();
        let addr = server.local_addr();
        let body =
            json::parse(r#"{"samples": 6, "seed": 11, "walkers": 2, "diameter_estimate": 4}"#)
                .unwrap();
        let resp = client::post(addr, "/v1/jobs", &body).unwrap();
        assert_eq!(resp.status, 202);
        let doc = resp.json().unwrap();
        let id = doc.get("job_id").unwrap().as_u64().unwrap();
        let path = doc.get("stream").unwrap().as_str().unwrap().to_string();
        assert_eq!(path, format!("/v1/jobs/{id}/stream"));

        let mut samples = 0;
        let mut done = None;
        for line in client::open_stream(addr, &path).unwrap() {
            let event = line.unwrap();
            match event.get("event").unwrap().as_str().unwrap() {
                "sample" => samples += 1,
                "done" => done = Some(event.clone()),
                _ => {}
            }
        }
        assert_eq!(samples, 6);
        let done = done.expect("stream ends with done");
        assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));
        assert_eq!(done.get("samples").unwrap().as_u64(), Some(6));

        // The registry entry is gone once the stream was served.
        assert_eq!(
            client::get(addr, &path).unwrap().status,
            404,
            "served streams are discarded"
        );
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_completed, 1);
        assert_eq!(metrics.samples_delivered, 6);
    }

    #[test]
    fn second_stream_claim_conflicts() {
        let server = server();
        let addr = server.local_addr();
        // A large job keeps the first stream open while we try the second.
        let body = json::parse(r#"{"samples": 100000, "seed": 3, "walkers": 2}"#).unwrap();
        let id = client::post(addr, "/v1/jobs", &body)
            .unwrap()
            .json()
            .unwrap()
            .get("job_id")
            .unwrap()
            .as_u64()
            .unwrap();
        let path = format!("/v1/jobs/{id}/stream");
        let mut first = client::open_stream(addr, &path).unwrap();
        assert!(first.next().is_some(), "first claim streams events");
        let second = client::get(addr, &path).unwrap();
        assert_eq!(second.status, 409, "stream is single-consumer");
        drop(first);
        server.shutdown();
    }

    #[test]
    fn invalid_bodies_are_rejected_with_400() {
        let server = server();
        let addr = server.local_addr();
        let resp = client::post(addr, "/v1/jobs", &Json::str("not an object")).unwrap();
        assert_eq!(resp.status, 400);
        let resp = client::post(addr, "/v1/jobs", &json::parse(r#"{"seed": 1}"#).unwrap()).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp
            .json()
            .unwrap()
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("samples"));
        // Zero samples passes wire parsing but fails service admission.
        let resp = client::post(
            addr,
            "/v1/jobs",
            &json::parse(r#"{"samples": 0, "seed": 1}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(resp.status, 400);
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_rejected, 1);
        assert_eq!(metrics.jobs_submitted, 0);
    }

    #[test]
    fn delete_cancels_a_registered_job() {
        let server = server();
        let addr = server.local_addr();
        let body = json::parse(r#"{"samples": 1000000, "seed": 9, "walkers": 2}"#).unwrap();
        let id = client::post(addr, "/v1/jobs", &body)
            .unwrap()
            .json()
            .unwrap()
            .get("job_id")
            .unwrap()
            .as_u64()
            .unwrap();
        let resp = client::delete(addr, &format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.json().unwrap().get("cancelled").unwrap().as_bool(),
            Some(true)
        );
        // The stream is still claimable and ends with a cancelled outcome.
        let done = client::open_stream(addr, &format!("/v1/jobs/{id}/stream"))
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.get("event").unwrap().as_str() == Some("done"))
            .expect("done event");
        assert_eq!(done.get("status").unwrap().as_str(), Some("cancelled"));
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1);
    }

    #[test]
    fn fire_and_forget_jobs_are_reaped_after_the_claim_ttl() {
        let osn = SimulatedOsn::new(barabasi_albert(400, 3, 5).unwrap());
        let service = SamplingService::builder(osn).pool_threads(1).build();
        let config = GatewayConfig {
            claim_ttl: Duration::ZERO,
            ..GatewayConfig::default()
        };
        let server = GatewayServer::bind_with(service, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        // Fire-and-forget: submit a huge job and never open its stream.
        let abandoned = json::parse(r#"{"samples": 1000000, "seed": 4, "walkers": 2}"#).unwrap();
        let id = client::post(addr, "/v1/jobs", &abandoned)
            .unwrap()
            .json()
            .unwrap()
            .get("job_id")
            .unwrap()
            .as_u64()
            .unwrap();
        // The next submission sweeps it (TTL zero): the job is cancelled
        // and its registry entry is gone.
        let small = json::parse(r#"{"samples": 3, "seed": 5, "walkers": 2}"#).unwrap();
        let resp = client::post(addr, "/v1/jobs", &small).unwrap();
        assert_eq!(resp.status, 202);
        let small_path = resp
            .json()
            .unwrap()
            .get("stream")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(
            client::get(addr, &format!("/v1/jobs/{id}/stream"))
                .unwrap()
                .status,
            404,
            "the reaped job's entry must be gone"
        );
        // The swept job released its slot: the small one completes.
        let done = client::open_stream(addr, &small_path)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.get("event").unwrap().as_str() == Some("done"))
            .unwrap();
        assert_eq!(done.get("status").unwrap().as_str(), Some("completed"));
        let metrics = server.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1, "abandoned job was cancelled");
        assert_eq!(metrics.jobs_completed, 1);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let server = server();
        let addr = server.local_addr();
        let mut conn = client::Connection::connect(addr).unwrap();
        for _ in 0..3 {
            let resp = conn.get("/healthz").unwrap();
            assert_eq!(resp.status, 200);
        }
        drop(conn);
        server.shutdown();
    }
}
