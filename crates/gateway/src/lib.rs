//! # wnw-gateway — an HTTP/1.1 streaming frontend over the sampling service
//!
//! The paper's promise only pays off in production when remote clients can
//! submit sampling jobs and consume results **over the wire**. This crate
//! is that serving edge: a dependency-free HTTP/1.1 server (std's
//! non-blocking `TcpListener`/`TcpStream` driven by a hand-rolled
//! readiness loop — it builds and tests fully offline on loopback) in
//! front of a [`SamplingService`](wnw_service::SamplingService). A couple
//! of I/O threads step every connection through an explicit state machine
//! ([`conn`]), so thousands of concurrent slow stream consumers cost
//! buffers, not threads; blocking work runs on a small task pool (see
//! [`server`]). The crate carries its own small substrates since the
//! workspace has no serde or mio: an incremental request parser
//! ([`http`]), a tiny JSON codec ([`json`]), the wire mapping for the
//! service's request/event/metrics types ([`wire`]), and a minimal
//! blocking client ([`client`]) used by the integration tests, the
//! load-generation harness, and `examples/http_gateway.rs`.
//!
//! ## Endpoints
//!
//! | Method + path | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | submit a sampling request (JSON body) → `202` with `job_id` |
//! | `GET /v1/jobs/{id}/stream` | chunked NDJSON stream of `sample`/`progress`/`done` events |
//! | `DELETE /v1/jobs/{id}` | cooperative cancel (stream still delivers `done`) |
//! | `GET /v1/metrics` | service metrics snapshot, incl. `shared_cache_savings`, queue waits, the cross-job `history` reuse counters, and the latency histograms |
//! | `GET /v1/metrics/prometheus` | the same snapshot as Prometheus text exposition (`wnw_*` series, see [`prom`]) |
//! | `GET /v1/jobs/{id}/trace` | the job's lifecycle trace as a JSON array (404 once evicted or with telemetry off) |
//! | `GET /healthz` | liveness probe: `status`, `version`, `uptime_seconds` |
//!
//! The submit body's optional `"history_policy"` field
//! (`"isolated"` (default) \| `"shared_read"` \| `"shared_publish"`) plugs a
//! job into the service's cross-job
//! [`HistoryStore`](wnw_service::HistoryStore), and `"reuse_correction"`
//! (`"reweighted"` (default) \| `"raw"`) picks the bias-correction mode for
//! reused walk counts — see [`wire`] for the full body schema.
//!
//! Streaming is the service's own [`SampleStream`](wnw_service::SampleStream)
//! carried over chunked transfer encoding: every event is flushed as one
//! NDJSON line the moment the scheduler lands it, so clients see samples
//! early instead of waiting for job completion. A client that disconnects
//! mid-stream hangs up on the stream, which cancels the job at the next
//! round boundary and refunds its unused budget — rate-limited query
//! budget is the scarce resource the paper optimizes, so abandoned jobs
//! must not keep spending it.
//!
//! ```
//! use wnw_access::SimulatedOsn;
//! use wnw_gateway::json::Json;
//! use wnw_gateway::{client, GatewayServer};
//! use wnw_graph::generators::random::barabasi_albert;
//! use wnw_service::SamplingService;
//!
//! let osn = SimulatedOsn::new(barabasi_albert(400, 3, 7).unwrap());
//! let service = SamplingService::builder(osn).pool_threads(2).build();
//! let server = GatewayServer::bind(service, "127.0.0.1:0").unwrap();
//! let addr = server.local_addr();
//!
//! // Submit a job and stream its samples back as NDJSON events.
//! let body = Json::obj(vec![
//!     ("samples", Json::UInt(8)),
//!     ("seed", Json::UInt(42)),
//!     ("diameter_estimate", Json::UInt(5)),
//! ]);
//! let accepted = client::post(addr, "/v1/jobs", &body).unwrap().json().unwrap();
//! let stream_path = accepted.get("stream").unwrap().as_str().unwrap().to_string();
//! let events: Vec<_> = client::open_stream(addr, &stream_path)
//!     .unwrap()
//!     .collect::<Result<_, _>>()
//!     .unwrap();
//! let samples = events
//!     .iter()
//!     .filter(|e| e.get("event").unwrap().as_str() == Some("sample"))
//!     .count();
//! assert_eq!(samples, 8);
//! let metrics = server.shutdown();
//! assert_eq!(metrics.jobs_completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod http;
pub mod json;
pub mod prom;
pub mod server;
pub mod wire;

pub use json::Json;
pub use server::{GatewayConfig, GatewayServer};
