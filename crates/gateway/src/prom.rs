//! Prometheus text exposition of the service metrics snapshot.
//!
//! Maps every [`ServiceMetricsSnapshot`] field onto a `wnw_*`-prefixed
//! family in the text format Prometheus scrapes (see
//! [`wnw_telemetry::prometheus`] for the renderer and the grammar
//! validator). Lifetime totals become counters (`_total` suffix), live
//! populations become gauges, and the snapshot's embedded
//! [`HistogramSnapshot`](wnw_telemetry::HistogramSnapshot)s become
//! cumulative-bucket histogram families. The naming table lives in the
//! [`wnw_telemetry`] crate docs so the vocabulary has one home.

use wnw_service::ServiceMetricsSnapshot;
use wnw_telemetry::prometheus::Exposition;

/// A gauge value for the exposition builder (`u64` populations are far
/// below `i64::MAX`; saturate rather than wrap if that ever changes).
fn gauge(value: u64) -> i64 {
    i64::try_from(value).unwrap_or(i64::MAX)
}

/// Renders `snapshot` as a complete Prometheus text-exposition document —
/// the body of `GET /v1/metrics/prometheus`.
pub fn exposition(snapshot: &ServiceMetricsSnapshot) -> String {
    let mut exp = Exposition::new();

    // Job lifecycle: lifetime counters plus the two live populations.
    exp.counter(
        "wnw_jobs_submitted_total",
        "requests admitted",
        snapshot.jobs_submitted,
    );
    exp.counter(
        "wnw_jobs_rejected_total",
        "requests refused at the door",
        snapshot.jobs_rejected,
    );
    exp.gauge(
        "wnw_jobs_queued",
        "jobs admitted but not yet scheduled",
        gauge(snapshot.jobs_queued),
    );
    exp.gauge(
        "wnw_jobs_running",
        "jobs currently holding walker slots",
        gauge(snapshot.jobs_running),
    );
    exp.counter(
        "wnw_jobs_started_total",
        "jobs that left the queue",
        snapshot.jobs_started,
    );
    exp.counter(
        "wnw_jobs_completed_total",
        "jobs that met their quota or ran their budget out",
        snapshot.jobs_completed,
    );
    exp.counter(
        "wnw_jobs_cancelled_total",
        "jobs cancelled by the caller or a dropped stream",
        snapshot.jobs_cancelled,
    );
    exp.counter(
        "wnw_jobs_expired_total",
        "jobs stopped at their deadline",
        snapshot.jobs_expired,
    );
    exp.counter(
        "wnw_jobs_failed_total",
        "jobs stopped by an access error or sampler panic",
        snapshot.jobs_failed,
    );
    exp.counter(
        "wnw_jobs_degraded_total",
        "jobs finished as degraded partials (a walker was stopped by a fault)",
        snapshot.jobs_degraded,
    );
    exp.counter(
        "wnw_walkers_degraded_total",
        "walkers stopped by a transient fault, exhausted retries, or an open breaker",
        snapshot.walkers_degraded,
    );
    exp.counter(
        "wnw_jobs_finished_total",
        "total terminal jobs",
        snapshot.jobs_finished,
    );

    // Delivery and the paper's query-cost ledger.
    exp.counter(
        "wnw_samples_delivered_total",
        "samples streamed to consumers",
        snapshot.samples_delivered,
    );
    exp.counter(
        "wnw_budget_refunded_total",
        "unused query budget returned by early-stopped jobs",
        snapshot.budget_refunded,
    );
    exp.counter(
        "wnw_aggregate_query_cost_total",
        "distinct nodes the service paid for across all jobs",
        snapshot.aggregate_query_cost,
    );
    exp.counter(
        "wnw_isolated_query_cost_total",
        "what the finished jobs would have paid as isolated runs",
        snapshot.isolated_query_cost,
    );
    exp.gauge(
        "wnw_shared_cache_savings",
        "unique-node queries saved by cross-job cache sharing",
        gauge(snapshot.shared_cache_savings()),
    );

    // Shared neighbor-cache counters.
    exp.counter(
        "wnw_pool_unique_nodes_total",
        "distinct nodes charged by the shared pool cache",
        snapshot.pool.unique_nodes,
    );
    exp.counter(
        "wnw_pool_api_calls_total",
        "neighbor-list fetches that went to the network",
        snapshot.pool.api_calls,
    );
    exp.counter(
        "wnw_pool_cache_hits_total",
        "neighbor-list fetches served from the shared cache",
        snapshot.pool.cache_hits,
    );
    exp.counter(
        "wnw_pool_attribute_reads_total",
        "node attribute reads",
        snapshot.pool.attribute_reads,
    );

    // Persistent worker-pool round dispatch.
    exp.gauge(
        "wnw_worker_pool_workers",
        "threads spawned at pool startup (constant: the zero-spawn guarantee)",
        gauge(snapshot.worker_pool.workers),
    );
    exp.counter(
        "wnw_worker_pool_rounds_dispatched_total",
        "rounds fanned over the parked workers",
        snapshot.worker_pool.rounds_dispatched,
    );
    exp.counter(
        "wnw_worker_pool_spawnless_rounds_total",
        "rounds run inline on the scheduler thread",
        snapshot.worker_pool.spawnless_rounds,
    );
    exp.counter(
        "wnw_worker_pool_worker_wakeups_total",
        "times a parked worker woke and found work",
        snapshot.worker_pool.worker_wakeups,
    );

    // Cross-job history-store reuse.
    exp.counter(
        "wnw_history_hits_total",
        "admissions that found a published walk history",
        snapshot.history.hits,
    );
    exp.counter(
        "wnw_history_misses_total",
        "admissions that looked for a history and found none",
        snapshot.history.misses,
    );
    exp.counter(
        "wnw_history_publications_total",
        "history publications (epoch bumps)",
        snapshot.history.publications,
    );
    exp.counter(
        "wnw_history_published_walks_total",
        "walk entries published to the history store",
        snapshot.history.published_walks,
    );
    exp.counter(
        "wnw_history_reused_walks_total",
        "walk entries inherited by reusing jobs",
        snapshot.history.reused_walks,
    );
    exp.counter(
        "wnw_history_reuse_savings_total",
        "unique-node query cost inherited instead of re-spent",
        snapshot.history.reuse_savings,
    );
    exp.gauge(
        "wnw_history_epoch",
        "current history-store epoch",
        gauge(snapshot.history.epoch),
    );

    // Resilience layer: retry/backoff/breaker counters (all zero when the
    // service runs without a ResilienceMonitor attached).
    exp.counter(
        "wnw_resilience_calls_total",
        "neighbor fetches that entered the retry layer",
        snapshot.resilience.calls,
    );
    exp.counter(
        "wnw_resilience_faults_seen_total",
        "retryable faults observed across all attempts",
        snapshot.resilience.faults_seen,
    );
    exp.counter(
        "wnw_resilience_retries_total",
        "retry attempts after a retryable fault",
        snapshot.resilience.retries,
    );
    exp.counter(
        "wnw_resilience_backoff_wait_seconds_total",
        "simulated seconds spent waiting in backoff",
        snapshot.resilience.backoff_wait_secs,
    );
    exp.counter(
        "wnw_resilience_rate_limit_honored_total",
        "rate-limit rejections whose retry_after was honored exactly",
        snapshot.resilience.rate_limit_honored,
    );
    exp.counter(
        "wnw_resilience_retries_exhausted_total",
        "calls that failed after the full retry budget",
        snapshot.resilience.retries_exhausted,
    );
    exp.counter(
        "wnw_resilience_recovered_total",
        "calls that succeeded after at least one retry",
        snapshot.resilience.recovered,
    );
    exp.counter(
        "wnw_resilience_breaker_opened_total",
        "circuit-breaker trips (closed-to-open transitions)",
        snapshot.resilience.breaker_opened,
    );
    exp.counter(
        "wnw_resilience_breaker_half_open_probes_total",
        "probe calls admitted while the breaker was half-open",
        snapshot.resilience.breaker_half_open_probes,
    );
    exp.counter(
        "wnw_resilience_breaker_fast_fails_total",
        "calls rejected immediately by an open breaker",
        snapshot.resilience.breaker_fast_fails,
    );
    exp.gauge(
        "wnw_resilience_breaker_open",
        "whether the circuit breaker is currently open (1) or not (0)",
        i64::from(snapshot.resilience.breaker_open),
    );

    // Latency and cost distributions.
    exp.histogram(
        "wnw_queue_wait_us",
        "admission-to-first-round queue wait in microseconds",
        &snapshot.queue_wait_histogram,
    );
    exp.histogram(
        "wnw_job_latency_us",
        "submit-to-done latency in microseconds over finished jobs",
        &snapshot.latency_histogram,
    );
    exp.histogram(
        "wnw_time_to_first_sample_us",
        "submit-to-first-delivered-sample latency in microseconds",
        &snapshot.first_sample_histogram,
    );
    exp.histogram(
        "wnw_round_duration_us",
        "scheduler round duration in microseconds (empty with telemetry off)",
        &snapshot.round_duration_histogram,
    );
    exp.histogram(
        "wnw_job_query_cost",
        "unique-node queries per finished job",
        &snapshot.job_cost_histogram,
    );
    exp.histogram(
        "wnw_resilience_retries_per_query",
        "retries needed per successful neighbor fetch",
        &snapshot.resilience.retries_per_call,
    );

    exp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wnw_access::counter::QueryStats;
    use wnw_service::{HistoryStoreStats, PoolStats};
    use wnw_telemetry::prometheus::validate;
    use wnw_telemetry::Histogram;

    fn snapshot() -> ServiceMetricsSnapshot {
        let waits = Histogram::new();
        waits.record(120);
        waits.record(4_000);
        ServiceMetricsSnapshot {
            jobs_submitted: 9,
            jobs_rejected: 2,
            jobs_queued: 1,
            jobs_running: 2,
            jobs_completed: 4,
            jobs_cancelled: 1,
            jobs_expired: 0,
            jobs_failed: 1,
            jobs_degraded: 1,
            walkers_degraded: 2,
            jobs_finished: 6,
            samples_delivered: 480,
            aggregate_query_cost: 700,
            isolated_query_cost: 1000,
            budget_refunded: 55,
            mean_latency: Duration::from_millis(4),
            jobs_started: 8,
            mean_queue_wait: Duration::from_micros(2_060),
            max_queue_wait: Duration::from_micros(4_000),
            pool: QueryStats {
                unique_nodes: 700,
                api_calls: 900,
                cache_hits: 1_400,
                attribute_reads: 480,
            },
            worker_pool: PoolStats {
                workers: 3,
                rounds_dispatched: 40,
                spawnless_rounds: 11,
                worker_wakeups: 118,
            },
            history: HistoryStoreStats {
                hits: 2,
                misses: 3,
                publications: 2,
                published_walks: 64,
                reused_walks: 32,
                reuse_savings: 29,
                epoch: 2,
            },
            resilience: wnw_service::ResilienceStats {
                calls: 40,
                faults_seen: 7,
                retries: 6,
                backoff_wait_secs: 19,
                rate_limit_honored: 3,
                retries_exhausted: 1,
                recovered: 5,
                breaker_opened: 1,
                breaker_half_open_probes: 1,
                breaker_fast_fails: 2,
                breaker_open: true,
                clock_secs: 77,
                retries_per_call: Histogram::new().snapshot(),
            },
            queue_wait_histogram: waits.snapshot(),
            latency_histogram: Histogram::new().snapshot(),
            first_sample_histogram: Histogram::new().snapshot(),
            job_cost_histogram: Histogram::new().snapshot(),
            round_duration_histogram: Histogram::new().snapshot(),
        }
    }

    #[test]
    fn exposition_is_valid_and_carries_every_family() {
        let text = exposition(&snapshot());
        let stats = validate(&text).expect("document validates");
        assert_eq!(stats.histograms, 6);
        assert!(
            stats.series >= 20,
            "expected a rich scrape, got {} series",
            stats.series
        );
        for needle in [
            "wnw_jobs_submitted_total 9",
            "wnw_jobs_queued 1",
            "wnw_jobs_degraded_total 1",
            "wnw_walkers_degraded_total 2",
            "wnw_shared_cache_savings 300",
            "wnw_pool_cache_hits_total 1400",
            "wnw_worker_pool_workers 3",
            "wnw_history_reuse_savings_total 29",
            "wnw_resilience_retries_total 6",
            "wnw_resilience_backoff_wait_seconds_total 19",
            "wnw_resilience_rate_limit_honored_total 3",
            "wnw_resilience_breaker_opened_total 1",
            "wnw_resilience_breaker_open 1",
            "wnw_resilience_retries_per_query_bucket{le=\"+Inf\"} 0",
            "wnw_queue_wait_us_count 2",
            "wnw_queue_wait_us_sum 4120",
            "wnw_queue_wait_us_bucket{le=\"+Inf\"} 2",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn empty_snapshot_still_exposes_complete_histogram_families() {
        let empty = ServiceMetricsSnapshot {
            queue_wait_histogram: Histogram::new().snapshot(),
            ..snapshot()
        };
        let text = exposition(&empty);
        validate(&text).expect("empty histograms are still well-formed");
        assert!(text.contains("wnw_queue_wait_us_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("wnw_queue_wait_us_sum 0"));
        assert!(text.contains("wnw_queue_wait_us_count 0"));
    }
}
