//! Hand-rolled HTTP/1.1 wire handling: request parsing and response
//! writing.
//!
//! The gateway speaks the small, boring subset of HTTP/1.1 that a sampling
//! frontend needs — request line + headers + `Content-Length` bodies on the
//! way in; fixed-length or `Transfer-Encoding: chunked` responses on the
//! way out; keep-alive connection reuse. Everything is bounded: header
//! block, header count, and body size all have hard caps so a misbehaving
//! client cannot balloon a worker's memory.

use crate::json::Json;
use std::io::{self, BufRead, Read, Write};

/// Maximum bytes accepted for the request line plus all headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless a `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.0 (changes the keep-alive default).
    pub http10: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response
    /// (`Connection` header, falling back to the HTTP-version default).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => !self.http10,
        }
    }

    /// The path split into non-empty `/`-separated segments.
    pub fn path_segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly before sending a request —
    /// the normal end of a keep-alive connection, not an error to report.
    Closed,
    /// The bytes on the wire are not a well-formed HTTP/1.x request.
    Malformed(&'static str),
    /// The request exceeded a size bound (header block or body).
    TooLarge(&'static str),
    /// The socket failed mid-request (includes read timeouts).
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one request from `reader`. Bodies larger than `max_body` are
/// rejected with [`RequestError::TooLarge`] without being read.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, RequestError> {
    let mut header_budget = MAX_HEADER_BYTES;

    // Request line; tolerate (bounded) stray CRLFs between keep-alive
    // requests, as RFC 9112 recommends.
    let mut line = String::new();
    for _ in 0..4 {
        line = read_line(reader, &mut header_budget)?;
        if line.is_empty() && header_budget == MAX_HEADER_BYTES {
            return Err(RequestError::Closed);
        }
        if !line.is_empty() {
            break;
        }
    }
    if line.is_empty() {
        return Err(RequestError::Malformed("empty request line"));
    }
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or(RequestError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(RequestError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(RequestError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(RequestError::Malformed("malformed request line"));
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(RequestError::Malformed("unsupported HTTP version")),
    };
    if !method.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(RequestError::Malformed("invalid method"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(RequestError::Malformed("request target must be a path"));
    }

    // Headers until the blank line.
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut header_budget)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RequestError::Malformed("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
        http10,
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(RequestError::Malformed(
            "chunked request bodies are not supported",
        ));
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed("invalid Content-Length"))?,
    };
    if length > max_body {
        return Err(RequestError::TooLarge("request body too large"));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..request })
}

/// Reads one CRLF- (or bare-LF-) terminated line, charging `budget`.
fn read_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<String, RequestError> {
    let mut raw = Vec::new();
    let read = reader
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if read > *budget {
        return Err(RequestError::TooLarge("header block too large"));
    }
    *budget -= read;
    if read == 0 {
        // EOF: report as an empty line; the caller decides whether that is
        // a clean close (before a request) or a truncation (inside one).
        return Ok(String::new());
    }
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| RequestError::Malformed("non-UTF-8 header bytes"))
}

/// Canonical reason phrase for the status codes the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a complete fixed-length response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a JSON response.
pub fn write_json(w: &mut impl Write, status: u16, body: &Json, close: bool) -> io::Result<()> {
    write_response(
        w,
        status,
        "application/json",
        body.encode().as_bytes(),
        close,
    )
}

/// Writes a JSON error body `{"error": message}`.
pub fn write_error(w: &mut impl Write, status: u16, message: &str, close: bool) -> io::Result<()> {
    write_json(
        w,
        status,
        &Json::obj(vec![("error", Json::str(message))]),
        close,
    )
}

/// A `Transfer-Encoding: chunked` response body in progress.
///
/// Every chunk is flushed to the socket immediately — the whole point of
/// the streaming endpoint is that the client sees each sample as the
/// scheduler lands it, not a buffered batch at job end.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the body writer. Streaming
    /// responses always close the connection when done.
    pub fn begin(mut w: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            status_reason(status),
            content_type,
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk (non-empty; an empty chunk would terminate the
    /// body) and flushes it.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        debug_assert!(!data.is_empty(), "empty chunks terminate the stream");
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminates the body (zero-length chunk, no trailers).
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(bytes.to_vec()), 1024)
    }

    #[test]
    fn parses_a_get_request() {
        let req =
            parse(b"GET /v1/metrics?verbose=1 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert_eq!(req.path_segments(), vec!["v1", "metrics"]);
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req =
            parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"seed\":42}").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"seed\":42}");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive());
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive(), "HTTP/1.0 defaults to close");
        let old_keep = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(old_keep.keep_alive());
    }

    #[test]
    fn keep_alive_sequences_parse_back_to_back() {
        let mut cursor = Cursor::new(
            b"GET /healthz HTTP/1.1\r\n\r\n\r\nDELETE /v1/jobs/3 HTTP/1.1\r\n\r\n".to_vec(),
        );
        let first = read_request(&mut cursor, 1024).unwrap();
        assert_eq!(first.path, "/healthz");
        // The stray CRLF between requests is tolerated.
        let second = read_request(&mut cursor, 1024).unwrap();
        assert_eq!(second.method, "DELETE");
        assert_eq!(second.path_segments(), vec!["v1", "jobs", "3"]);
        // Clean EOF afterwards.
        assert!(matches!(
            read_request(&mut cursor, 1024),
            Err(RequestError::Closed)
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for (bytes, what) in [
            (&b"GARBAGE\r\n\r\n"[..], "no target"),
            (b"GET /x HTTP/2\r\n\r\n", "bad version"),
            (b"GET x HTTP/1.1\r\n\r\n", "non-path target"),
            (b"G@T /x HTTP/1.1\r\n\r\n", "bad method"),
            (b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n", "bad header"),
            (
                b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
                "bad length",
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                "chunked body",
            ),
        ] {
            assert!(
                matches!(parse(bytes), Err(RequestError::Malformed(_))),
                "{what} should be malformed"
            );
        }
    }

    #[test]
    fn size_bounds_are_enforced() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(RequestError::TooLarge(_))
        ));
        let huge = format!(
            "GET /x HTTP/1.1\r\nA: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(RequestError::TooLarge(_))
        ));
        let many = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            "A: b\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(
            parse(many.as_bytes()),
            Err(RequestError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_bodies_surface_as_io_errors() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(RequestError::Io(_))
        ));
    }

    #[test]
    fn responses_have_the_expected_shape() {
        let mut out = Vec::new();
        write_json(
            &mut out,
            200,
            &Json::obj(vec![("ok", Json::Bool(true))]),
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_error(&mut out, 404, "unknown job", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"unknown job\"}"));
    }

    #[test]
    fn chunked_writer_frames_chunks() {
        let mut out = Vec::new();
        let mut body = ChunkedWriter::begin(&mut out, 200, "application/x-ndjson").unwrap();
        body.write_chunk(b"{\"a\":1}\n").unwrap();
        body.write_chunk(b"{\"b\":2}\n").unwrap();
        body.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.ends_with("8\r\n{\"a\":1}\n\r\n8\r\n{\"b\":2}\n\r\n0\r\n\r\n"));
    }
}
