//! Hand-rolled HTTP/1.1 wire handling: incremental request parsing and
//! response encoding.
//!
//! The gateway speaks the small, boring subset of HTTP/1.1 that a sampling
//! frontend needs — request line + headers + `Content-Length` bodies on the
//! way in; fixed-length or `Transfer-Encoding: chunked` responses on the
//! way out; keep-alive connection reuse. Everything is bounded: header
//! block, header count, and body size all have hard caps so a misbehaving
//! client cannot balloon the server's memory.
//!
//! Parsing is **incremental and non-blocking by construction**: the
//! readiness-loop server appends whatever bytes the socket had into a
//! per-connection buffer and asks [`RequestParser::parse`] whether a
//! complete request is in there yet. The parser never does I/O, so the
//! same code is exercised byte-for-byte by unit tests, the event loop,
//! and any future transport.

use crate::json::Json;
use std::io::{self, Write};

/// Maximum bytes accepted for the request line plus all headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;
/// Terminating frame of a chunked response body (zero-length chunk, no
/// trailers).
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless a `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.0 (changes the keep-alive default).
    pub http10: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response
    /// (`Connection` header, falling back to the HTTP-version default).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => !self.http10,
        }
    }

    /// The path split into non-empty `/`-separated segments.
    pub fn path_segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why buffered bytes can never become a valid request.
///
/// Both variants are fatal to the connection; "not enough bytes yet" is
/// not an error but [`Parse::Incomplete`]. I/O-level conditions (EOF,
/// timeouts) are the transport's business, not the parser's — which is
/// also what keeps `WouldBlock`-vs-`TimedOut` platform drift out of the
/// parsing layer entirely (see [`is_idle_timeout`]).
#[derive(Debug)]
pub enum RequestError {
    /// The bytes on the wire are not a well-formed HTTP/1.x request.
    Malformed(&'static str),
    /// The request exceeded a size bound (header block or body).
    TooLarge(&'static str),
}

/// One [`RequestParser::parse`] verdict over a byte buffer.
#[derive(Debug)]
pub enum Parse {
    /// No complete request yet — read more bytes and parse again.
    Incomplete,
    /// A complete request occupying the first `consumed` buffer bytes
    /// (strip them before parsing the next pipelined request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer the request consumed, including any
        /// tolerated stray CRLFs before the request line.
        consumed: usize,
    },
}

/// Incremental HTTP/1.1 request parser.
///
/// Stateless between calls: feed it the connection's *entire* unconsumed
/// buffer each time. Cheap in practice — requests are small and the scan
/// restarts only while a request is still arriving.
#[derive(Debug, Clone, Copy)]
pub struct RequestParser {
    max_body: usize,
}

impl RequestParser {
    /// A parser that rejects bodies larger than `max_body` with
    /// [`RequestError::TooLarge`] (without ever buffering them).
    pub fn new(max_body: usize) -> Self {
        RequestParser { max_body }
    }

    /// Tries to parse one complete request from the front of `buf`.
    pub fn parse(&self, buf: &[u8]) -> Result<Parse, RequestError> {
        // Tolerate (bounded) stray CRLFs between keep-alive requests, as
        // RFC 9112 recommends.
        let start = buf
            .iter()
            .take_while(|&&b| b == b'\r' || b == b'\n')
            .count();
        if start > 8 {
            return Err(RequestError::Malformed("empty request line"));
        }
        if start == buf.len() {
            return Ok(Parse::Incomplete);
        }

        // The header block ends at the first empty line.
        let Some(head_end) = find_head_end(&buf[start..]).map(|e| start + e) else {
            if buf.len() - start > MAX_HEADER_BYTES {
                return Err(RequestError::TooLarge("header block too large"));
            }
            return Ok(Parse::Incomplete);
        };
        if head_end - start > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge("header block too large"));
        }
        let head = std::str::from_utf8(&buf[start..head_end])
            .map_err(|_| RequestError::Malformed("non-UTF-8 header bytes"))?;
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

        // Request line.
        let line = lines.next().unwrap_or("");
        let mut parts = line.split(' ').filter(|p| !p.is_empty());
        let method = parts
            .next()
            .ok_or(RequestError::Malformed("missing method"))?
            .to_string();
        let target = parts
            .next()
            .ok_or(RequestError::Malformed("missing request target"))?;
        let version = parts
            .next()
            .ok_or(RequestError::Malformed("missing HTTP version"))?;
        if parts.next().is_some() {
            return Err(RequestError::Malformed("malformed request line"));
        }
        let http10 = match version {
            "HTTP/1.1" => false,
            "HTTP/1.0" => true,
            _ => return Err(RequestError::Malformed("unsupported HTTP version")),
        };
        if !method.chars().all(|c| c.is_ascii_alphabetic()) {
            return Err(RequestError::Malformed("invalid method"));
        }
        let path = target.split('?').next().unwrap_or(target).to_string();
        if !path.starts_with('/') {
            return Err(RequestError::Malformed("request target must be a path"));
        }

        // Headers until the blank line.
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(RequestError::TooLarge("too many headers"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(RequestError::Malformed("header without ':'"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(RequestError::Malformed("invalid header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut request = Request {
            method,
            path,
            headers,
            body: Vec::new(),
            http10,
        };
        if request
            .header("transfer-encoding")
            .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
        {
            return Err(RequestError::Malformed(
                "chunked request bodies are not supported",
            ));
        }
        let length = match request.header("content-length") {
            None => 0,
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| RequestError::Malformed("invalid Content-Length"))?,
        };
        if length > self.max_body {
            return Err(RequestError::TooLarge("request body too large"));
        }
        let body_end = head_end + length;
        if buf.len() < body_end {
            return Ok(Parse::Incomplete);
        }
        request.body = buf[head_end..body_end].to_vec();
        Ok(Parse::Complete {
            request,
            consumed: body_end,
        })
    }
}

/// Index just past the blank line terminating the header block, if one is
/// present. Lines are LF-terminated with an optional preceding CR.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let mut line_end = i;
        if line_end > line_start && buf[line_end - 1] == b'\r' {
            line_end -= 1;
        }
        if line_end == line_start {
            return Some(i + 1);
        }
        line_start = i + 1;
    }
    None
}

/// Whether `e` is an idle-timeout condition on a socket.
///
/// Platforms disagree on what a timed-out or not-ready socket read/write
/// returns: Unix surfaces `WouldBlock` (EAGAIN), Windows `TimedOut`, and
/// non-blocking sockets report `WouldBlock` everywhere. Every timeout and
/// readiness decision in the gateway and its client goes through this one
/// predicate so keep-alive reaping and wedge-cancel-refund behave
/// identically on every platform.
pub fn is_idle_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Canonical reason phrase for the status codes the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a complete fixed-length response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a JSON response.
pub fn write_json(w: &mut impl Write, status: u16, body: &Json, close: bool) -> io::Result<()> {
    write_response(
        w,
        status,
        "application/json",
        body.encode().as_bytes(),
        close,
    )
}

/// Writes a JSON error body `{"error": message}`.
pub fn write_error(w: &mut impl Write, status: u16, message: &str, close: bool) -> io::Result<()> {
    write_json(
        w,
        status,
        &Json::obj(vec![("error", Json::str(message))]),
        close,
    )
}

/// A complete fixed-length response as bytes, for write-buffer queueing.
pub fn response_bytes(status: u16, content_type: &str, body: &[u8], close: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    write_response(&mut out, status, content_type, body, close).expect("Vec writes are infallible");
    out
}

/// A JSON response as bytes.
pub fn json_bytes(status: u16, body: &Json, close: bool) -> Vec<u8> {
    response_bytes(status, "application/json", body.encode().as_bytes(), close)
}

/// A `{"error": message}` response as bytes.
pub fn error_bytes(status: u16, message: &str, close: bool) -> Vec<u8> {
    json_bytes(
        status,
        &Json::obj(vec![("error", Json::str(message))]),
        close,
    )
}

/// The response head opening a chunked body (streaming responses always
/// close the connection when done).
pub fn chunked_head(status: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        status_reason(status),
        content_type,
    )
    .into_bytes()
}

/// Appends one chunk frame (size line + payload + CRLF) to `out`. `data`
/// must be non-empty — an empty chunk would terminate the body (that is
/// [`CHUNK_TERMINATOR`]'s job).
pub fn encode_chunk(out: &mut Vec<u8>, data: &[u8]) {
    debug_assert!(!data.is_empty(), "empty chunks terminate the stream");
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// A `Transfer-Encoding: chunked` response body in progress, over a
/// blocking writer.
///
/// Every chunk is flushed immediately — the whole point of the streaming
/// endpoint is that the client sees each sample as the scheduler lands
/// it, not a buffered batch at job end. (The readiness-loop server frames
/// chunks with [`encode_chunk`] into its own write buffer instead; this
/// writer serves blocking callers and keeps the frame format pinned by
/// one implementation.)
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the body writer.
    pub fn begin(mut w: W, status: u16, content_type: &str) -> io::Result<Self> {
        w.write_all(&chunked_head(status, content_type))?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk (non-empty; an empty chunk would terminate the
    /// body) and flushes it.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(data.len() + 16);
        encode_chunk(&mut frame, data);
        self.w.write_all(&frame)?;
        self.w.flush()
    }

    /// Terminates the body (zero-length chunk, no trailers).
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(CHUNK_TERMINATOR)?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses a buffer expected to hold exactly one complete request.
    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        match RequestParser::new(1024).parse(bytes)? {
            Parse::Complete { request, consumed } => {
                assert_eq!(consumed, bytes.len(), "whole buffer consumed");
                Ok(request)
            }
            Parse::Incomplete => panic!("complete request parsed as incomplete"),
        }
    }

    #[test]
    fn parses_a_get_request() {
        let req =
            parse(b"GET /v1/metrics?verbose=1 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert_eq!(req.path_segments(), vec!["v1", "metrics"]);
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req =
            parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"seed\":42}").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"seed\":42}");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive());
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive(), "HTTP/1.0 defaults to close");
        let old_keep = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(old_keep.keep_alive());
    }

    #[test]
    fn incremental_parsing_reports_incomplete_until_the_request_lands() {
        let parser = RequestParser::new(1024);
        let full = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"seed\":42}";
        // Every strict prefix is Incomplete, never an error.
        for cut in 0..full.len() {
            assert!(
                matches!(parser.parse(&full[..cut]), Ok(Parse::Incomplete)),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let Ok(Parse::Complete { request, consumed }) = parser.parse(full) else {
            panic!("full request must parse");
        };
        assert_eq!(consumed, full.len());
        assert_eq!(request.body, b"{\"seed\":42}");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let parser = RequestParser::new(1024);
        let buf = b"GET /healthz HTTP/1.1\r\n\r\n\r\nDELETE /v1/jobs/3 HTTP/1.1\r\n\r\n".to_vec();
        let Ok(Parse::Complete { request, consumed }) = parser.parse(&buf) else {
            panic!("first request must parse");
        };
        assert_eq!(request.path, "/healthz");
        // The stray CRLF between requests is tolerated (charged to the
        // *second* request's consumption).
        let Ok(Parse::Complete { request, consumed }) = parser.parse(&buf[consumed..]) else {
            panic!("second request must parse");
        };
        assert_eq!(request.method, "DELETE");
        assert_eq!(request.path_segments(), vec!["v1", "jobs", "3"]);
        assert_eq!(consumed, buf.len() - 25, "second parse consumed the rest");
        // An empty buffer afterwards is simply incomplete; EOF handling is
        // the transport's job.
        assert!(matches!(parser.parse(b""), Ok(Parse::Incomplete)));
    }

    #[test]
    fn unbounded_stray_crlfs_are_rejected() {
        let parser = RequestParser::new(1024);
        assert!(matches!(
            parser.parse(&b"\r\n".repeat(8)),
            Err(RequestError::Malformed("empty request line"))
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for (bytes, what) in [
            (&b"GARBAGE\r\n\r\n"[..], "no target"),
            (b"GET /x HTTP/2\r\n\r\n", "bad version"),
            (b"GET x HTTP/1.1\r\n\r\n", "non-path target"),
            (b"G@T /x HTTP/1.1\r\n\r\n", "bad method"),
            (b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n", "bad header"),
            (
                b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
                "bad length",
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                "chunked body",
            ),
        ] {
            assert!(
                matches!(parse(bytes), Err(RequestError::Malformed(_))),
                "{what} should be malformed"
            );
        }
    }

    #[test]
    fn size_bounds_are_enforced() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(RequestError::TooLarge(_))
        ));
        let huge = format!(
            "GET /x HTTP/1.1\r\nA: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(RequestError::TooLarge(_))
        ));
        // The header cap fires even before the blank line arrives — an
        // attacker cannot stall a connection open by trickling an
        // endless header block.
        let unterminated = format!("GET /x HTTP/1.1\r\nA: {}", "y".repeat(MAX_HEADER_BYTES));
        assert!(matches!(
            RequestParser::new(1024).parse(unterminated.as_bytes()),
            Err(RequestError::TooLarge(_))
        ));
        let many = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            "A: b\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(
            parse(many.as_bytes()),
            Err(RequestError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_bodies_stay_incomplete_for_the_deadline_to_reap() {
        // A body that never finishes arriving is not a parse error — the
        // connection's whole-request deadline is what reaps it.
        assert!(matches!(
            RequestParser::new(1024).parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Ok(Parse::Incomplete)
        ));
    }

    #[test]
    fn timeout_kinds_are_classified_uniformly() {
        for kind in [io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            assert!(is_idle_timeout(&io::Error::new(kind, "t")), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::UnexpectedEof,
        ] {
            assert!(!is_idle_timeout(&io::Error::new(kind, "t")), "{kind:?}");
        }
    }

    #[test]
    fn responses_have_the_expected_shape() {
        let mut out = Vec::new();
        write_json(
            &mut out,
            200,
            &Json::obj(vec![("ok", Json::Bool(true))]),
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let out = error_bytes(404, "unknown job", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"unknown job\"}"));

        // The byte-producing and writer-based encoders agree exactly.
        let mut written = Vec::new();
        write_error(&mut written, 404, "unknown job", true).unwrap();
        assert_eq!(written, text.as_bytes());
    }

    #[test]
    fn chunked_writer_frames_chunks() {
        let mut out = Vec::new();
        let mut body = ChunkedWriter::begin(&mut out, 200, "application/x-ndjson").unwrap();
        body.write_chunk(b"{\"a\":1}\n").unwrap();
        body.write_chunk(b"{\"b\":2}\n").unwrap();
        body.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.ends_with("8\r\n{\"a\":1}\n\r\n8\r\n{\"b\":2}\n\r\n0\r\n\r\n"));
    }
}
