//! A tiny, dependency-free JSON encoder/decoder.
//!
//! The workspace builds offline with std only (serde was dropped in the
//! build-system PR), so the gateway carries its own minimal JSON module:
//! a [`Json`] value tree, an encoder, and a recursive-descent parser.
//!
//! One deliberate departure from "numbers are f64": integer tokens are kept
//! as exact [`Json::UInt`] / [`Json::Int`] values. Sampling seeds and query
//! budgets are `u64`s, and the service's reproducibility contract keys on
//! the exact seed — routing it through an `f64` would silently corrupt any
//! seed above 2^53.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token (exact).
    UInt(u64),
    /// A negative integer token (exact).
    Int(i64),
    /// Any other number (fractions, exponents).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (insertion order when built, file
    /// order when parsed); duplicate keys keep the first occurrence on
    /// [`get`](Json::get).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member of an object by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (exact; a
    /// fractional or negative number is `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Int(n) => u64::try_from(n).ok(),
            // Strict `<`: `u64::MAX as f64` rounds up to 2^64, which does
            // not fit — a `<=` would let the cast saturate and silently
            // corrupt the value.
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n < u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes the value to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(n) => {
                // JSON has no NaN/Infinity; encode them as null.
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `input` (surrounding whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(value)
}

/// Nesting depth cap — malicious inputs must not overflow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one code point.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate escape")?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                // Raw control characters are not valid inside JSON strings.
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is known-valid; copy it through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            value = value * 16 + u32::from(digit);
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if !fractional {
            if let Some(rest) = token.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    // Negative integer; keep exact when it fits i64.
                    if let Ok(n) = token.parse::<i64>() {
                        return Ok(Json::Int(n));
                    }
                }
            } else if let Ok(n) = token.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        match token.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err("invalid number"))
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Json {
        let value = parse(text).unwrap();
        assert_eq!(parse(&value.encode()).unwrap(), value);
        value
    }

    #[test]
    fn scalars_parse_and_encode() {
        assert_eq!(roundtrip("null"), Json::Null);
        assert_eq!(roundtrip("true"), Json::Bool(true));
        assert_eq!(roundtrip("false"), Json::Bool(false));
        assert_eq!(roundtrip("42"), Json::UInt(42));
        assert_eq!(roundtrip("-7"), Json::Int(-7));
        assert_eq!(roundtrip("2.5"), Json::Num(2.5));
        // `1e3` parses as a float; it re-encodes as the integer `1000`, so
        // it is value- but not variant-stable across a roundtrip.
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(roundtrip("\"hi\""), Json::str("hi"));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // 2^63 + 27 is not representable as f64; an f64-only parser would
        // silently change the seed and break reproducibility.
        let seed = (1u64 << 63) + 27;
        let text = format!("{{\"seed\":{seed}}}");
        let value = parse(&text).unwrap();
        assert_eq!(value.get("seed").unwrap().as_u64(), Some(seed));
        assert_eq!(value.encode(), text);
        assert_eq!(
            parse(&u64::MAX.to_string()).unwrap().as_u64(),
            Some(u64::MAX)
        );
        // 2^64 overflows u64 parsing, falls back to a float, and must be
        // rejected by as_u64 rather than saturating to u64::MAX.
        let overflow = parse("18446744073709551616").unwrap();
        assert!(matches!(overflow, Json::Num(_)));
        assert_eq!(overflow.as_u64(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let value = roundtrip(r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":""}"#);
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[2].get("b"),
            Some(&Json::Null)
        );
        assert_eq!(value.get("e").unwrap().as_str(), Some(""));
        assert!(value.get("missing").is_none());
        assert_eq!(roundtrip("[]"), Json::Arr(vec![]));
        assert_eq!(roundtrip("{}"), Json::Obj(vec![]));
        assert_eq!(
            roundtrip(" [ 1 , 2 ] "),
            Json::Arr(vec![Json::UInt(1), Json::UInt(2)])
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let value = roundtrip(r#""line\nquote\"backslash\\tab\tunicode\u00e9""#);
        assert_eq!(
            value.as_str(),
            Some("line\nquote\"backslash\\tab\tunicodeé")
        );
        // Surrogate pair (emoji) and raw UTF-8 both survive.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert_eq!(roundtrip("\"héllo 😀\"").as_str(), Some("héllo 😀"));
        // Control characters are escaped on encode.
        assert_eq!(Json::str("a\u{0001}b").encode(), r#""a\u0001b""#);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "nul",
            "[1]]",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
            "01x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = parse("[nope]").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err(), "pathological nesting must not crash");
    }

    #[test]
    fn accessors_convert_sensibly() {
        assert_eq!(Json::UInt(5).as_f64(), Some(5.0));
        assert_eq!(Json::Int(-5).as_u64(), None);
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Bool(true).as_u64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert!(Json::Null.is_null());
        assert_eq!(
            Json::obj(vec![("k", Json::UInt(1))]).get("k"),
            Some(&Json::UInt(1))
        );
    }
}
