//! A minimal blocking HTTP/1.1 client for the gateway's wire format.
//!
//! Exists so the integration tests and `examples/http_gateway.rs` can drive
//! the server over real loopback sockets without external dependencies. It
//! speaks exactly what the gateway serves: fixed-length JSON responses
//! ([`get`] / [`post`] / [`delete`], or [`Connection`] for keep-alive
//! reuse) and chunked NDJSON event streams ([`open_stream`]).

use crate::http::{is_idle_timeout, status_reason};
use crate::json::{self, Json, JsonError};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Default timeout applied to every client socket: generous enough for a
/// busy loopback test machine, bounded enough that a hung server fails
/// tests instead of wedging them. Deliberately slow readers (load-test
/// stall profiles) override it per connection via
/// [`Connection::connect_with_timeout`] / [`open_stream_with_timeout`] so
/// their own stalls don't kill their streams.
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A complete (non-streaming) HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body (chunked bodies arrive de-chunked).
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Json, JsonError> {
        json::parse(std::str::from_utf8(&self.body).map_err(|_| JsonError {
            offset: 0,
            message: "body is not UTF-8",
        })?)
    }
}

/// One-shot `GET` (the connection is closed after the response).
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

/// One-shot `POST` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &Json) -> io::Result<Response> {
    request(addr, "POST", path, Some(body.encode().as_bytes()))
}

/// One-shot `DELETE`.
pub fn delete(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "DELETE", path, None)
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<Response> {
    let mut conn = Connection::connect(addr)?;
    conn.request_with(method, path, body, true)
}

/// A keep-alive client connection: sequential requests over one socket.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl Connection {
    /// Opens a connection to the gateway with the
    /// [`DEFAULT_CLIENT_TIMEOUT`].
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, DEFAULT_CLIENT_TIMEOUT)
    }

    /// Opens a connection with an explicit read/write timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            addr,
        })
    }

    /// The server address this connection talks to.
    pub fn peer(&self) -> SocketAddr {
        self.addr
    }

    /// Sends a `GET` and reads the response, keeping the connection open.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request_with("GET", path, None, false)
    }

    /// Sends a `POST` with a JSON body, keeping the connection open.
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<Response> {
        self.request_with("POST", path, Some(body.encode().as_bytes()), false)
    }

    fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        close: bool,
    ) -> io::Result<Response> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: {}\r\n",
            self.addr,
            if close { "close" } else { "keep-alive" },
        )?;
        if let Some(body) = body {
            write!(
                self.writer,
                "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )?;
            self.writer.write_all(body)?;
        } else {
            self.writer.write_all(b"\r\n")?;
        }
        self.writer.flush()?;
        let (status, headers) = read_head(&mut self.reader)?;
        let body = read_body(&mut self.reader, &headers)?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// Reads `HTTP/1.x STATUS REASON` plus headers up to the blank line.
fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<(String, String)>)> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("bad status line: {status_line:?}")));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid(format!("bad status code in {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

fn read_body(
    reader: &mut BufReader<TcpStream>,
    headers: &[(String, String)],
) -> io::Result<Vec<u8>> {
    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        let mut body = Vec::new();
        while let Some(chunk) = read_chunk(reader)? {
            body.extend_from_slice(&chunk);
        }
        return Ok(body);
    }
    match header("content-length") {
        Some(v) => {
            let length = v
                .parse::<usize>()
                .map_err(|_| invalid(format!("bad Content-Length {v:?}")))?;
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body).map_err(normalize_timeout)?;
            Ok(body)
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body).map_err(normalize_timeout)?;
            Ok(body)
        }
    }
}

/// Reads one chunk of a chunked body; `None` is the terminating zero chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Vec<u8>>> {
    let size_line = read_line(reader)?;
    let size = usize::from_str_radix(size_line.split(';').next().unwrap_or("").trim(), 16)
        .map_err(|_| invalid(format!("bad chunk size {size_line:?}")))?;
    if size == 0 {
        // Trailer section (we send none) ends with a blank line.
        loop {
            if read_line(reader)?.is_empty() {
                break;
            }
        }
        return Ok(None);
    }
    let mut chunk = vec![0u8; size];
    reader.read_exact(&mut chunk).map_err(normalize_timeout)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf).map_err(normalize_timeout)?;
    if &crlf != b"\r\n" {
        return Err(invalid("chunk not CRLF-terminated".to_string()));
    }
    Ok(Some(chunk))
}

fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut raw = Vec::new();
    let read = reader
        .read_until(b'\n', &mut raw)
        .map_err(normalize_timeout)?;
    if read == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| invalid("non-UTF-8 response bytes".to_string()))
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Normalizes the platform-dependent socket-timeout kinds (`WouldBlock`
/// on Unix, `TimedOut` on Windows — see
/// [`is_idle_timeout`](crate::http::is_idle_timeout)) to `TimedOut`, so
/// callers that distinguish "server too slow" from "connection broken"
/// can match one kind on every platform.
fn normalize_timeout(e: io::Error) -> io::Error {
    if is_idle_timeout(&e) {
        io::Error::new(io::ErrorKind::TimedOut, e)
    } else {
        e
    }
}

/// Opens `GET {path}` and returns the NDJSON event stream. Fails with
/// [`io::ErrorKind::Other`] when the server answers non-200 (the error
/// message carries the status and body).
pub fn open_stream(addr: SocketAddr, path: &str) -> io::Result<EventStream> {
    open_stream_with_timeout(addr, path, DEFAULT_CLIENT_TIMEOUT)
}

/// Like [`open_stream`] with an explicit socket timeout — a slow-reading
/// client that deliberately stalls between events longer than the default
/// timeout must widen it, or its own stall kills the stream.
pub fn open_stream_with_timeout(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
) -> io::Result<EventStream> {
    let mut conn = Connection::connect_with_timeout(addr, timeout)?;
    write!(
        conn.writer,
        "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
        conn.addr
    )?;
    conn.writer.flush()?;
    let (status, headers) = read_head(&mut conn.reader)?;
    if status != 200 {
        let body = read_body(&mut conn.reader, &headers)?;
        return Err(io::Error::other(format!(
            "{} {}: {}",
            status,
            status_reason(status),
            String::from_utf8_lossy(&body),
        )));
    }
    Ok(EventStream {
        reader: conn.reader,
        pending: Vec::new(),
        done: false,
    })
}

/// A live NDJSON event stream: iterates parsed JSON objects, one per line,
/// as the server flushes them. Dropping it mid-stream closes the socket —
/// which the gateway treats as a client hang-up, cancelling the job.
#[derive(Debug)]
pub struct EventStream {
    reader: BufReader<TcpStream>,
    /// De-chunked bytes not yet consumed as complete lines.
    pending: Vec<u8>,
    done: bool,
}

impl EventStream {
    /// The next complete NDJSON line, across chunk boundaries.
    fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop(); // the newline
                let line = String::from_utf8(line)
                    .map_err(|_| invalid("non-UTF-8 stream bytes".to_string()))?;
                return Ok(Some(line));
            }
            match read_chunk(&mut self.reader)? {
                Some(chunk) => self.pending.extend_from_slice(&chunk),
                None => {
                    // End of body; a final unterminated line would be a
                    // server bug (every event is newline-terminated).
                    return Ok(None);
                }
            }
        }
    }
}

impl Iterator for EventStream {
    type Item = io::Result<Json>;

    fn next(&mut self) -> Option<io::Result<Json>> {
        if self.done {
            return None;
        }
        match self.next_line() {
            Ok(Some(line)) => Some(
                json::parse(&line).map_err(|e| invalid(format!("bad event line {line:?}: {e}"))),
            ),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}
