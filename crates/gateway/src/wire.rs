//! Wire mapping between the gateway's JSON bodies and the service's
//! request/event/metrics types.
//!
//! The submit body mirrors [`SampleJob`] plus the service-level knobs of a
//! [`SampleRequest`]:
//!
//! ```json
//! {
//!   "sampler": "walk_estimate",        // | "many_short_runs" | "one_long_run"
//!   "input": "srw",                    // | "mhrw"
//!   "samples": 200,                    // required
//!   "seed": 42,                        // required (u64-exact)
//!   "walkers": 4,                      // optional
//!   "budget": 10000,                   // optional (unique-node queries)
//!   "diameter_estimate": 5,            // optional
//!   "start_node": 17,                  // optional (walks start here; default: the network's seed node)
//!   "history": "cooperative",          // | "independent"   (within the job)
//!   "history_policy": "isolated",      // | "shared_read" | "shared_publish"
//!   "reuse_correction": "reweighted",  // | "raw"
//!   "priority": "normal",              // | "low" | "high"
//!   "deadline_ms": 30000               // optional
//! }
//! ```
//!
//! Events stream back as NDJSON, one object per line, discriminated by an
//! `"event"` field (`sample` / `progress` / `done`) — the JSON shadows of
//! [`SampleEvent`]'s variants.

use crate::json::Json;
use std::time::Duration;
use wnw_engine::{HistoryMode, SampleJob, SamplerSpec};
use wnw_mcmc::burn_in::BurnInConfig;
use wnw_mcmc::RandomWalkKind;
use wnw_service::{
    HistogramSnapshot, HistoryPolicy, JobOutcome, JobStatus, Priority, ProgressUpdate,
    ReuseCorrection, SampleEvent, SampleRequest, ServiceMetricsSnapshot, TraceEvent,
    TraceEventKind,
};

/// Parses a submit body into a [`SampleRequest`]. Messages are phrased for
/// the remote client (they end up in a 400 response body).
pub fn sample_request_from_json(body: &Json) -> Result<SampleRequest, String> {
    let Json::Obj(fields) = body else {
        return Err("request body must be a JSON object".to_string());
    };
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "sampler"
                | "input"
                | "samples"
                | "seed"
                | "walkers"
                | "budget"
                | "diameter_estimate"
                | "start_node"
                | "history"
                | "history_policy"
                | "reuse_correction"
                | "priority"
                | "deadline_ms"
        ) {
            return Err(format!("unknown field `{key}`"));
        }
    }

    let samples = required_u64(body, "samples")? as usize;
    let seed = required_u64(body, "seed")?;
    let input = match optional_str(body, "input")?.unwrap_or("srw") {
        "srw" | "simple" => RandomWalkKind::Simple,
        "mhrw" | "metropolis_hastings" => RandomWalkKind::MetropolisHastings,
        other => return Err(format!("unknown input walk `{other}` (srw|mhrw)")),
    };
    let mut job = match optional_str(body, "sampler")?.unwrap_or("walk_estimate") {
        "walk_estimate" => SampleJob::walk_estimate(input, samples, seed),
        "many_short_runs" | "baseline" => SampleJob::baseline(input, samples, seed),
        "one_long_run" => {
            SampleJob::baseline(input, samples, seed).with_spec(SamplerSpec::OneLongRun {
                input,
                config: BurnInConfig::default(),
            })
        }
        other => {
            return Err(format!(
                "unknown sampler `{other}` (walk_estimate|many_short_runs|one_long_run)"
            ))
        }
    };
    if let Some(walkers) = optional_u64(body, "walkers")? {
        job = job.with_walkers(walkers as usize);
    }
    if let Some(budget) = optional_u64(body, "budget")? {
        job = job.with_budget(budget);
    }
    if let Some(diameter) = optional_u64(body, "diameter_estimate")? {
        job = job.with_diameter_estimate(diameter as usize);
    }
    if let Some(start) = optional_u64(body, "start_node")? {
        let start = u32::try_from(start)
            .map_err(|_| "field `start_node` must fit a 32-bit node id".to_string())?;
        job = job.with_start_node(wnw_graph::NodeId(start));
    }
    if let Some(history) = optional_str(body, "history")? {
        job = job.with_history(match history {
            "cooperative" => HistoryMode::Cooperative,
            "independent" => HistoryMode::Independent,
            other => {
                return Err(format!(
                    "unknown history mode `{other}` (cooperative|independent)"
                ))
            }
        });
    }

    let mut request = SampleRequest::new(job);
    if let Some(policy) = optional_str(body, "history_policy")? {
        // Parse against the types' own wire labels so the vocabulary has a
        // single source of truth.
        let parsed = [
            HistoryPolicy::Isolated,
            HistoryPolicy::SharedReadOnly,
            HistoryPolicy::SharedPublish,
        ]
        .into_iter()
        .find(|p| p.label() == policy)
        .ok_or_else(|| {
            format!("unknown history_policy `{policy}` (isolated|shared_read|shared_publish)")
        })?;
        // A shared policy on a job that keeps walker-private histories
        // (independent mode, baseline samplers) would be a silent no-op —
        // surface the contradiction to the client instead.
        if parsed != HistoryPolicy::Isolated
            && !(request.job.history == HistoryMode::Cooperative
                && request.job.spec.uses_shared_history())
        {
            return Err(format!(
                "history_policy `{policy}` requires a walk_estimate job with cooperative history"
            ));
        }
        request = request.with_history_policy(parsed);
    }
    if let Some(correction) = optional_str(body, "reuse_correction")? {
        let parsed = [ReuseCorrection::Reweighted, ReuseCorrection::Raw]
            .into_iter()
            .find(|c| c.label() == correction)
            .ok_or_else(|| format!("unknown reuse_correction `{correction}` (reweighted|raw)"))?;
        // The correction only applies to reused history; without a reading
        // policy it would be a silent no-op, so reject the contradiction
        // like the history_policy check above.
        if !request.history_policy.reads() {
            return Err(format!(
                "reuse_correction `{correction}` requires history_policy shared_read or \
                 shared_publish"
            ));
        }
        request = request.with_reuse_correction(parsed);
    }
    if let Some(priority) = optional_str(body, "priority")? {
        request = request.with_priority(match priority {
            "low" => Priority::Low,
            "normal" => Priority::Normal,
            "high" => Priority::High,
            other => return Err(format!("unknown priority `{other}` (low|normal|high)")),
        });
    }
    if let Some(deadline_ms) = optional_u64(body, "deadline_ms")? {
        request = request.with_deadline(Duration::from_millis(deadline_ms));
    }
    Ok(request)
}

fn required_u64(body: &Json, key: &str) -> Result<u64, String> {
    optional_u64(body, key)?.ok_or_else(|| format!("missing required field `{key}`"))
}

fn optional_u64(body: &Json, key: &str) -> Result<Option<u64>, String> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn optional_str<'a>(body: &'a Json, key: &str) -> Result<Option<&'a str>, String> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

/// The wire label of a terminal status (the status type's own
/// [`label`](JobStatus::label); kept as a function so the gateway's wire
/// surface stays in one module).
pub fn status_label(status: &JobStatus) -> &'static str {
    status.label()
}

/// One stream event as its complete NDJSON line (trailing newline
/// included) — the unit the readiness loop frames into one chunk.
pub fn event_line(event: &SampleEvent) -> Vec<u8> {
    let mut line = event_to_json(event).encode().into_bytes();
    line.push(b'\n');
    line
}

/// One stream event as its NDJSON object.
pub fn event_to_json(event: &SampleEvent) -> Json {
    match event {
        SampleEvent::Sample { walker, record } => Json::obj(vec![
            ("event", Json::str("sample")),
            ("walker", Json::UInt(*walker as u64)),
            ("node", Json::UInt(u64::from(record.node.0))),
            ("query_cost", Json::UInt(record.query_cost)),
            ("attempts", Json::UInt(u64::from(record.attempts))),
        ]),
        SampleEvent::Progress(update) => progress_to_json(update),
        SampleEvent::Done(outcome) => outcome_to_json(outcome),
    }
}

fn progress_to_json(update: &ProgressUpdate) -> Json {
    Json::obj(vec![
        ("event", Json::str("progress")),
        ("rounds", Json::UInt(update.rounds as u64)),
        ("samples", Json::UInt(update.samples as u64)),
        ("requested", Json::UInt(update.requested as u64)),
        ("live_walkers", Json::UInt(update.live_walkers as u64)),
        ("budget_consumed", Json::UInt(update.budget_consumed)),
        ("query_cost", Json::UInt(update.query_cost)),
        ("pool_unique_nodes", Json::UInt(update.pool.unique_nodes)),
    ])
}

/// A terminal outcome as its NDJSON `done` object.
pub fn outcome_to_json(outcome: &JobOutcome) -> Json {
    let mut fields = vec![
        ("event", Json::str("done")),
        ("job_id", Json::UInt(outcome.id.0)),
        ("status", Json::str(status_label(&outcome.status))),
        ("samples", Json::UInt(outcome.samples as u64)),
        ("requested", Json::UInt(outcome.requested as u64)),
        ("query_cost", Json::UInt(outcome.query_cost)),
        ("budget_consumed", Json::UInt(outcome.budget_consumed)),
        ("budget_refunded", Json::UInt(outcome.budget_refunded)),
        ("budget_exhausted", Json::Bool(outcome.budget_exhausted)),
        ("degraded", Json::Bool(outcome.degraded)),
        ("degraded_walkers", Json::UInt(outcome.degraded_walkers)),
        ("rounds", Json::UInt(outcome.rounds as u64)),
        ("latency_ms", Json::Num(duration_ms(outcome.latency))),
        ("queue_wait_ms", Json::Num(duration_ms(outcome.queue_wait))),
        ("finish_index", Json::UInt(outcome.finish_index)),
    ];
    match &outcome.status {
        JobStatus::Failed(err) => fields.push(("error", Json::Str(err.to_string()))),
        JobStatus::Panicked(message) => fields.push(("error", Json::str(message.clone()))),
        _ => {}
    }
    Json::obj(fields)
}

/// The `/v1/metrics` document: every snapshot counter, the derived
/// shared-cache saving, the queue-wait aggregates, the raw pool cache
/// stats, and the persistent worker pool's round-dispatch counters.
pub fn metrics_to_json(snapshot: &ServiceMetricsSnapshot) -> Json {
    Json::obj(vec![
        ("jobs_submitted", Json::UInt(snapshot.jobs_submitted)),
        ("jobs_rejected", Json::UInt(snapshot.jobs_rejected)),
        ("jobs_queued", Json::UInt(snapshot.jobs_queued)),
        ("jobs_running", Json::UInt(snapshot.jobs_running)),
        ("jobs_completed", Json::UInt(snapshot.jobs_completed)),
        ("jobs_cancelled", Json::UInt(snapshot.jobs_cancelled)),
        ("jobs_expired", Json::UInt(snapshot.jobs_expired)),
        ("jobs_failed", Json::UInt(snapshot.jobs_failed)),
        ("jobs_degraded", Json::UInt(snapshot.jobs_degraded)),
        ("walkers_degraded", Json::UInt(snapshot.walkers_degraded)),
        ("jobs_finished", Json::UInt(snapshot.jobs_finished)),
        ("jobs_started", Json::UInt(snapshot.jobs_started)),
        ("samples_delivered", Json::UInt(snapshot.samples_delivered)),
        (
            "aggregate_query_cost",
            Json::UInt(snapshot.aggregate_query_cost),
        ),
        (
            "isolated_query_cost",
            Json::UInt(snapshot.isolated_query_cost),
        ),
        (
            "shared_cache_savings",
            Json::UInt(snapshot.shared_cache_savings()),
        ),
        ("budget_refunded", Json::UInt(snapshot.budget_refunded)),
        (
            "mean_latency_ms",
            Json::Num(duration_ms(snapshot.mean_latency)),
        ),
        (
            "mean_queue_wait_ms",
            Json::Num(duration_ms(snapshot.mean_queue_wait)),
        ),
        (
            "max_queue_wait_ms",
            Json::Num(duration_ms(snapshot.max_queue_wait)),
        ),
        (
            "pool",
            Json::obj(vec![
                ("unique_nodes", Json::UInt(snapshot.pool.unique_nodes)),
                ("api_calls", Json::UInt(snapshot.pool.api_calls)),
                ("cache_hits", Json::UInt(snapshot.pool.cache_hits)),
                ("attribute_reads", Json::UInt(snapshot.pool.attribute_reads)),
            ]),
        ),
        (
            "worker_pool",
            Json::obj(vec![
                ("workers", Json::UInt(snapshot.worker_pool.workers)),
                (
                    "rounds_dispatched",
                    Json::UInt(snapshot.worker_pool.rounds_dispatched),
                ),
                (
                    "spawnless_rounds",
                    Json::UInt(snapshot.worker_pool.spawnless_rounds),
                ),
                (
                    "worker_wakeups",
                    Json::UInt(snapshot.worker_pool.worker_wakeups),
                ),
            ]),
        ),
        (
            "history",
            Json::obj(vec![
                ("hits", Json::UInt(snapshot.history.hits)),
                ("misses", Json::UInt(snapshot.history.misses)),
                ("publications", Json::UInt(snapshot.history.publications)),
                (
                    "published_walks",
                    Json::UInt(snapshot.history.published_walks),
                ),
                ("reused_walks", Json::UInt(snapshot.history.reused_walks)),
                ("reuse_savings", Json::UInt(snapshot.history.reuse_savings)),
                ("epoch", Json::UInt(snapshot.history.epoch)),
            ]),
        ),
        (
            "resilience",
            Json::obj(vec![
                ("calls", Json::UInt(snapshot.resilience.calls)),
                ("faults_seen", Json::UInt(snapshot.resilience.faults_seen)),
                ("retries", Json::UInt(snapshot.resilience.retries)),
                (
                    "backoff_wait_secs",
                    Json::UInt(snapshot.resilience.backoff_wait_secs),
                ),
                (
                    "rate_limit_honored",
                    Json::UInt(snapshot.resilience.rate_limit_honored),
                ),
                (
                    "retries_exhausted",
                    Json::UInt(snapshot.resilience.retries_exhausted),
                ),
                ("recovered", Json::UInt(snapshot.resilience.recovered)),
                (
                    "breaker_opened",
                    Json::UInt(snapshot.resilience.breaker_opened),
                ),
                (
                    "breaker_half_open_probes",
                    Json::UInt(snapshot.resilience.breaker_half_open_probes),
                ),
                (
                    "breaker_fast_fails",
                    Json::UInt(snapshot.resilience.breaker_fast_fails),
                ),
                ("breaker_open", Json::Bool(snapshot.resilience.breaker_open)),
                ("clock_secs", Json::UInt(snapshot.resilience.clock_secs)),
            ]),
        ),
        (
            "queue_wait_histogram",
            histogram_to_json(&snapshot.queue_wait_histogram),
        ),
        (
            "latency_histogram",
            histogram_to_json(&snapshot.latency_histogram),
        ),
        (
            "first_sample_histogram",
            histogram_to_json(&snapshot.first_sample_histogram),
        ),
        (
            "job_cost_histogram",
            histogram_to_json(&snapshot.job_cost_histogram),
        ),
        (
            "round_duration_histogram",
            histogram_to_json(&snapshot.round_duration_histogram),
        ),
        (
            "retries_per_query_histogram",
            histogram_to_json(&snapshot.resilience.retries_per_call),
        ),
    ])
}

/// A histogram snapshot as its JSON summary: the aggregates, the standard
/// quantiles, and the sparse non-empty buckets (each `{le, count}` with the
/// bucket's inclusive upper bound).
pub fn histogram_to_json(snapshot: &HistogramSnapshot) -> Json {
    Json::obj(vec![
        ("count", Json::UInt(snapshot.count)),
        ("sum", Json::UInt(snapshot.sum)),
        ("min", Json::UInt(snapshot.min)),
        ("max", Json::UInt(snapshot.max)),
        ("mean", Json::Num(snapshot.mean())),
        ("p50", Json::UInt(snapshot.quantile(0.5))),
        ("p90", Json::UInt(snapshot.quantile(0.9))),
        ("p99", Json::UInt(snapshot.quantile(0.99))),
        ("p999", Json::UInt(snapshot.quantile(0.999))),
        (
            "buckets",
            Json::Arr(
                snapshot
                    .nonzero_buckets()
                    .map(|(le, count)| {
                        Json::obj(vec![("le", Json::UInt(le)), ("count", Json::UInt(count))])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One trace-log event as its JSON object in the `/v1/jobs/{id}/trace`
/// array: the `"event"` discriminator is [`TraceEventKind::label`], `at_us`
/// the event's microsecond offset from service start, plus the
/// kind-specific payload (`queries` for `round_completed`, `status` for
/// `finished`).
pub fn trace_event_to_json(event: &TraceEvent) -> Json {
    let mut fields = vec![
        ("event", Json::str(event.kind.label())),
        ("job_id", Json::UInt(event.job)),
        (
            "at_us",
            Json::UInt(wnw_telemetry::saturating_micros(event.at)),
        ),
    ];
    match event.kind {
        TraceEventKind::RoundCompleted { queries } => {
            fields.push(("queries", Json::UInt(queries)));
        }
        TraceEventKind::Finished { status } => {
            fields.push(("status", Json::str(status)));
        }
        _ => {}
    }
    Json::obj(fields)
}

fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use wnw_service::JobId;

    fn request(text: &str) -> Result<SampleRequest, String> {
        sample_request_from_json(&parse(text).unwrap())
    }

    #[test]
    fn minimal_request_uses_defaults() {
        let req = request(r#"{"samples": 10, "seed": 7}"#).unwrap();
        assert_eq!(req.job.samples, 10);
        assert_eq!(req.job.seed, 7);
        assert_eq!(req.job.walkers, 4, "SampleJob default");
        assert_eq!(req.job.budget, None);
        assert_eq!(req.priority, Priority::Normal);
        assert_eq!(req.deadline, None);
        assert!(matches!(
            req.job.spec,
            SamplerSpec::WalkEstimate {
                input: RandomWalkKind::Simple,
                ..
            }
        ));
    }

    #[test]
    fn full_request_parses_every_field() {
        let req = request(
            r#"{
                "sampler": "walk_estimate", "input": "mhrw", "samples": 50,
                "seed": 9007199254740993, "walkers": 3, "budget": 1234,
                "diameter_estimate": 6, "history": "cooperative",
                "history_policy": "shared_publish", "reuse_correction": "raw",
                "priority": "high", "deadline_ms": 2500
            }"#,
        )
        .unwrap();
        // 2^53 + 1: survives only because integers bypass f64.
        assert_eq!(req.job.seed, 9_007_199_254_740_993);
        assert_eq!(req.job.walkers, 3);
        assert_eq!(req.job.budget, Some(1234));
        assert_eq!(req.job.diameter_estimate, Some(6));
        assert_eq!(req.job.history, HistoryMode::Cooperative);
        assert_eq!(req.history_policy, HistoryPolicy::SharedPublish);
        assert_eq!(req.reuse_correction, ReuseCorrection::Raw);
        assert_eq!(req.priority, Priority::High);
        assert_eq!(req.deadline, Some(Duration::from_millis(2500)));
        assert!(matches!(
            req.job.spec,
            SamplerSpec::WalkEstimate {
                input: RandomWalkKind::MetropolisHastings,
                ..
            }
        ));
    }

    #[test]
    fn start_node_parses_and_rejects_oversized_ids() {
        let req = request(r#"{"samples": 5, "seed": 1, "start_node": 17}"#).unwrap();
        assert_eq!(req.job.start_node, Some(wnw_graph::NodeId(17)));
        let default = request(r#"{"samples": 5, "seed": 1}"#).unwrap();
        assert_eq!(default.job.start_node, None);
        let err = request(r#"{"samples": 5, "seed": 1, "start_node": 4294967296}"#).unwrap_err();
        assert!(err.contains("start_node"), "got: {err}");
    }

    #[test]
    fn independent_history_parses_with_isolated_policy() {
        let req = request(
            r#"{"samples": 5, "seed": 1, "history": "independent",
                "history_policy": "isolated"}"#,
        )
        .unwrap();
        assert_eq!(req.job.history, HistoryMode::Independent);
        assert_eq!(req.history_policy, HistoryPolicy::Isolated);
    }

    #[test]
    fn baseline_samplers_parse() {
        let many = request(r#"{"sampler": "many_short_runs", "samples": 5, "seed": 1}"#).unwrap();
        assert!(matches!(many.job.spec, SamplerSpec::ManyShortRuns { .. }));
        let one = request(r#"{"sampler": "one_long_run", "samples": 5, "seed": 1}"#).unwrap();
        assert!(matches!(one.job.spec, SamplerSpec::OneLongRun { .. }));
    }

    #[test]
    fn bad_requests_get_actionable_messages() {
        for (text, needle) in [
            (r#"[1,2]"#, "object"),
            (r#"{"seed": 1}"#, "samples"),
            (r#"{"samples": 5}"#, "seed"),
            (r#"{"samples": 5, "seed": -1}"#, "non-negative"),
            (
                r#"{"samples": 5, "seed": 1, "sampler": "magic"}"#,
                "sampler",
            ),
            (r#"{"samples": 5, "seed": 1, "input": "levy"}"#, "input"),
            (
                r#"{"samples": 5, "seed": 1, "priority": "max"}"#,
                "priority",
            ),
            (
                r#"{"samples": 5, "seed": 1, "history": "psychic"}"#,
                "history",
            ),
            (
                r#"{"samples": 5, "seed": 1, "history_policy": "gossip"}"#,
                "history_policy",
            ),
            (
                r#"{"samples": 5, "seed": 1, "reuse_correction": "vibes"}"#,
                "reuse_correction",
            ),
            // A shared policy on a job that cannot exchange history would
            // be a silent no-op — it must be rejected, not accepted.
            (
                r#"{"samples": 5, "seed": 1, "history": "independent",
                    "history_policy": "shared_publish"}"#,
                "cooperative",
            ),
            (
                r#"{"samples": 5, "seed": 1, "sampler": "many_short_runs",
                    "history_policy": "shared_read"}"#,
                "cooperative",
            ),
            // A correction without a reading policy would be a no-op too.
            (
                r#"{"samples": 5, "seed": 1, "reuse_correction": "raw"}"#,
                "shared_read",
            ),
            (r#"{"samples": 5, "seed": 1, "walkers": "four"}"#, "walkers"),
            (r#"{"samples": 5, "seed": 1, "tyop": true}"#, "tyop"),
        ] {
            let err = request(text).unwrap_err();
            assert!(
                err.contains(needle),
                "error for {text} should mention {needle}, got: {err}"
            );
        }
    }

    #[test]
    fn events_encode_with_discriminators() {
        let sample = SampleEvent::Sample {
            walker: 2,
            record: wnw_mcmc::sampler::SampleRecord {
                node: wnw_graph::NodeId(17),
                query_cost: 80,
                attempts: 3,
            },
        };
        let json = event_to_json(&sample);
        assert_eq!(json.get("event").unwrap().as_str(), Some("sample"));
        assert_eq!(json.get("node").unwrap().as_u64(), Some(17));
        assert_eq!(json.get("walker").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("attempts").unwrap().as_u64(), Some(3));

        let outcome = JobOutcome {
            id: JobId(4),
            status: JobStatus::Cancelled,
            samples: 12,
            requested: 100,
            query_cost: 500,
            budget_consumed: 400,
            budget_refunded: 600,
            budget_exhausted: false,
            degraded: true,
            degraded_walkers: 2,
            rounds: 9,
            latency: Duration::from_millis(15),
            queue_wait: Duration::from_millis(3),
            finish_index: 1,
        };
        let json = event_to_json(&SampleEvent::Done(outcome));
        assert_eq!(json.get("event").unwrap().as_str(), Some("done"));
        assert_eq!(json.get("status").unwrap().as_str(), Some("cancelled"));
        assert_eq!(json.get("budget_refunded").unwrap().as_u64(), Some(600));
        assert_eq!(json.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(json.get("degraded_walkers").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("queue_wait_ms").unwrap().as_f64(), Some(3.0));
        // Encodes to a single NDJSON-safe line.
        assert!(!json.encode().contains('\n'));
    }

    /// A fully populated snapshot shared by the metrics-document tests.
    fn sample_snapshot() -> ServiceMetricsSnapshot {
        use wnw_access::counter::QueryStats;
        use wnw_service::{Histogram, HistoryStoreStats, PoolStats};

        let queue_wait = Histogram::new();
        queue_wait.record(1_000);
        queue_wait.record(3_000);
        let latency = Histogram::new();
        latency.record(2_000);
        ServiceMetricsSnapshot {
            jobs_submitted: 4,
            jobs_rejected: 1,
            jobs_queued: 0,
            jobs_running: 1,
            jobs_completed: 2,
            jobs_cancelled: 1,
            jobs_expired: 0,
            jobs_failed: 0,
            jobs_degraded: 1,
            walkers_degraded: 2,
            jobs_finished: 3,
            samples_delivered: 40,
            aggregate_query_cost: 100,
            isolated_query_cost: 160,
            budget_refunded: 5,
            mean_latency: Duration::from_millis(2),
            jobs_started: 4,
            mean_queue_wait: Duration::from_millis(1),
            max_queue_wait: Duration::from_millis(3),
            pool: QueryStats {
                unique_nodes: 100,
                ..QueryStats::default()
            },
            worker_pool: PoolStats {
                workers: 3,
                rounds_dispatched: 17,
                spawnless_rounds: 9,
                worker_wakeups: 41,
            },
            history: HistoryStoreStats {
                hits: 2,
                misses: 1,
                publications: 3,
                published_walks: 120,
                reused_walks: 80,
                reuse_savings: 55,
                epoch: 3,
            },
            resilience: wnw_service::ResilienceStats {
                calls: 50,
                faults_seen: 6,
                retries: 5,
                backoff_wait_secs: 12,
                rate_limit_honored: 2,
                retries_exhausted: 1,
                recovered: 4,
                breaker_opened: 1,
                breaker_half_open_probes: 1,
                breaker_fast_fails: 3,
                breaker_open: false,
                clock_secs: 90,
                retries_per_call: HistogramSnapshot::default(),
            },
            queue_wait_histogram: queue_wait.snapshot(),
            latency_histogram: latency.snapshot(),
            first_sample_histogram: HistogramSnapshot::default(),
            job_cost_histogram: HistogramSnapshot::default(),
            round_duration_histogram: HistogramSnapshot::default(),
        }
    }

    #[test]
    fn metrics_document_carries_worker_pool_counters() {
        let json = metrics_to_json(&sample_snapshot());
        let worker_pool = json.get("worker_pool").expect("worker_pool object");
        assert_eq!(worker_pool.get("workers").unwrap().as_u64(), Some(3));
        assert_eq!(
            worker_pool.get("rounds_dispatched").unwrap().as_u64(),
            Some(17)
        );
        assert_eq!(
            worker_pool.get("spawnless_rounds").unwrap().as_u64(),
            Some(9)
        );
        assert_eq!(
            worker_pool.get("worker_wakeups").unwrap().as_u64(),
            Some(41)
        );
        assert_eq!(json.get("shared_cache_savings").unwrap().as_u64(), Some(60));
        let history = json.get("history").expect("history object");
        assert_eq!(history.get("hits").unwrap().as_u64(), Some(2));
        assert_eq!(history.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(history.get("publications").unwrap().as_u64(), Some(3));
        assert_eq!(history.get("published_walks").unwrap().as_u64(), Some(120));
        assert_eq!(history.get("reused_walks").unwrap().as_u64(), Some(80));
        assert_eq!(history.get("reuse_savings").unwrap().as_u64(), Some(55));
        assert_eq!(history.get("epoch").unwrap().as_u64(), Some(3));
    }

    /// Wire-drift guard: destructuring the snapshot without `..` makes this
    /// test fail to compile whenever `ServiceMetricsSnapshot` grows a field,
    /// and the assertions below then force the `/v1/metrics` document to
    /// carry it.
    #[test]
    fn metrics_document_walks_every_snapshot_field() {
        let snapshot = sample_snapshot();
        let json = metrics_to_json(&snapshot);
        let savings = snapshot.shared_cache_savings();
        let ServiceMetricsSnapshot {
            jobs_submitted,
            jobs_rejected,
            jobs_queued,
            jobs_running,
            jobs_completed,
            jobs_cancelled,
            jobs_expired,
            jobs_failed,
            jobs_degraded,
            walkers_degraded,
            jobs_finished,
            samples_delivered,
            aggregate_query_cost,
            isolated_query_cost,
            budget_refunded,
            mean_latency,
            jobs_started,
            mean_queue_wait,
            max_queue_wait,
            pool,
            worker_pool,
            history,
            resilience,
            queue_wait_histogram,
            latency_histogram,
            first_sample_histogram,
            job_cost_histogram,
            round_duration_histogram,
        } = snapshot;

        let field = |key: &str| json.get(key).unwrap_or_else(|| panic!("missing `{key}`"));
        for (key, expected) in [
            ("jobs_submitted", jobs_submitted),
            ("jobs_rejected", jobs_rejected),
            ("jobs_queued", jobs_queued),
            ("jobs_running", jobs_running),
            ("jobs_completed", jobs_completed),
            ("jobs_cancelled", jobs_cancelled),
            ("jobs_expired", jobs_expired),
            ("jobs_failed", jobs_failed),
            ("jobs_degraded", jobs_degraded),
            ("walkers_degraded", walkers_degraded),
            ("jobs_finished", jobs_finished),
            ("jobs_started", jobs_started),
            ("samples_delivered", samples_delivered),
            ("aggregate_query_cost", aggregate_query_cost),
            ("isolated_query_cost", isolated_query_cost),
            ("budget_refunded", budget_refunded),
            ("shared_cache_savings", savings),
        ] {
            assert_eq!(field(key).as_u64(), Some(expected), "field `{key}`");
        }
        for (key, expected) in [
            ("mean_latency_ms", mean_latency),
            ("mean_queue_wait_ms", mean_queue_wait),
            ("max_queue_wait_ms", max_queue_wait),
        ] {
            assert_eq!(field(key).as_f64(), Some(duration_ms(expected)));
        }
        assert_eq!(
            field("pool").get("unique_nodes").unwrap().as_u64(),
            Some(pool.unique_nodes)
        );
        assert_eq!(
            field("worker_pool").get("workers").unwrap().as_u64(),
            Some(worker_pool.workers)
        );
        assert_eq!(
            field("history").get("hits").unwrap().as_u64(),
            Some(history.hits)
        );
        let res = field("resilience");
        for (key, expected) in [
            ("calls", resilience.calls),
            ("faults_seen", resilience.faults_seen),
            ("retries", resilience.retries),
            ("backoff_wait_secs", resilience.backoff_wait_secs),
            ("rate_limit_honored", resilience.rate_limit_honored),
            ("retries_exhausted", resilience.retries_exhausted),
            ("recovered", resilience.recovered),
            ("breaker_opened", resilience.breaker_opened),
            (
                "breaker_half_open_probes",
                resilience.breaker_half_open_probes,
            ),
            ("breaker_fast_fails", resilience.breaker_fast_fails),
            ("clock_secs", resilience.clock_secs),
        ] {
            assert_eq!(
                res.get(key).unwrap().as_u64(),
                Some(expected),
                "resilience field `{key}`"
            );
        }
        assert_eq!(
            res.get("breaker_open").unwrap().as_bool(),
            Some(resilience.breaker_open)
        );
        for (key, expected) in [
            ("queue_wait_histogram", queue_wait_histogram),
            ("latency_histogram", latency_histogram),
            ("first_sample_histogram", first_sample_histogram),
            ("job_cost_histogram", job_cost_histogram),
            ("round_duration_histogram", round_duration_histogram),
            ("retries_per_query_histogram", resilience.retries_per_call),
        ] {
            let doc = field(key);
            assert_eq!(doc.get("count").unwrap().as_u64(), Some(expected.count));
            assert_eq!(doc.get("sum").unwrap().as_u64(), Some(expected.sum));
        }
    }

    #[test]
    fn histograms_encode_quantiles_and_sparse_buckets() {
        use wnw_service::Histogram;

        let h = Histogram::new();
        for v in [100u64, 100, 200, 5_000] {
            h.record(v);
        }
        let json = histogram_to_json(&h.snapshot());
        assert_eq!(json.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(json.get("sum").unwrap().as_u64(), Some(5_400));
        assert_eq!(json.get("min").unwrap().as_u64(), Some(100));
        assert_eq!(json.get("max").unwrap().as_u64(), Some(5_000));
        assert_eq!(json.get("mean").unwrap().as_f64(), Some(1_350.0));
        let p50 = json.get("p50").unwrap().as_u64().unwrap();
        assert!((100..=200).contains(&p50), "p50 was {p50}");
        // The tail quantile the SLO evaluator reads: at 4 observations it
        // collapses to the exact max.
        assert_eq!(json.get("p999").unwrap().as_u64(), Some(5_000));
        let Json::Arr(buckets) = json.get("buckets").unwrap() else {
            panic!("buckets must be an array");
        };
        assert_eq!(buckets.len(), 3, "three distinct buckets are occupied");
        let les: Vec<u64> = buckets
            .iter()
            .map(|b| b.get("le").unwrap().as_u64().unwrap())
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]), "ascending le grid");
        let total: u64 = buckets
            .iter()
            .map(|b| b.get("count").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total, 4, "bucket counts are per-bucket, not cumulative");

        let empty = histogram_to_json(&HistogramSnapshot::default());
        assert_eq!(empty.get("count").unwrap().as_u64(), Some(0));
        assert!(matches!(empty.get("buckets"), Some(Json::Arr(b)) if b.is_empty()));
    }

    #[test]
    fn trace_events_encode_with_their_payloads() {
        let event = |kind| TraceEvent {
            job: 7,
            at: Duration::from_micros(1_500),
            kind,
        };
        let submitted = trace_event_to_json(&event(TraceEventKind::Submitted));
        assert_eq!(submitted.get("event").unwrap().as_str(), Some("submitted"));
        assert_eq!(submitted.get("job_id").unwrap().as_u64(), Some(7));
        assert_eq!(submitted.get("at_us").unwrap().as_u64(), Some(1_500));
        assert!(submitted.get("queries").is_none());
        assert!(submitted.get("status").is_none());

        let round = trace_event_to_json(&event(TraceEventKind::RoundCompleted { queries: 42 }));
        assert_eq!(
            round.get("event").unwrap().as_str(),
            Some("round_completed")
        );
        assert_eq!(round.get("queries").unwrap().as_u64(), Some(42));

        let finished = trace_event_to_json(&event(TraceEventKind::Finished {
            status: "completed",
        }));
        assert_eq!(finished.get("event").unwrap().as_str(), Some("finished"));
        assert_eq!(finished.get("status").unwrap().as_str(), Some("completed"));
    }

    #[test]
    fn failed_outcomes_carry_the_error() {
        let outcome = JobOutcome {
            id: JobId(0),
            status: JobStatus::Panicked("sampler exploded".to_string()),
            samples: 0,
            requested: 1,
            query_cost: 0,
            budget_consumed: 0,
            budget_refunded: 0,
            budget_exhausted: false,
            degraded: false,
            degraded_walkers: 0,
            rounds: 0,
            latency: Duration::ZERO,
            queue_wait: Duration::ZERO,
            finish_index: 0,
        };
        let json = outcome_to_json(&outcome);
        assert_eq!(json.get("status").unwrap().as_str(), Some("panicked"));
        assert_eq!(
            json.get("error").unwrap().as_str(),
            Some("sampler exploded")
        );
    }
}
