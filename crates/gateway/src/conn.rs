//! Per-connection state machine of the readiness-driven gateway.
//!
//! A [`Conn`] owns one non-blocking socket and advances through explicit
//! states — reading a request, waiting on the task pool, streaming NDJSON
//! events, closing — one bounded [`step`](Conn::step) at a time. A step
//! never blocks: reads and writes stop at `WouldBlock`, stream events are
//! pulled with [`SampleStream::poll_next`], and every deadline (whole-
//! request, keep-alive idle, write stall) is checked against a caller-
//! supplied `now`. That makes thousands of slow clients cheap (the I/O
//! loop just steps each connection) and the machine fully unit-testable
//! with a scripted [`Transport`] and a synthetic clock.
//!
//! Hang-up handling matches the old blocking gateway: a fatal write error
//! or a write stall while streaming drops the claimed [`SampleStream`]
//! (the scheduler's cancel-and-refund signal) and discards the registry
//! entry.

use crate::http::{
    self, error_bytes, is_idle_timeout, Parse, Request, RequestError, RequestParser,
    CHUNK_TERMINATOR,
};
use crate::server::GatewayConfig;
use crate::wire;
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::{Duration, Instant};
use wnw_service::{JobId, JobRegistry, SampleStream, StreamPoll};

/// The byte-level socket operations a [`Conn`] needs. Implemented by
/// non-blocking [`TcpStream`]s in production and by scripted fakes in the
/// unit battery.
pub trait Transport {
    /// Non-blocking read; `WouldBlock` when nothing is buffered.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Non-blocking write; may accept a prefix.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Half-close: FIN the write side so the peer sees a clean end of
    /// response while we linger-drain its remaining bytes.
    fn shutdown_write(&mut self) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }

    fn shutdown_write(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Write)
    }
}

/// Deadlines and buffer bounds of a connection.
#[derive(Debug, Clone, Copy)]
pub struct ConnLimits {
    /// Whole-request deadline: a client that trickles a partial request
    /// gets `408` and the connection back after this long. Doubles as the
    /// keep-alive idle reap timeout.
    pub read_timeout: Duration,
    /// A non-empty write buffer making zero progress for this long means
    /// the peer is wedged: the connection is dropped (cancelling and
    /// refunding a streamed job).
    pub write_timeout: Duration,
    /// How long a closing connection drains the peer's remaining bytes
    /// after the half-close, so a shed `503` is not clobbered by a RST.
    pub linger: Duration,
    /// Pause draining stream events once this many response bytes are
    /// buffered (write backpressure towards slow readers).
    pub high_water: usize,
    /// Stop reading once this many request bytes are buffered (bounds a
    /// pipelining client).
    pub read_cap: usize,
}

impl ConnLimits {
    /// The limits implied by a gateway configuration.
    pub fn for_config(config: &GatewayConfig) -> Self {
        ConnLimits {
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            linger: Duration::from_secs(2),
            high_water: 256 * 1024,
            read_cap: http::MAX_HEADER_BYTES + config.max_body_bytes,
        }
    }
}

/// What one [`Conn::step`] accomplished.
#[derive(Debug)]
pub enum Step {
    /// Nothing to do; poll again after a pause.
    Idle,
    /// Bytes moved or state advanced; worth stepping again soon.
    Progress,
    /// A complete request is ready — route it, then keep stepping.
    Route(Request),
    /// The connection is finished; drop it.
    Done,
}

enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// A response is being computed on the task pool.
    Waiting {
        rx: Receiver<Vec<u8>>,
        keep_alive: bool,
    },
    /// Draining a claimed job stream as chunked NDJSON.
    Streaming { stream: SampleStream, id: JobId },
    /// Flushing the tail, then half-close and linger-drain.
    Closing {
        shutdown_sent: bool,
        linger_until: Option<Instant>,
    },
    /// Terminal.
    Closed,
}

/// One gateway connection as an explicit state machine.
pub struct Conn<T: Transport> {
    transport: T,
    parser: RequestParser,
    limits: ConnLimits,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already written; the buffer is compacted when
    /// it fully drains.
    write_pos: usize,
    state: ConnState,
    /// When the currently-buffered partial request started arriving — the
    /// whole-request deadline anchors here, not at each read call.
    request_started: Option<Instant>,
    /// Last read progress or response queue — the keep-alive idle clock.
    last_activity: Instant,
    /// Last write progress (or empty buffer) — the write-stall clock.
    last_write_progress: Instant,
}

impl<T: Transport> Conn<T> {
    /// Wraps a freshly accepted (already non-blocking) transport.
    pub fn new(transport: T, parser: RequestParser, limits: ConnLimits, now: Instant) -> Self {
        Conn {
            transport,
            parser,
            limits,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            state: ConnState::Reading,
            request_started: None,
            last_activity: now,
            last_write_progress: now,
        }
    }

    /// Queues a complete response. `keep_alive` keeps the connection
    /// parsing further requests; otherwise it flushes and closes cleanly.
    pub fn push_response(&mut self, now: Instant, bytes: Vec<u8>, keep_alive: bool) {
        self.write_buf.extend_from_slice(&bytes);
        self.last_activity = now;
        self.state = if keep_alive {
            ConnState::Reading
        } else {
            ConnState::Closing {
                shutdown_sent: false,
                linger_until: None,
            }
        };
    }

    /// Starts streaming a claimed job: queues the chunked response head
    /// and switches to event draining. Streaming responses always close.
    pub fn begin_stream(&mut self, stream: SampleStream, id: JobId) {
        self.write_buf
            .extend_from_slice(&http::chunked_head(200, "application/x-ndjson"));
        self.state = ConnState::Streaming { stream, id };
    }

    /// Parks the connection until the task pool delivers the response
    /// bytes on `rx` (a dropped sender reads as `500` + close).
    pub fn begin_wait(&mut self, rx: Receiver<Vec<u8>>, keep_alive: bool) {
        self.state = ConnState::Waiting { rx, keep_alive };
    }

    /// Sheds this connection: queue `503`, then flush + half-close +
    /// linger so even a client mid-request-body reads the status instead
    /// of a connection reset.
    pub fn shed(&mut self, now: Instant) {
        self.push_response(
            now,
            error_bytes(503, "gateway at capacity; retry later", true),
            false,
        );
    }

    /// Advances the connection by one bounded, non-blocking step.
    pub fn step(&mut self, now: Instant, registry: &JobRegistry) -> Step {
        if matches!(self.state, ConnState::Closed) {
            return Step::Done;
        }
        // Pending bytes always go out first, whatever the state.
        let mut progressed = match self.flush(now) {
            Ok(p) => p,
            Err(()) => {
                self.hang_up(registry);
                return Step::Done;
            }
        };
        // Write stall: a peer that stopped reading long enough ago is
        // dead for our purposes — drop it (cancelling a streamed job).
        if self.write_pos < self.write_buf.len()
            && now.duration_since(self.last_write_progress) >= self.limits.write_timeout
        {
            self.hang_up(registry);
            return Step::Done;
        }
        match self.state {
            ConnState::Closed => Step::Done,
            ConnState::Closing { .. } => self.step_closing(now, progressed),
            ConnState::Waiting { .. } => self.step_waiting(now, progressed),
            ConnState::Streaming { .. } => {
                let drained = self.drain_stream(registry);
                progressed |= drained;
                match self.flush(now) {
                    Ok(p) => progressed |= p,
                    Err(()) => {
                        self.hang_up(registry);
                        return Step::Done;
                    }
                }
                if progressed {
                    Step::Progress
                } else {
                    Step::Idle
                }
            }
            ConnState::Reading => self.step_reading(now, progressed),
        }
    }

    /// Whether the connection reached its terminal state.
    pub fn is_closed(&self) -> bool {
        matches!(self.state, ConnState::Closed)
    }

    /// Drops the connection as a peer hang-up. A claimed stream is
    /// released (the scheduler's cancel-and-refund signal) and its
    /// registry entry discarded.
    fn hang_up(&mut self, registry: &JobRegistry) {
        if let ConnState::Streaming { id, .. } =
            std::mem::replace(&mut self.state, ConnState::Closed)
        {
            registry.discard(id);
        }
    }

    /// Writes as much of the buffer as the transport accepts. `Err` means
    /// the peer is gone.
    fn flush(&mut self, now: Instant) -> Result<bool, ()> {
        let mut progressed = false;
        while self.write_pos < self.write_buf.len() {
            match self.transport.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.write_pos += n;
                    self.last_write_progress = now;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_idle_timeout(&e) => break,
                Err(_) => return Err(()),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
            // With nothing pending the stall clock idles at "now".
            self.last_write_progress = now;
        }
        Ok(progressed)
    }

    /// Pulls buffered stream events into the write buffer (up to the high
    /// water mark); on the stream's end, discards the registry entry and
    /// queues the terminating chunk.
    fn drain_stream(&mut self, registry: &JobRegistry) -> bool {
        let ConnState::Streaming { stream, id } = &mut self.state else {
            unreachable!("drain_stream is only called while streaming");
        };
        let id = *id;
        let mut progressed = false;
        let mut finished = false;
        while self.write_buf.len() - self.write_pos < self.limits.high_water {
            match stream.poll_next() {
                StreamPoll::Event(event) => {
                    http::encode_chunk(&mut self.write_buf, &wire::event_line(&event));
                    progressed = true;
                }
                StreamPoll::Empty => break,
                StreamPoll::Finished => {
                    finished = true;
                    break;
                }
            }
        }
        if finished {
            // Discard before the terminal chunk: a client observing the
            // end of the stream must find the entry gone (404, not 409).
            registry.discard(id);
            self.write_buf.extend_from_slice(CHUNK_TERMINATOR);
            self.state = ConnState::Closing {
                shutdown_sent: false,
                linger_until: None,
            };
            progressed = true;
        }
        progressed
    }

    fn step_reading(&mut self, now: Instant, mut progressed: bool) -> Step {
        let mut eof = false;
        let mut tmp = [0u8; 8 * 1024];
        for _ in 0..4 {
            if self.read_buf.len() >= self.limits.read_cap {
                break;
            }
            match self.transport.read(&mut tmp) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&tmp[..n]);
                    self.last_activity = now;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_idle_timeout(&e) => break,
                Err(_) => {
                    self.state = ConnState::Closed;
                    return Step::Done;
                }
            }
        }
        if !self.read_buf.is_empty() && self.request_started.is_none() {
            self.request_started = Some(now);
        }
        match self.parser.parse(&self.read_buf) {
            Ok(Parse::Complete { request, consumed }) => {
                self.read_buf.drain(..consumed);
                // A pipelined follow-up is already "arriving".
                self.request_started = (!self.read_buf.is_empty()).then_some(now);
                self.last_activity = now;
                return Step::Route(request);
            }
            Ok(Parse::Incomplete) => {
                if !eof {
                    if let Some(started) = self.request_started {
                        if now.duration_since(started) >= self.limits.read_timeout {
                            // The whole-request deadline: a stalled
                            // partial request no longer leaks the
                            // connection one read-timeout at a time.
                            self.push_response(
                                now,
                                error_bytes(408, "request timed out", true),
                                false,
                            );
                            return Step::Progress;
                        }
                    } else if now.duration_since(self.last_activity) >= self.limits.read_timeout {
                        // Idle keep-alive connection: reap it quietly.
                        self.state = ConnState::Closed;
                        return Step::Done;
                    }
                }
            }
            Err(RequestError::Malformed(message)) => {
                self.push_response(now, error_bytes(400, message, true), false);
                return Step::Progress;
            }
            Err(RequestError::TooLarge(message)) => {
                self.push_response(now, error_bytes(413, message, true), false);
                return Step::Progress;
            }
        }
        if eof {
            // Clean close between requests, or a half request the client
            // abandoned: either way, flush anything pending and be done.
            if self.write_pos < self.write_buf.len() {
                self.state = ConnState::Closing {
                    shutdown_sent: false,
                    linger_until: None,
                };
                return Step::Progress;
            }
            self.state = ConnState::Closed;
            return Step::Done;
        }
        if progressed {
            Step::Progress
        } else {
            Step::Idle
        }
    }

    fn step_waiting(&mut self, now: Instant, progressed: bool) -> Step {
        let (result, keep_alive) = {
            let ConnState::Waiting { rx, keep_alive } = &self.state else {
                unreachable!("step_waiting is only called while waiting");
            };
            (rx.try_recv(), *keep_alive)
        };
        match result {
            Ok(bytes) => {
                self.push_response(now, bytes, keep_alive);
                Step::Progress
            }
            Err(TryRecvError::Empty) => {
                if progressed {
                    Step::Progress
                } else {
                    Step::Idle
                }
            }
            Err(TryRecvError::Disconnected) => {
                // The task pool is gone (shutdown mid-request).
                self.push_response(now, error_bytes(500, "gateway shutting down", true), false);
                Step::Progress
            }
        }
    }

    fn step_closing(&mut self, now: Instant, progressed: bool) -> Step {
        // The tail must go out before the half-close.
        if self.write_pos < self.write_buf.len() {
            return if progressed {
                Step::Progress
            } else {
                Step::Idle
            };
        }
        let (shutdown_sent, linger_until) = match &self.state {
            ConnState::Closing {
                shutdown_sent,
                linger_until,
            } => (*shutdown_sent, *linger_until),
            _ => unreachable!("step_closing is only called while closing"),
        };
        let deadline = if shutdown_sent {
            linger_until.unwrap_or(now)
        } else {
            let _ = self.transport.shutdown_write();
            let deadline = now + self.limits.linger;
            self.state = ConnState::Closing {
                shutdown_sent: true,
                linger_until: Some(deadline),
            };
            deadline
        };
        // Linger-drain: absorb whatever the peer was still sending so its
        // kernel does not answer our response with a RST before the
        // client reads it (the shed-503 guarantee).
        let mut tmp = [0u8; 4 * 1024];
        for _ in 0..8 {
            match self.transport.read(&mut tmp) {
                Ok(0) => {
                    self.state = ConnState::Closed;
                    return Step::Done;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_idle_timeout(&e) => break,
                Err(_) => {
                    self.state = ConnState::Closed;
                    return Step::Done;
                }
            }
        }
        if now >= deadline {
            self.state = ConnState::Closed;
            return Step::Done;
        }
        if progressed {
            Step::Progress
        } else {
            Step::Idle
        }
    }

    #[cfg(test)]
    fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::collections::VecDeque;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_service::{ClaimError, SamplingService};

    #[derive(Clone, Copy)]
    enum WriteMode {
        /// Accept everything.
        Accept,
        /// Accept at most N bytes per call (a nearly-full kernel buffer).
        Trickle(usize),
        /// Accept nothing (`WouldBlock`, a full kernel buffer).
        Block,
        /// Fail hard (peer reset).
        Fail,
    }

    /// A scripted transport: reads pop from a queue (empty queue reads as
    /// `WouldBlock`, an empty chunk as EOF), writes follow `write_mode`.
    struct FakeTransport {
        reads: VecDeque<Vec<u8>>,
        written: Vec<u8>,
        write_mode: WriteMode,
        shutdowns: usize,
    }

    impl FakeTransport {
        fn new() -> Self {
            FakeTransport {
                reads: VecDeque::new(),
                written: Vec::new(),
                write_mode: WriteMode::Accept,
                shutdowns: 0,
            }
        }

        fn written_text(&self) -> String {
            String::from_utf8_lossy(&self.written).into_owned()
        }
    }

    impl Transport for FakeTransport {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(bytes) => {
                    assert!(bytes.len() <= buf.len(), "scripted read fits the buffer");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
            }
        }

        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.write_mode {
                WriteMode::Accept => {
                    self.written.extend_from_slice(buf);
                    Ok(buf.len())
                }
                WriteMode::Trickle(n) => {
                    let n = n.min(buf.len());
                    if n == 0 {
                        return Err(io::Error::from(io::ErrorKind::WouldBlock));
                    }
                    self.written.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
                WriteMode::Block => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                WriteMode::Fail => Err(io::Error::from(io::ErrorKind::BrokenPipe)),
            }
        }

        fn shutdown_write(&mut self) -> io::Result<()> {
            self.shutdowns += 1;
            Ok(())
        }
    }

    fn limits() -> ConnLimits {
        ConnLimits {
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_millis(100),
            linger: Duration::from_secs(1),
            high_water: 64 * 1024,
            read_cap: 128 * 1024,
        }
    }

    fn conn(now: Instant) -> Conn<FakeTransport> {
        Conn::new(
            FakeTransport::new(),
            RequestParser::new(64 * 1024),
            limits(),
            now,
        )
    }

    fn service() -> SamplingService<SimulatedOsn> {
        let osn = SimulatedOsn::new(barabasi_albert(300, 3, 5).unwrap());
        SamplingService::builder(osn).pool_threads(1).build()
    }

    /// Claims the stream of a freshly submitted long-running job.
    fn claimed_job(
        service: &SamplingService<SimulatedOsn>,
        registry: &JobRegistry,
    ) -> (JobId, SampleStream) {
        let body =
            json::parse(r#"{"samples": 1000000, "seed": 3, "walkers": 2, "budget": 100000000}"#)
                .unwrap();
        let request = wire::sample_request_from_json(&body).unwrap();
        let ticket = service.submit(request).expect("admitted");
        let id = registry.register(ticket);
        let stream = registry.claim_stream(id).expect("first claim");
        (id, stream)
    }

    #[test]
    fn requests_arriving_in_arbitrary_fragments_route_once() {
        let registry = JobRegistry::default();
        let full = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"seed\":42}";
        // Table of fragmentations: byte-at-a-time, halves, and one shot.
        for cuts in [
            vec![1usize; full.len()],
            vec![30, full.len() - 30],
            vec![full.len()],
        ] {
            let t0 = Instant::now();
            let mut c = conn(t0);
            let mut offset = 0;
            for cut in cuts {
                c.transport_mut()
                    .reads
                    .push_back(full[offset..offset + cut].to_vec());
                offset += cut;
            }
            let mut routed = Vec::new();
            loop {
                match c.step(t0, &registry) {
                    Step::Route(request) => routed.push(request),
                    Step::Idle => break,
                    Step::Progress => {}
                    Step::Done => panic!("connection must stay open"),
                }
            }
            assert_eq!(routed.len(), 1);
            assert_eq!(routed[0].method, "POST");
            assert_eq!(routed[0].body, b"{\"seed\":42}");
        }
    }

    #[test]
    fn pipelined_requests_route_in_order_with_ordered_responses() {
        let registry = JobRegistry::default();
        let t0 = Instant::now();
        let mut c = conn(t0);
        c.transport_mut()
            .reads
            .push_back(b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/metrics HTTP/1.1\r\n\r\n".to_vec());
        let mut paths = Vec::new();
        loop {
            match c.step(t0, &registry) {
                Step::Route(request) => {
                    paths.push(request.path.clone());
                    // Respond inline, as the I/O loop would.
                    let body = format!("answered {}", request.path);
                    c.push_response(
                        t0,
                        http::response_bytes(200, "text/plain", body.as_bytes(), false),
                        true,
                    );
                }
                Step::Idle => break,
                Step::Progress => {}
                Step::Done => panic!("keep-alive connection must stay open"),
            }
        }
        assert_eq!(paths, vec!["/healthz", "/v1/metrics"]);
        let written = c.transport_mut().written_text();
        let first = written.find("answered /healthz").expect("first response");
        let second = written.find("answered /v1/metrics").expect("second");
        assert!(first < second, "responses keep request order");
    }

    #[test]
    fn write_backpressure_trickles_the_response_out() {
        let registry = JobRegistry::default();
        let t0 = Instant::now();
        let mut c = conn(t0);
        let response = http::response_bytes(200, "text/plain", &[b'x'; 4096], true);
        let total = response.len();
        c.push_response(t0, response, false);
        // A full kernel buffer: nothing moves, but within the write
        // timeout nothing dies either.
        c.transport_mut().write_mode = WriteMode::Block;
        assert!(matches!(
            c.step(t0 + Duration::from_millis(10), &registry),
            Step::Idle
        ));
        assert!(!c.is_closed());
        // The buffer drains a few bytes per readiness tick.
        c.transport_mut().write_mode = WriteMode::Trickle(1000);
        let mut now = t0 + Duration::from_millis(20);
        for _ in 0..(total / 1000 + 2) {
            now += Duration::from_millis(1);
            if matches!(c.step(now, &registry), Step::Done) {
                break;
            }
        }
        assert_eq!(c.transport_mut().written.len(), total, "fully flushed");
        assert_eq!(c.transport_mut().shutdowns, 1, "clean half-close");
    }

    #[test]
    fn mid_stream_disconnect_cancels_the_job_and_discards_the_entry() {
        let service = service();
        let registry = JobRegistry::default();
        let (id, stream) = claimed_job(&service, &registry);
        let t0 = Instant::now();
        let mut c = conn(t0);
        c.begin_stream(stream, id);
        // The peer reset: the first flush fails hard.
        c.transport_mut().write_mode = WriteMode::Fail;
        assert!(matches!(c.step(t0, &registry), Step::Done));
        assert!(c.is_closed());
        assert!(
            matches!(registry.claim_stream(id), Err(ClaimError::Unknown)),
            "registry entry is discarded on hang-up"
        );
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1, "dropped stream cancels the job");
        assert!(metrics.budget_refunded > 0, "unused budget is refunded");
    }

    #[test]
    fn write_stall_past_the_timeout_cancels_a_streamed_job() {
        let service = service();
        let registry = JobRegistry::default();
        let (id, stream) = claimed_job(&service, &registry);
        let t0 = Instant::now();
        let mut c = conn(t0);
        c.begin_stream(stream, id);
        // The peer stops reading entirely; the head cannot even go out.
        c.transport_mut().write_mode = WriteMode::Block;
        assert!(
            !matches!(c.step(t0, &registry), Step::Done),
            "within the timeout the peer is just slow"
        );
        let later = t0 + limits().write_timeout + Duration::from_millis(1);
        assert!(matches!(c.step(later, &registry), Step::Done));
        assert!(matches!(
            registry.claim_stream(id),
            Err(ClaimError::Unknown)
        ));
        let metrics = service.shutdown();
        assert_eq!(metrics.jobs_cancelled, 1);
    }

    #[test]
    fn streaming_drains_events_and_ends_with_the_terminator() {
        let service = service();
        let registry = JobRegistry::default();
        let body = json::parse(r#"{"samples": 4, "seed": 7, "walkers": 2}"#).unwrap();
        let ticket = service
            .submit(wire::sample_request_from_json(&body).unwrap())
            .unwrap();
        let id = registry.register(ticket);
        let stream = registry.claim_stream(id).unwrap();
        let t0 = Instant::now();
        let mut c = conn(t0);
        c.begin_stream(stream, id);
        let deadline = Instant::now() + Duration::from_secs(30);
        while !c.is_closed() {
            assert!(Instant::now() < deadline, "stream must finish");
            // EOF from the client after our half-close ends the linger.
            if c.transport_mut().shutdowns > 0 {
                c.transport_mut().reads.push_back(Vec::new());
            }
            c.step(Instant::now(), &registry);
            std::thread::sleep(Duration::from_millis(1));
        }
        let written = c.transport_mut().written_text();
        assert!(written.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(written.contains("Transfer-Encoding: chunked\r\n"));
        assert!(written.contains("\"event\":\"done\""));
        assert!(written.ends_with("0\r\n\r\n"), "terminating chunk present");
        assert_eq!(written.matches("\"event\":\"sample\"").count(), 4);
        assert!(
            matches!(registry.claim_stream(id), Err(ClaimError::Unknown)),
            "served entry discarded before the terminator"
        );
        service.shutdown();
    }

    #[test]
    fn partial_request_hits_the_whole_request_deadline_with_408() {
        let registry = JobRegistry::default();
        let t0 = Instant::now();
        let mut c = conn(t0);
        c.transport_mut()
            .reads
            .push_back(b"GET /healthz HT".to_vec());
        assert!(matches!(c.step(t0, &registry), Step::Progress));
        // Trickling one more byte does NOT reset the deadline.
        c.transport_mut().reads.push_back(b"T".to_vec());
        let mid = t0 + Duration::from_millis(60);
        c.step(mid, &registry);
        let late = t0 + limits().read_timeout + Duration::from_millis(1);
        c.step(late, &registry); // deadline fires, 408 queued
        c.step(late, &registry); // next tick flushes it
        let written = c.transport_mut().written_text();
        assert!(
            written.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "got: {written}"
        );
        // EOF after the half-close finishes the connection.
        c.transport_mut().reads.push_back(Vec::new());
        while !c.is_closed() {
            c.step(late + Duration::from_millis(1), &registry);
        }
    }

    #[test]
    fn idle_keep_alive_connections_are_reaped_quietly() {
        let registry = JobRegistry::default();
        let t0 = Instant::now();
        let mut c = conn(t0);
        assert!(matches!(c.step(t0, &registry), Step::Idle));
        let late = t0 + limits().read_timeout + Duration::from_millis(1);
        assert!(matches!(c.step(late, &registry), Step::Done));
        assert!(c.transport_mut().written.is_empty(), "no 408 for idleness");
    }

    #[test]
    fn shed_mid_request_body_still_delivers_the_503() {
        let registry = JobRegistry::default();
        let t0 = Instant::now();
        let mut c = conn(t0);
        // The client is mid-body when the gateway sheds it.
        c.transport_mut()
            .reads
            .push_back(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"par".to_vec());
        c.shed(t0);
        c.step(t0, &registry);
        let written = c.transport_mut().written_text();
        assert!(
            written.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "got: {written}"
        );
        assert!(written.contains("gateway at capacity"));
        assert_eq!(c.transport_mut().shutdowns, 1, "half-close, not a drop");
        // The rest of the body arrives during the linger and is drained;
        // then the client closes and so do we.
        c.transport_mut().reads.push_back(vec![b'x'; 395]);
        c.transport_mut().reads.push_back(Vec::new());
        let mut now = t0;
        while !c.is_closed() {
            now += Duration::from_millis(1);
            c.step(now, &registry);
        }
    }

    #[test]
    fn malformed_and_oversized_requests_close_with_an_error() {
        let registry = JobRegistry::default();
        for (bytes, status) in [
            (&b"GARBAGE\r\n\r\n"[..], "400 Bad Request"),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
                "413 Content Too Large",
            ),
        ] {
            let t0 = Instant::now();
            let mut c = conn(t0);
            c.transport_mut().reads.push_back(bytes.to_vec());
            c.step(t0, &registry);
            c.step(t0, &registry);
            let written = c.transport_mut().written_text();
            assert!(
                written.starts_with(&format!("HTTP/1.1 {status}")),
                "expected {status}, got: {written}"
            );
        }
    }

    #[test]
    fn task_pool_replies_resume_the_connection() {
        let registry = JobRegistry::default();
        let t0 = Instant::now();
        let mut c = conn(t0);
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        c.begin_wait(rx, true);
        assert!(matches!(c.step(t0, &registry), Step::Idle), "still waiting");
        tx.send(http::response_bytes(200, "text/plain", b"done", false))
            .unwrap();
        assert!(matches!(c.step(t0, &registry), Step::Progress));
        c.step(t0, &registry);
        assert!(c
            .transport_mut()
            .written_text()
            .starts_with("HTTP/1.1 200 OK"));
        assert!(!c.is_closed(), "keep-alive resumes reading");

        // A dropped sender (task pool shut down) turns into 500 + close.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(1);
        drop(tx);
        c.begin_wait(rx, true);
        c.step(t0, &registry);
        c.step(t0, &registry);
        assert!(c
            .transport_mut()
            .written_text()
            .contains("500 Internal Server Error"));
    }
}
