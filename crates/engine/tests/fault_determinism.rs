//! Seeded fault injection must not cost determinism: the same seed
//! replays the same fault schedule, and a fault-weathered job's sample
//! multiset is identical at every worker-pool width — because the
//! injector's per-node fault runs are capped below the retry budget, so
//! every fault is retried through to the same clean answer no matter how
//! the threads interleave.

use wnw_access::{
    FaultProfile, FaultyNetwork, ResilientNetwork, RetryPolicy, SimulatedOsn, SocialNetwork,
};
use wnw_engine::job::SampleJob;
use wnw_engine::Engine;
use wnw_graph::generators::random::barabasi_albert;
use wnw_graph::NodeId;
use wnw_mcmc::transition::RandomWalkKind;

const GRAPH_SEED: u64 = 0xD15E_A5ED;
const FAULT_SEED: u64 = 41;

/// The chaos preset minus blackout: every injected fault is recoverable
/// within the retry budget, so the walks see the same neighbor lists a
/// fault-free run would.
fn recoverable_profile() -> FaultProfile {
    FaultProfile {
        blackout_fraction: 0.0,
        ..FaultProfile::chaos()
    }
}

fn faulty_network(profile: FaultProfile) -> ResilientNetwork<FaultyNetwork<SimulatedOsn>> {
    let graph = barabasi_albert(300, 3, GRAPH_SEED).unwrap();
    ResilientNetwork::new(
        FaultyNetwork::new(SimulatedOsn::new(graph), FAULT_SEED, profile),
        RetryPolicy::DEFAULT.without_breaker(),
        FAULT_SEED,
    )
}

fn job() -> SampleJob {
    SampleJob::walk_estimate(RandomWalkKind::Simple, 12, 9)
        .with_walkers(4)
        .with_diameter_estimate(4)
}

#[test]
fn same_seed_replays_the_same_fault_schedule() {
    let run = || {
        let osn = faulty_network(recoverable_profile());
        let report = Engine::with_threads(1).run(&osn, &job()).unwrap();
        (report.nodes(), osn.inner().fault_stats())
    };
    let (samples_a, faults_a) = run();
    let (samples_b, faults_b) = run();
    assert!(
        faults_a.total_injected() > 0,
        "the profile must actually inject faults for this test to mean anything"
    );
    assert_eq!(faults_a, faults_b, "same seed, same fault tally");
    assert_eq!(samples_a, samples_b, "same seed, same samples");
}

#[test]
fn sample_multiset_is_invariant_across_pool_widths() {
    let reference = {
        let graph = barabasi_albert(300, 3, GRAPH_SEED).unwrap();
        let clean = SimulatedOsn::new(graph);
        Engine::with_threads(1).run(&clean, &job()).unwrap().nodes()
    };
    for width in [1, 2, 4] {
        let osn = faulty_network(recoverable_profile());
        let report = Engine::with_threads(width).run(&osn, &job()).unwrap();
        assert!(
            !report.degraded,
            "width {width}: recoverable faults must never degrade a walker"
        );
        // Samples are concatenated in walker order, so equality holds for
        // the ordered sequence, not just the multiset.
        assert_eq!(
            report.nodes(),
            reference,
            "width {width}: fault-weathered samples must match the fault-free run"
        );
    }
}

#[test]
fn blackout_degradation_is_deterministic_at_width_one() {
    // With a blackout node in play, walkers that reach it degrade; at
    // width 1 the whole report — samples kept, walkers degraded — must
    // replay exactly.
    let profile = FaultProfile {
        blackout_fraction: 0.05,
        ..FaultProfile::chaos()
    };
    let run = || {
        let osn = faulty_network(profile);
        let report = Engine::with_threads(1).run(&osn, &job()).unwrap();
        (report.nodes(), report.degraded_walkers())
    };
    assert_eq!(run(), run());
}

#[test]
fn injection_disabled_is_byte_identical_to_the_bare_network() {
    let graph = barabasi_albert(300, 3, GRAPH_SEED).unwrap();
    let bare = SimulatedOsn::new(graph.clone());
    let wrapped = faulty_network(FaultProfile::OFF);
    for v in [0u32, 1, 17, 299] {
        assert_eq!(
            bare.neighbors(NodeId(v)).unwrap(),
            wrapped.neighbors(NodeId(v)).unwrap()
        );
    }
    let a = Engine::with_threads(2).run(&bare, &job()).unwrap();
    let b = Engine::with_threads(2).run(&wrapped, &job()).unwrap();
    assert_eq!(a.nodes(), b.nodes());
    assert_eq!(wrapped.inner().fault_stats().total_injected(), 0);
}
