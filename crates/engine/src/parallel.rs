//! Order-preserving parallel map over independent work items.
//!
//! The experiment harness runs many independent repetitions (one sampler,
//! one budget, one start node each); [`scatter_map`] fans them over a fixed
//! number of threads and returns results **in input order**, so downstream
//! averaging is bit-for-bit identical to the sequential loop it replaces
//! (floating-point summation order preserved).

/// Applies `f` to every item on up to `threads` threads, returning results
/// in input order. Items are assigned round-robin by index, and `f` receives
/// the item's index alongside the item (handy for per-repetition seeds).
///
/// With `threads <= 1` (or a single item) this degenerates to a plain
/// sequential map on the calling thread.
pub fn scatter_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    // Partition into per-thread buckets, remembering original indices.
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }

    let total: usize = buckets.iter().map(Vec::len).sum();
    let mut slots: Vec<Option<U>> = (0..total).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, x)| (i, f(i, x)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("scatter workers do not panic") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u32> = (0..100).collect();
        let doubled = scatter_map(8, items, |i, x| {
            assert_eq!(i as u32, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let results = scatter_map(3, vec!["a", "b", "c", "d", "e"], |_, s| {
            hits.fetch_add(1, Ordering::Relaxed);
            s.len()
        });
        assert_eq!(results, vec![1; 5]);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn degenerate_shapes() {
        assert!(scatter_map(4, Vec::<u8>::new(), |_, x| x).is_empty());
        assert_eq!(scatter_map(0, vec![7], |_, x| x + 1), vec![8]);
        assert_eq!(scatter_map(16, vec![1, 2], |_, x| x), vec![1, 2]);
    }
}
