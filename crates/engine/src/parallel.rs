//! Order-preserving parallel map over independent work items.
//!
//! The experiment harness runs many independent repetitions (one sampler,
//! one budget, one start node each); [`scatter_map`] fans them over a
//! persistent [`WorkerPool`] and returns results **in input order**, so
//! downstream averaging is bit-for-bit identical to the sequential loop it
//! replaces (floating-point summation order preserved). The pool's workers
//! were spawned once, at pool startup — a harness calling `scatter_map` per
//! budget point pays no per-call thread-creation cost.

use wnw_runtime::WorkerPool;

/// Applies `f` to every item over `pool`'s lanes, returning results in
/// input order. `f` receives the item's index alongside the item (handy for
/// per-repetition seeds); each result lands in its item's slot, so the
/// output order never depends on the pool width.
///
/// On a width-1 pool (or a single item) this degenerates to a plain
/// sequential map on the calling thread — the pool's spawnless fast path.
/// If `f` panics, the panic of the lowest-indexed item reaches the caller
/// (after the round barrier on the dispatched path).
pub fn scatter_map<T, U, F>(pool: &WorkerPool, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let mut slots: Vec<(usize, Option<T>, Option<U>)> = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| (i, Some(item), None))
        .collect();
    pool.round(&mut slots, |(i, item, out)| {
        *out = Some(f(*i, item.take().expect("each item consumed once")));
    });
    slots
        .into_iter()
        .map(|(_, _, out)| out.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let pool = WorkerPool::new(8);
        let items: Vec<u32> = (0..100).collect();
        let doubled = scatter_map(&pool, items, |i, x| {
            assert_eq!(i as u32, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(pool.stats().rounds_dispatched, 1);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        let results = scatter_map(&pool, vec!["a", "b", "c", "d", "e"], |_, s| {
            hits.fetch_add(1, Ordering::Relaxed);
            s.len()
        });
        assert_eq!(results, vec![1; 5]);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn degenerate_shapes() {
        let wide = WorkerPool::new(4);
        assert!(scatter_map(&wide, Vec::<u8>::new(), |_, x| x).is_empty());
        let narrow = WorkerPool::new(0);
        assert_eq!(scatter_map(&narrow, vec![7], |_, x| x + 1), vec![8]);
        let wider_than_items = WorkerPool::new(16);
        assert_eq!(
            scatter_map(&wider_than_items, vec![1, 2], |_, x| x),
            vec![1, 2]
        );
    }

    #[test]
    fn pool_width_does_not_change_results() {
        let items: Vec<u64> = (0..37).collect();
        let reference: Vec<u64> = items
            .iter()
            .map(|&x| x.wrapping_mul(2654435761) >> 7)
            .collect();
        for width in [1, 2, 4, 8] {
            let pool = WorkerPool::new(width);
            let got = scatter_map(&pool, items.clone(), |_, x| x.wrapping_mul(2654435761) >> 7);
            assert_eq!(got, reference, "width {width} diverged");
        }
    }
}
