//! Job-level progress hooks and cooperative cancellation.
//!
//! An [`EngineObserver`] rides along with a running job: the engine (and the
//! multi-job scheduler in `wnw-service`) invokes it on the coordinating
//! thread at every round barrier — after all of the round's draws have
//! landed and the shared history has been flushed — so observers see a
//! consistent snapshot and never need internal synchronisation.
//!
//! Observer callbacks are *outside* the determinism boundary: they can
//! stream samples to a consumer, export metrics, or request cancellation,
//! but nothing they do can change which samples the walkers produce.
//! Cancellation is cooperative and round-granular: the engine polls
//! [`cancel_requested`](EngineObserver::cancel_requested) before each round
//! and, when it returns `true`, stops scheduling further rounds and returns
//! the partial [`JobReport`](crate::JobReport) with
//! [`cancelled`](crate::JobReport::cancelled) set.

use wnw_access::counter::QueryStats;
use wnw_mcmc::sampler::SampleRecord;

/// A consistent job-progress snapshot taken at a round barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundProgress {
    /// Rounds completed so far (1 after the first round).
    pub rounds: usize,
    /// Walkers still drawing (quota unmet, budget left, no error).
    pub live_walkers: usize,
    /// Samples accepted so far, across all walkers.
    pub samples: usize,
    /// Samples the job asked for.
    pub requested: usize,
    /// Query budget consumed so far: the sum of the walkers' own unique-node
    /// charges (each walker's budget share is enforced against this).
    pub budget_consumed: u64,
    /// The shared pool cache's counters at the barrier — `unique_nodes` is
    /// the pool's true query cost, and `cache_hits / api_calls` its hit rate.
    pub pool: QueryStats,
}

impl RoundProgress {
    /// Fraction of calls against the pool cache served locally (0.0 when no
    /// calls were made yet).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.pool.api_calls == 0 {
            0.0
        } else {
            self.pool.cache_hits as f64 / self.pool.api_calls as f64
        }
    }
}

/// Hooks invoked by the engine while a job runs.
///
/// All methods are called from the thread driving the job (never from worker
/// threads), strictly between rounds. Every method has a no-op default so
/// observers implement only what they need.
pub trait EngineObserver {
    /// Called once per accepted sample, in walker order within each round,
    /// before [`on_round`](Self::on_round) for that round.
    fn on_sample(&mut self, walker: usize, record: &SampleRecord) {
        let _ = (walker, record);
    }

    /// Called after each round's flush barrier with a consistent snapshot.
    /// `progress.samples` is monotone non-decreasing across calls and its
    /// final value equals the job report's sample count.
    fn on_round(&mut self, progress: &RoundProgress) {
        let _ = progress;
    }

    /// Polled before each round; returning `true` stops the job at the next
    /// round boundary (samples already accepted are kept and reported).
    fn cancel_requested(&mut self) -> bool {
        false
    }
}

/// The default observer: no hooks, never cancels.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl EngineObserver for NoopObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut progress = RoundProgress {
            rounds: 0,
            live_walkers: 0,
            samples: 0,
            requested: 0,
            budget_consumed: 0,
            pool: QueryStats::default(),
        };
        assert_eq!(progress.cache_hit_rate(), 0.0);
        progress.pool.api_calls = 8;
        progress.pool.cache_hits = 2;
        assert!((progress.cache_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn noop_observer_defaults() {
        let mut obs = NoopObserver;
        assert!(!obs.cancel_requested());
        obs.on_sample(
            0,
            &SampleRecord {
                node: wnw_graph::NodeId(1),
                query_cost: 0,
                attempts: 1,
            },
        );
    }
}
