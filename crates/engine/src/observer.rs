//! Job-level progress hooks and cooperative cancellation.
//!
//! An [`EngineObserver`] rides along with a running job: the engine (and the
//! multi-job scheduler in `wnw-service`) invokes it on the coordinating
//! thread at every round barrier — after all of the round's draws have
//! landed and the shared history has been flushed — so observers see a
//! consistent snapshot and never need internal synchronisation.
//!
//! Observer callbacks are *outside* the determinism boundary: they can
//! stream samples to a consumer, export metrics, or request cancellation,
//! but nothing they do can change which samples the walkers produce.
//! Cancellation is cooperative and round-granular: the engine polls
//! [`cancel_requested`](EngineObserver::cancel_requested) before each round
//! and, when it returns `true`, stops scheduling further rounds and returns
//! the partial [`JobReport`](crate::JobReport) with
//! [`cancelled`](crate::JobReport::cancelled) set.

use std::sync::Arc;
use std::time::Instant;
use wnw_access::counter::QueryStats;
use wnw_mcmc::sampler::SampleRecord;
use wnw_telemetry::{Histogram, TraceEventKind, TraceLog};

/// A consistent job-progress snapshot taken at a round barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundProgress {
    /// Rounds completed so far (1 after the first round).
    pub rounds: usize,
    /// Walkers still drawing (quota unmet, budget left, no error).
    pub live_walkers: usize,
    /// Samples accepted so far, across all walkers.
    pub samples: usize,
    /// Samples the job asked for.
    pub requested: usize,
    /// Query budget consumed so far: the sum of the walkers' own unique-node
    /// charges (each walker's budget share is enforced against this).
    pub budget_consumed: u64,
    /// The shared pool cache's counters at the barrier — `unique_nodes` is
    /// the pool's true query cost, and `cache_hits / api_calls` its hit rate.
    pub pool: QueryStats,
}

impl RoundProgress {
    /// Fraction of calls against the pool cache served locally (0.0 when no
    /// calls were made yet).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.pool.api_calls == 0 {
            0.0
        } else {
            self.pool.cache_hits as f64 / self.pool.api_calls as f64
        }
    }
}

/// Hooks invoked by the engine while a job runs.
///
/// All methods are called from the thread driving the job (never from worker
/// threads), strictly between rounds. Every method has a no-op default so
/// observers implement only what they need.
pub trait EngineObserver {
    /// Called once per accepted sample, in walker order within each round,
    /// before [`on_round`](Self::on_round) for that round.
    fn on_sample(&mut self, walker: usize, record: &SampleRecord) {
        let _ = (walker, record);
    }

    /// Called after each round's flush barrier with a consistent snapshot.
    /// `progress.samples` is monotone non-decreasing across calls and its
    /// final value equals the job report's sample count.
    fn on_round(&mut self, progress: &RoundProgress) {
        let _ = progress;
    }

    /// Polled before each round; returning `true` stops the job at the next
    /// round boundary (samples already accepted are kept and reported).
    fn cancel_requested(&mut self) -> bool {
        false
    }
}

/// The default observer: no hooks, never cancels.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl EngineObserver for NoopObserver {}

/// An observer that feeds round timings into a [`Histogram`] and, when a
/// [`TraceLog`] is attached, records the job's lifecycle events.
///
/// Wall-clock time between round barriers goes into the histogram in
/// saturating microseconds; the trace (if any) receives one `FirstRound`
/// before the first barrier's `RoundCompleted`, a `RoundCompleted` per
/// barrier carrying the round's unique-node query delta, and a single
/// `SamplePublished` for the first accepted sample. Timing happens on the
/// coordinating thread between rounds, so it adds two `Instant` reads per
/// round to the job — nothing to the workers' draw loop.
#[derive(Debug)]
pub struct TelemetryObserver {
    rounds: Arc<Histogram>,
    trace: Option<(Arc<TraceLog>, u64)>,
    last_barrier: Instant,
    prev_budget: u64,
    first_round_seen: bool,
    first_sample_seen: bool,
}

impl TelemetryObserver {
    /// An observer recording round durations into `rounds` (microseconds).
    pub fn new(rounds: Arc<Histogram>) -> Self {
        TelemetryObserver {
            rounds,
            trace: None,
            last_barrier: Instant::now(),
            prev_budget: 0,
            first_round_seen: false,
            first_sample_seen: false,
        }
    }

    /// Additionally records lifecycle events for `job` into `trace`.
    pub fn with_trace(mut self, trace: Arc<TraceLog>, job: u64) -> Self {
        self.trace = Some((trace, job));
        self
    }

    /// Restarts the round clock (call right before the job's first round if
    /// the observer was built earlier, e.g. while the job sat in a queue).
    pub fn mark_round_start(&mut self) {
        self.last_barrier = Instant::now();
    }
}

impl EngineObserver for TelemetryObserver {
    fn on_sample(&mut self, _walker: usize, _record: &SampleRecord) {
        if !self.first_sample_seen {
            self.first_sample_seen = true;
            if let Some((trace, job)) = &self.trace {
                trace.record(*job, TraceEventKind::SamplePublished);
            }
        }
    }

    fn on_round(&mut self, progress: &RoundProgress) {
        self.rounds.record_duration(self.last_barrier.elapsed());
        self.last_barrier = Instant::now();
        if let Some((trace, job)) = &self.trace {
            if !self.first_round_seen {
                self.first_round_seen = true;
                trace.record(*job, TraceEventKind::FirstRound);
            }
            let queries = progress.budget_consumed.saturating_sub(self.prev_budget);
            trace.record(*job, TraceEventKind::RoundCompleted { queries });
        }
        self.prev_budget = progress.budget_consumed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut progress = RoundProgress {
            rounds: 0,
            live_walkers: 0,
            samples: 0,
            requested: 0,
            budget_consumed: 0,
            pool: QueryStats::default(),
        };
        assert_eq!(progress.cache_hit_rate(), 0.0);
        progress.pool.api_calls = 8;
        progress.pool.cache_hits = 2;
        assert!((progress.cache_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn telemetry_observer_records_rounds_and_trace() {
        let rounds = Arc::new(Histogram::new());
        let trace = Arc::new(TraceLog::new(1024));
        let mut obs = TelemetryObserver::new(Arc::clone(&rounds)).with_trace(Arc::clone(&trace), 9);
        obs.mark_round_start();
        let record = SampleRecord {
            node: wnw_graph::NodeId(1),
            query_cost: 2,
            attempts: 1,
        };
        obs.on_sample(0, &record);
        obs.on_sample(1, &record); // only the first sample is traced
        let mut progress = RoundProgress {
            rounds: 1,
            live_walkers: 2,
            samples: 2,
            requested: 4,
            budget_consumed: 7,
            pool: QueryStats::default(),
        };
        obs.on_round(&progress);
        progress.rounds = 2;
        progress.budget_consumed = 12;
        obs.on_round(&progress);
        assert_eq!(rounds.count(), 2, "one duration per barrier");
        let labels: Vec<&str> = trace.events_for(9).iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "sample_published",
                "first_round",
                "round_completed",
                "round_completed"
            ]
        );
        let events = trace.events_for(9);
        assert_eq!(
            events[2].kind,
            TraceEventKind::RoundCompleted { queries: 7 },
            "first barrier charges the full budget so far"
        );
        assert_eq!(
            events[3].kind,
            TraceEventKind::RoundCompleted { queries: 5 },
            "later barriers charge the delta"
        );
        assert!(!obs.cancel_requested());
    }

    #[test]
    fn telemetry_observer_without_trace_only_times() {
        let rounds = Arc::new(Histogram::new());
        let mut obs = TelemetryObserver::new(Arc::clone(&rounds));
        obs.on_round(&RoundProgress {
            rounds: 1,
            live_walkers: 1,
            samples: 0,
            requested: 1,
            budget_consumed: 3,
            pool: QueryStats::default(),
        });
        assert_eq!(rounds.count(), 1);
    }

    #[test]
    fn noop_observer_defaults() {
        let mut obs = NoopObserver;
        assert!(!obs.cancel_requested());
        obs.on_sample(
            0,
            &SampleRecord {
                node: wnw_graph::NodeId(1),
                query_cost: 0,
                attempts: 1,
            },
        );
    }
}
