//! Sampling job requests.
//!
//! A [`SampleJob`] describes *what* to sample — which sampler family, how
//! many samples, under which query budget and walk-length policy — without
//! saying anything about threads. The unit of work and of reproducibility is
//! the **virtual walker**: a job fans out over [`walkers`](SampleJob::walkers)
//! independent walker states with deterministic per-walker RNG streams
//! (`seed ⊕ walker_id`), and the engine maps those walkers onto however many
//! OS threads it was built with. The accepted-sample multiset therefore
//! depends only on the job, never on the thread count.

use wnw_core::config::WalkEstimateConfig;
use wnw_graph::NodeId;
use wnw_mcmc::burn_in::BurnInConfig;
use wnw_mcmc::transition::{RandomWalkKind, TargetDistribution};

/// Which sampler family a job runs in each walker.
#[derive(Debug, Clone, Copy)]
pub enum SamplerSpec {
    /// WALK-ESTIMATE over the given input walk design (the paper's
    /// contribution, and the engine's default).
    WalkEstimate {
        /// The input random-walk design WE replaces.
        input: RandomWalkKind,
        /// Full WALK-ESTIMATE configuration (variant, crawl depth, ...).
        config: WalkEstimateConfig,
    },
    /// Traditional many-short-runs baseline with Geweke-monitored burn-in.
    ManyShortRuns {
        /// The random-walk design.
        input: RandomWalkKind,
        /// Burn-in configuration.
        config: BurnInConfig,
    },
    /// Traditional one-long-run baseline (correlated samples after one
    /// burn-in).
    OneLongRun {
        /// The random-walk design.
        input: RandomWalkKind,
        /// Burn-in configuration.
        config: BurnInConfig,
    },
}

impl SamplerSpec {
    /// The target distribution of the samples this spec produces.
    pub fn target(&self) -> TargetDistribution {
        match self {
            SamplerSpec::WalkEstimate { input, .. }
            | SamplerSpec::ManyShortRuns { input, .. }
            | SamplerSpec::OneLongRun { input, .. } => input.target(),
        }
    }

    /// The input random-walk design the spec runs on.
    pub fn input_kind(&self) -> RandomWalkKind {
        match self {
            SamplerSpec::WalkEstimate { input, .. }
            | SamplerSpec::ManyShortRuns { input, .. }
            | SamplerSpec::OneLongRun { input, .. } => *input,
        }
    }

    /// Whether walkers of this spec profit from a pool-shared walk history.
    pub fn uses_shared_history(&self) -> bool {
        matches!(
            self,
            SamplerSpec::WalkEstimate { config, .. }
                if config.variant.uses_weighted_sampling()
        )
    }
}

/// How walkers share forward-walk history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryMode {
    /// Walkers publish their forward walks to a pool-shared
    /// [`SharedWalkHistory`](wnw_core::SharedWalkHistory) at the engine's
    /// round barriers, so every walker's weighted backward sampling benefits
    /// from everyone's walks. Still deterministic at any thread count: reads
    /// happen against a snapshot frozen between barriers and merges are
    /// additive (order-independent).
    #[default]
    Cooperative,
    /// Every walker keeps a private history, exactly like `walkers`
    /// independent single-threaded samplers.
    Independent,
}

/// A request to the engine: collect `samples` samples with `walkers` virtual
/// walkers under an optional total query budget.
#[derive(Debug, Clone)]
pub struct SampleJob {
    /// Sampler family to run.
    pub spec: SamplerSpec,
    /// Total number of samples to collect (split round-robin across
    /// walkers).
    pub samples: usize,
    /// Number of virtual walkers — the determinism unit, independent of the
    /// engine's thread count.
    pub walkers: usize,
    /// Base RNG seed; walker `w` runs on the stream seeded by `seed ^ w`.
    pub seed: u64,
    /// Optional *total* unique-node query budget, split evenly across
    /// walkers and enforced per walker (a pool-global budget would make the
    /// accepted-sample multiset depend on thread interleaving).
    pub budget: Option<u64>,
    /// History sharing mode.
    pub history: HistoryMode,
    /// Diameter estimate handed to WALK-ESTIMATE's walk-length policy.
    pub diameter_estimate: Option<usize>,
    /// Start node of every walker's walks. `None` (the default) starts from
    /// the network's own [`seed_node`](wnw_access::SocialNetwork::seed_node);
    /// `Some` rebases the job onto the given node — which also becomes the
    /// `start` component of the job's cross-job history key, so jobs rebased
    /// onto the same hot node exchange history while jobs elsewhere never do.
    pub start_node: Option<NodeId>,
}

impl SampleJob {
    /// A WALK-ESTIMATE job with the default configuration: cooperative
    /// history, 4 virtual walkers, no budget.
    pub fn walk_estimate(input: RandomWalkKind, samples: usize, seed: u64) -> Self {
        SampleJob {
            spec: SamplerSpec::WalkEstimate {
                input,
                config: WalkEstimateConfig::default(),
            },
            samples,
            walkers: 4,
            seed,
            budget: None,
            history: HistoryMode::default(),
            diameter_estimate: None,
            start_node: None,
        }
    }

    /// A many-short-runs baseline job.
    pub fn baseline(input: RandomWalkKind, samples: usize, seed: u64) -> Self {
        SampleJob {
            spec: SamplerSpec::ManyShortRuns {
                input,
                config: BurnInConfig::default(),
            },
            samples,
            walkers: 4,
            seed,
            budget: None,
            history: HistoryMode::Independent,
            diameter_estimate: None,
            start_node: None,
        }
    }

    /// Sets the number of virtual walkers.
    pub fn with_walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers.max(1);
        self
    }

    /// Sets the total query budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the history mode.
    pub fn with_history(mut self, history: HistoryMode) -> Self {
        self.history = history;
        self
    }

    /// Sets the diameter estimate for the walk-length policy.
    pub fn with_diameter_estimate(mut self, diameter: usize) -> Self {
        self.diameter_estimate = Some(diameter);
        self
    }

    /// Rebases every walker's walks onto `start` instead of the network's
    /// seed node.
    pub fn with_start_node(mut self, start: NodeId) -> Self {
        self.start_node = Some(start);
        self
    }

    /// Sets the sampler spec.
    pub fn with_spec(mut self, spec: SamplerSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sample quota of walker `w`: `samples` split round-robin.
    pub fn quota_of(&self, walker: usize) -> usize {
        debug_assert!(walker < self.walkers);
        self.samples / self.walkers + usize::from(walker < self.samples % self.walkers)
    }

    /// Walkers with a nonzero sample quota — the only ones that ever issue
    /// queries. When a job requests fewer samples than it has walkers, the
    /// surplus walkers are idle and must not hold budget shares.
    pub fn active_walkers(&self) -> usize {
        self.walkers.min(self.samples)
    }

    /// Budget share of walker `w` (`None` when the job is unbudgeted): an
    /// even split across the *active* walkers, with the remainder going to
    /// the first of them. Idle walkers (quota 0) get a zero share, so no
    /// budget is stranded on walkers that never draw; the shares of the
    /// active walkers always sum exactly to the job budget.
    pub fn budget_of(&self, walker: usize) -> Option<u64> {
        debug_assert!(walker < self.walkers);
        let active = self.active_walkers() as u64;
        self.budget.map(|b| {
            if walker as u64 >= active {
                return 0;
            }
            b / active + u64::from((walker as u64) < b % active)
        })
    }

    /// RNG seed of walker `w`.
    pub fn seed_of(&self, walker: usize) -> u64 {
        self.seed ^ walker as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_and_budgets_split_without_loss() {
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 10, 1)
            .with_walkers(4)
            .with_budget(1003);
        let total: usize = (0..4).map(|w| job.quota_of(w)).sum();
        assert_eq!(total, 10);
        assert_eq!(job.quota_of(0), 3);
        assert_eq!(job.quota_of(2), 2);
        let budget: u64 = (0..4).map(|w| job.budget_of(w).unwrap()).sum();
        assert_eq!(budget, 1003);
    }

    #[test]
    fn idle_walkers_hold_no_budget() {
        // 2 samples across 4 walkers: walkers 2 and 3 never draw, so the
        // whole budget must land on the two active walkers (the old even
        // split stranded half of it on idle walkers).
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 2, 1)
            .with_walkers(4)
            .with_budget(101);
        assert_eq!(job.active_walkers(), 2);
        assert_eq!(job.quota_of(2), 0);
        assert_eq!(job.budget_of(0), Some(51));
        assert_eq!(job.budget_of(1), Some(50));
        assert_eq!(job.budget_of(2), Some(0));
        assert_eq!(job.budget_of(3), Some(0));
        let total: u64 = (0..4).map(|w| job.budget_of(w).unwrap()).sum();
        assert_eq!(total, 101, "no budget may be lost to rounding");
    }

    #[test]
    fn zero_sample_jobs_split_safely() {
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 0, 1)
            .with_walkers(3)
            .with_budget(10);
        assert_eq!(job.active_walkers(), 0);
        for w in 0..3 {
            assert_eq!(job.quota_of(w), 0);
            assert_eq!(job.budget_of(w), Some(0));
        }
    }

    #[test]
    fn walker_seeds_differ() {
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 4, 99).with_walkers(3);
        assert_ne!(job.seed_of(0), job.seed_of(1));
        assert_ne!(job.seed_of(1), job.seed_of(2));
    }

    #[test]
    fn spec_properties() {
        let we = SampleJob::walk_estimate(RandomWalkKind::MetropolisHastings, 1, 1);
        assert_eq!(we.spec.target(), TargetDistribution::Uniform);
        assert!(we.spec.uses_shared_history());
        let base = SampleJob::baseline(RandomWalkKind::Simple, 1, 1);
        assert_eq!(base.spec.target(), TargetDistribution::DegreeProportional);
        assert!(!base.spec.uses_shared_history());
    }
}
