//! Incremental, round-at-a-time execution of one job's walker pool.
//!
//! [`JobDriver`] owns the virtual-walker states of a single [`SampleJob`]
//! and advances them one **round** at a time: every live walker draws one
//! sample (reading a frozen shared-history snapshot), then every walker's
//! pending walks are merged into the shared history.
//! [`Engine::run`](crate::Engine::run) drives a fresh driver to completion;
//! the multi-job
//! scheduler in `wnw-service` instead *interleaves* rounds of many drivers
//! over one thread pool, which is what makes fair scheduling, streaming
//! delivery, and mid-job cancellation possible without giving up the
//! per-job determinism argument (see [`engine`](crate::engine)).
//!
//! Determinism of a round: draws touch only (a) the walker's own state and
//! RNG stream, (b) the cache handle — whose answers are a pure function of
//! the node asked — and (c) the shared-history snapshot frozen for the
//! round. The flush phase merges pending walks by *adding* per-(node, step)
//! counts, which is commutative and associative, so the snapshot for the
//! next round does not depend on the order walkers flushed in — nor on how
//! many OS threads carried the draws.

use crate::job::{HistoryMode, SampleJob, SamplerSpec};
use crate::report::WalkerReport;
use std::sync::Arc;
use wnw_access::counter::{QueryBudget, QueryCounter};
use wnw_access::interface::SocialNetwork;
use wnw_access::metered::MeteredNetwork;
use wnw_access::rebased::Rebased;
use wnw_access::AccessError;
use wnw_core::history::{FrozenHistory, ReuseCorrection, SharedWalkHistory, WalkHistory};
use wnw_core::sampler::WalkEstimateSampler;
use wnw_mcmc::burn_in::{ManyShortRunsSampler, OneLongRunSampler};
use wnw_mcmc::sampler::{SampleRecord, Sampler};
use wnw_runtime::WorkerPool;

/// Per-walker execution state.
struct WalkerState<'a> {
    walker: usize,
    quota: usize,
    sampler: Box<dyn Sampler + Send + 'a>,
    counter: Arc<QueryCounter>,
    produced: Vec<SampleRecord>,
    /// How many of `produced` a streaming consumer has already drained
    /// (see [`JobDriver::drain_new_samples`]).
    streamed: usize,
    budget_exhausted: bool,
    /// A degradation (transient fault, exhausted retries, open breaker)
    /// that ended this walker early. Treated like budget exhaustion: the
    /// walker stops, its samples are kept, and the job does not fail.
    degraded: Option<AccessError>,
    fatal: Option<AccessError>,
    /// A panic payload caught from this walker's sampler, held until the
    /// caller decides how to surface it (the engine resumes it; the service
    /// converts it into a failed job).
    panicked: Option<Box<dyn std::any::Any + Send>>,
}

impl WalkerState<'_> {
    fn live(&self) -> bool {
        self.produced.len() < self.quota
            && !self.budget_exhausted
            && self.degraded.is_none()
            && self.fatal.is_none()
            && self.panicked.is_none()
    }

    fn draw_once(&mut self) {
        // Contain panics so one exploding walker cannot take down the
        // others mid-round. The shared structures are poison-robust and
        // additive, so a half-recorded walk cannot corrupt them.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.sampler.draw()));
        match outcome {
            Ok(Ok(record)) => self.produced.push(record),
            Ok(Err(AccessError::BudgetExhausted { .. })) => self.budget_exhausted = true,
            // A degradation (transient fault, exhausted retries, open
            // breaker) ends this walker the way budget exhaustion does —
            // the samples it already produced stay useful partial evidence.
            Ok(Err(other)) if other.is_degradation() => self.degraded = Some(other),
            Ok(Err(other)) => self.fatal = Some(other),
            Err(payload) => self.panicked = Some(payload),
        }
    }

    fn flush_once(&mut self) {
        if self.panicked.is_none() {
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.sampler.flush_shared_state()
            })) {
                self.panicked = Some(payload);
            }
        }
    }
}

/// One job's walker pool, steppable round by round.
///
/// The lifetime `'a` bounds the cache handle the walkers read through:
/// [`Engine::run`](crate::Engine::run) uses a scope-local borrowed cache,
/// while a long-lived service passes an owned (`'static`) handle such as
/// `MeteredNetwork<Arc<CachedNetwork<…>>>`.
pub struct JobDriver<'a> {
    walkers: Vec<WalkerState<'a>>,
    rounds: usize,
    requested: usize,
    /// The job's cooperative accumulator (when the spec uses one): what a
    /// publishing policy exports at reap. Contains only this job's own
    /// walks — a seeded base is read-only and never lands here.
    shared_history: Option<Arc<SharedWalkHistory>>,
}

impl<'a> JobDriver<'a> {
    /// Builds the walker stacks of `job` over `cache`: each walker gets its
    /// own clone of the handle, wrapped in a budget-enforcing
    /// [`MeteredNetwork`] view, with the sampler the job's spec names on
    /// top, seeded from the walker's RNG stream. Cooperative history (when
    /// the spec profits from it) is created per job — live state is never
    /// shared across jobs, which would make one request's samples depend on
    /// what else is running (cross-job reuse goes through immutable
    /// [`FrozenHistory`] snapshots instead; see
    /// [`with_seed_history`](Self::with_seed_history)).
    pub fn new<C>(cache: C, job: &SampleJob) -> Self
    where
        C: SocialNetwork + Clone + Send + 'a,
    {
        Self::with_seed_history(cache, job, None)
    }

    /// Like [`new`](Self::new), additionally seeding every walker's history
    /// reads with a frozen cross-job snapshot (walks published by completed
    /// prior jobs, weighted by the given [`ReuseCorrection`]). The snapshot
    /// is immutable — taken once, at admission, per the store's
    /// snapshot-on-admit epoch rule — so the job's results are a pure
    /// function of (job, snapshot) at any thread count. Ignored for jobs
    /// whose spec or history mode cannot use shared history.
    pub fn with_seed_history<C>(
        cache: C,
        job: &SampleJob,
        seed_history: Option<(Arc<FrozenHistory>, ReuseCorrection)>,
    ) -> Self
    where
        C: SocialNetwork + Clone + Send + 'a,
    {
        let shared_history = (job.history == HistoryMode::Cooperative
            && job.spec.uses_shared_history())
        .then(SharedWalkHistory::shared);
        let seed_history = shared_history.is_some().then_some(seed_history).flatten();
        let walkers = (0..job.walkers)
            .map(|w| {
                build_walker(
                    cache.clone(),
                    job,
                    shared_history.clone(),
                    seed_history.clone(),
                    w,
                )
            })
            .collect();
        JobDriver {
            walkers,
            rounds: 0,
            requested: job.samples,
            shared_history,
        }
    }

    /// The job's own merged walk history — what a publishing policy hands
    /// to the [`HistoryStore`](wnw_core::HistoryStore) at reap. `None` for
    /// jobs without a cooperative accumulator (baselines,
    /// independent-history jobs), `Some` (possibly empty) otherwise; callers
    /// should publish only non-empty exports.
    pub fn export_shared_history(&self) -> Option<WalkHistory> {
        self.shared_history.as_ref().map(|shared| shared.export())
    }

    /// Whether every walker is finished (quota met, budget out, failed, or
    /// panicked).
    pub fn is_done(&self) -> bool {
        self.walkers.iter().all(|w| !w.live())
    }

    /// Whether any walker hit a fatal (non-budget) error or panicked. The
    /// job is doomed either way — the engine fails it and the service
    /// reports it `Failed`/`Panicked` — so callers stop scheduling rounds
    /// at this point instead of running the healthy walkers to completion
    /// for a result that will be discarded.
    pub fn poisoned(&self) -> bool {
        self.walkers
            .iter()
            .any(|w| w.fatal.is_some() || w.panicked.is_some())
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Walkers still drawing.
    pub fn live_walkers(&self) -> usize {
        self.walkers.iter().filter(|w| w.live()).count()
    }

    /// Walkers stopped by a degradation (transient fault, exhausted
    /// retries, open breaker) so far.
    pub fn degraded_walkers(&self) -> usize {
        self.walkers.iter().filter(|w| w.degraded.is_some()).count()
    }

    /// Number of virtual walkers (live or not).
    pub fn walker_count(&self) -> usize {
        self.walkers.len()
    }

    /// Samples the job asked for.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Samples accepted so far, across all walkers.
    pub fn samples_collected(&self) -> usize {
        self.walkers.iter().map(|w| w.produced.len()).sum()
    }

    /// Sum of the walkers' own unique-node charges so far.
    pub fn budget_consumed(&self) -> u64 {
        self.walkers
            .iter()
            .map(|w| w.counter.stats().unique_nodes)
            .sum()
    }

    /// The samples walker `w` has produced so far.
    pub fn walker_samples(&self, walker: usize) -> &[SampleRecord] {
        &self.walkers[walker].produced
    }

    /// Visits every sample produced since the last call (walker order, then
    /// production order within a walker) — the single streaming-delivery
    /// primitive shared by [`Engine::run_observed`](crate::Engine::run_observed)
    /// and the `wnw-service` scheduler, so the delivered-watermark invariant
    /// lives in one place.
    pub fn drain_new_samples(&mut self, mut visit: impl FnMut(usize, &SampleRecord)) {
        for state in &mut self.walkers {
            for record in &state.produced[state.streamed..] {
                visit(state.walker, record);
            }
            state.streamed = state.produced.len();
        }
    }

    /// Runs one round: every live walker draws once, fanned over `pool`'s
    /// lanes, then all walkers flush pending shared state (sequentially, in
    /// walker order — the merges are additive, so this choice is invisible
    /// to the result). No-op when the job is done.
    ///
    /// The pool's round barrier is the round's draw barrier: every draw has
    /// finished before any flush starts. Rounds with a single live walker —
    /// 1-walker jobs, and any job wound down to its last live walker — run
    /// inline on the caller (the pool's spawnless fast path), so they never
    /// touch the worker threads; the per-walker `catch_unwind` around every
    /// draw means a panicking sampler never unwinds into the pool. No OS
    /// thread is ever spawned here: the pool's workers were spawned once,
    /// at pool startup.
    pub fn step_round(&mut self, pool: &WorkerPool) {
        {
            let mut live: Vec<&mut WalkerState<'a>> =
                self.walkers.iter_mut().filter(|s| s.live()).collect();
            if live.is_empty() {
                return;
            }
            pool.round(&mut live, |state| state.draw_once());
        }
        for state in &mut self.walkers {
            state.flush_once();
        }
        self.rounds += 1;
    }

    /// Tears the pool down into per-walker reports plus the panic payload of
    /// the lowest-numbered panicking walker (lowest for determinism), if any.
    pub fn finish(self) -> (Vec<WalkerReport>, Option<Box<dyn std::any::Any + Send>>) {
        let mut panic_payload: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        let mut reports = Vec::with_capacity(self.walkers.len());
        for mut state in self.walkers {
            if let Some(payload) = state.panicked.take() {
                if panic_payload.is_none() {
                    panic_payload = Some((state.walker, payload));
                }
            }
            reports.push(WalkerReport {
                walker: state.walker,
                samples: state.produced,
                stats: state.counter.stats(),
                budget_exhausted: state.budget_exhausted,
                degraded: state.degraded,
                fatal: state.fatal,
            });
        }
        (reports, panic_payload.map(|(_, payload)| payload))
    }
}

impl std::fmt::Debug for JobDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobDriver")
            .field("walkers", &self.walkers.len())
            .field("live", &self.live_walkers())
            .field("rounds", &self.rounds)
            .field("samples", &self.samples_collected())
            .field("requested", &self.requested)
            .finish()
    }
}

/// Builds the sampler stack of one virtual walker: a per-walker metered
/// (and budgeted) view over the shared cache handle, the spec'd sampler on
/// top, seeded with the walker's own RNG stream.
fn build_walker<'a, C>(
    cache: C,
    job: &SampleJob,
    shared_history: Option<Arc<SharedWalkHistory>>,
    seed_history: Option<(Arc<FrozenHistory>, ReuseCorrection)>,
    walker: usize,
) -> WalkerState<'a>
where
    C: SocialNetwork + Clone + Send + 'a,
{
    let budget = job
        .budget_of(walker)
        .map(QueryBudget)
        .unwrap_or(QueryBudget::UNLIMITED);
    // Rebase unconditionally: with `start_node: None` the view passes the
    // network's own seed node through, so the default path is unchanged.
    let metered = MeteredNetwork::with_budget(Rebased::new(cache, job.start_node), budget);
    let counter = metered.counter_handle();
    let seed = job.seed_of(walker);
    let sampler: Box<dyn Sampler + Send + 'a> = match job.spec {
        SamplerSpec::WalkEstimate { input, config } => {
            let mut sampler = WalkEstimateSampler::new(metered, input, config, seed);
            if let Some(diameter) = job.diameter_estimate {
                sampler = sampler.with_diameter_estimate(diameter);
            }
            match (shared_history, seed_history) {
                (Some(shared), Some((base, correction))) => {
                    sampler = sampler.with_seeded_history(base, correction, shared);
                }
                (Some(shared), None) => {
                    sampler = sampler.with_shared_history(shared);
                }
                (None, _) => {}
            }
            Box::new(sampler)
        }
        SamplerSpec::ManyShortRuns { input, config } => {
            Box::new(ManyShortRunsSampler::new(metered, input, config, seed))
        }
        SamplerSpec::OneLongRun { input, config } => {
            Box::new(OneLongRunSampler::new(metered, input, config, seed))
        }
    };
    WalkerState {
        walker,
        quota: job.quota_of(walker),
        sampler,
        counter,
        produced: Vec::new(),
        streamed: 0,
        budget_exhausted: false,
        degraded: None,
        fatal: None,
        panicked: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_access::SimulatedOsn;
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_mcmc::RandomWalkKind;

    #[test]
    fn stepping_to_completion_matches_quota() {
        let osn = SimulatedOsn::new(barabasi_albert(200, 3, 1).unwrap());
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 9, 5)
            .with_walkers(3)
            .with_diameter_estimate(4);
        let pool = WorkerPool::new(2);
        let mut driver = JobDriver::new(&osn, &job);
        assert_eq!(driver.walker_count(), 3);
        assert_eq!(driver.requested(), 9);
        let mut rounds = 0;
        while !driver.is_done() {
            driver.step_round(&pool);
            rounds += 1;
            assert!(rounds <= 9, "driver failed to converge");
        }
        assert_eq!(driver.rounds(), rounds);
        assert_eq!(driver.samples_collected(), 9);
        assert_eq!(driver.live_walkers(), 0);
        assert!(driver.budget_consumed() > 0);
        let (reports, panic_payload) = driver.finish();
        assert!(panic_payload.is_none());
        assert_eq!(reports.iter().map(|r| r.samples.len()).sum::<usize>(), 9);
    }

    #[test]
    fn rebased_jobs_complete_and_stay_deterministic() {
        let osn = SimulatedOsn::new(barabasi_albert(200, 3, 1).unwrap());
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 6, 5)
            .with_walkers(2)
            .with_diameter_estimate(4)
            .with_start_node(wnw_graph::NodeId(150));
        let pool = WorkerPool::new(1);
        let run = |job: &SampleJob| {
            let mut driver = JobDriver::new(&osn, job);
            while !driver.is_done() {
                driver.step_round(&pool);
            }
            let (reports, payload) = driver.finish();
            assert!(payload.is_none());
            let mut nodes: Vec<u32> = reports
                .iter()
                .flat_map(|r| r.samples.iter().map(|s| s.node.0))
                .collect();
            nodes.sort_unstable();
            nodes
        };
        let a = run(&job);
        let b = run(&job);
        assert_eq!(a.len(), 6);
        assert_eq!(a, b, "same job + same start node => same multiset");
    }

    #[test]
    fn degraded_walkers_end_like_budget_exhaustion() {
        use wnw_access::fault::{FaultProfile, FaultyNetwork};
        use wnw_access::resilient::{ResilientNetwork, RetryPolicy};

        // Every node is blacked out: the first fetch of each walker
        // exhausts its retries and the walker degrades — but the job
        // completes as a degraded partial instead of erroring.
        let profile = FaultProfile {
            blackout_fraction: 1.0,
            ..FaultProfile::OFF
        };
        let osn = ResilientNetwork::new(
            FaultyNetwork::new(
                SimulatedOsn::new(barabasi_albert(100, 3, 1).unwrap()),
                7,
                profile,
            ),
            RetryPolicy::DEFAULT.without_breaker(),
            7,
        );
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 6, 5)
            .with_walkers(2)
            .with_diameter_estimate(4);
        let report = crate::Engine::with_threads(1)
            .run(&osn, &job)
            .expect("degradation must not fail the job");
        assert!(report.degraded);
        assert_eq!(report.degraded_walkers(), 2);
        assert!(report.samples.is_empty(), "blackout from step one");
        for w in &report.walkers {
            assert!(w.degraded.is_some());
            assert!(w.fatal.is_none());
            assert!(!w.budget_exhausted);
        }
    }

    #[test]
    fn step_round_after_done_is_a_noop() {
        let osn = SimulatedOsn::new(barabasi_albert(150, 3, 2).unwrap());
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 2, 3)
            .with_walkers(2)
            .with_diameter_estimate(4);
        let mut driver = JobDriver::new(&osn, &job);
        let inline = WorkerPool::new(1);
        while !driver.is_done() {
            driver.step_round(&inline);
        }
        let rounds = driver.rounds();
        let wide = WorkerPool::new(4);
        driver.step_round(&wide);
        assert_eq!(driver.rounds(), rounds);
        assert_eq!(
            wide.stats().rounds_dispatched + wide.stats().spawnless_rounds,
            0,
            "a finished job never reaches the pool"
        );
        assert_eq!(driver.samples_collected(), 2);
    }
}
