//! The worker-pool scheduler.
//!
//! [`Engine::run`] fans a [`SampleJob`] out across a pool of OS threads,
//! each driving a disjoint set of the job's virtual walkers against one
//! shared, lock-striped [`CachedNetwork`]. The schedule is a sequence of
//! **rounds** with two barriers each:
//!
//! ```text
//! round r:  every live walker draws one sample     (reads frozen history)
//!           ── barrier ──
//!           every walker publishes its new walks   (additive merges)
//!           ── barrier ──
//! ```
//!
//! Determinism argument, for any thread count:
//!
//! * each walker's RNG stream is a pure function of `job.seed ^ walker_id`;
//! * during a round, a walker reads only (a) the immutable graph through the
//!   cache — a pure function of the node asked, (b) the shared history
//!   *snapshot*, which no one writes between barriers, and (c) its own
//!   pending walks;
//! * between barriers, pending walks are merged into the shared history by
//!   adding per-(node, step) counts — commutative and associative, so the
//!   snapshot for round `r + 1` is the same whatever order threads flushed
//!   in;
//! * budgets are enforced per walker against the walker's own metered view,
//!   so exhaustion is a property of the walker's deterministic query
//!   sequence, not of scheduling.
//!
//! The accepted-sample multiset is therefore identical at 1, 2, or 64
//! threads — only the wall-clock changes.

use crate::job::{HistoryMode, SampleJob, SamplerSpec};
use crate::report::{JobReport, WalkerReport};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use wnw_access::cached::CachedNetwork;
use wnw_access::counter::{QueryBudget, QueryCounter};
use wnw_access::interface::ThreadedNetwork;
use wnw_access::metered::MeteredNetwork;
use wnw_access::{AccessError, Result};
use wnw_core::history::SharedWalkHistory;
use wnw_core::sampler::WalkEstimateSampler;
use wnw_mcmc::burn_in::{ManyShortRunsSampler, OneLongRunSampler};
use wnw_mcmc::sampler::{SampleRecord, Sampler};

/// A pool of worker threads executing [`SampleJob`]s.
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Per-walker execution state inside a worker thread.
struct WalkerState<'a> {
    walker: usize,
    quota: usize,
    sampler: Box<dyn Sampler + 'a>,
    counter: Arc<QueryCounter>,
    produced: Vec<SampleRecord>,
    budget_exhausted: bool,
    fatal: Option<AccessError>,
    /// A panic payload caught from this walker's sampler. Held until every
    /// thread has left the barrier protocol, then resumed on the caller —
    /// letting it escape mid-round would leave the other threads blocked on
    /// the fixed-count [`Barrier`] forever.
    panicked: Option<Box<dyn std::any::Any + Send>>,
}

impl WalkerState<'_> {
    fn live(&self) -> bool {
        self.produced.len() < self.quota
            && !self.budget_exhausted
            && self.fatal.is_none()
            && self.panicked.is_none()
    }
}

impl Engine {
    /// An engine using all available hardware parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Engine { threads }
    }

    /// An engine with a fixed thread count (1 runs the whole job inline on
    /// one spawned worker — useful as the reproducibility baseline).
    pub fn with_threads(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` against `network`, layering a shared
    /// [`CachedNetwork`] over it, and merges every walker's output.
    ///
    /// Errors other than per-walker budget exhaustion (which ends that
    /// walker normally) abort the job and are returned — deterministically,
    /// the fatal error of the lowest-numbered failing walker.
    pub fn run<N: ThreadedNetwork>(&self, network: &N, job: &SampleJob) -> Result<JobReport> {
        let started = Instant::now();
        let cache = CachedNetwork::new(network);
        let threads = self.threads.min(job.walkers.max(1));
        let shared_history = (job.history == HistoryMode::Cooperative
            && job.spec.uses_shared_history())
        .then(SharedWalkHistory::shared);
        let rounds = (0..job.walkers).map(|w| job.quota_of(w)).max().unwrap_or(0);
        let barrier = Barrier::new(threads);

        let mut per_thread: Vec<Vec<FinishedWalker>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let cache = &cache;
                    let barrier = &barrier;
                    let shared_history = shared_history.clone();
                    scope.spawn(move || {
                        let mut states: Vec<WalkerState<'_>> = (t..job.walkers)
                            .step_by(threads)
                            .map(|w| build_walker(cache, job, shared_history.clone(), w))
                            .collect();
                        for _round in 0..rounds {
                            for state in states.iter_mut().filter(|s| s.live()) {
                                // Contain panics: an unwinding thread would
                                // strand the others on the barrier. The
                                // shared structures are poison-robust and
                                // additive, so a half-recorded walk cannot
                                // corrupt them.
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        state.sampler.draw()
                                    }));
                                match outcome {
                                    Ok(Ok(record)) => state.produced.push(record),
                                    Ok(Err(AccessError::BudgetExhausted { .. })) => {
                                        state.budget_exhausted = true;
                                    }
                                    Ok(Err(other)) => state.fatal = Some(other),
                                    Err(payload) => state.panicked = Some(payload),
                                }
                            }
                            barrier.wait();
                            for state in &mut states {
                                if state.panicked.is_none() {
                                    if let Err(payload) =
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                            || state.sampler.flush_shared_state(),
                                        ))
                                    {
                                        state.panicked = Some(payload);
                                    }
                                }
                            }
                            barrier.wait();
                        }
                        states.into_iter().map(finish_walker).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panics are contained per walker"))
                .collect()
        });

        // Reassemble in walker order (thread t owned walkers t, t+T, ...).
        let mut walkers: Vec<Option<WalkerReport>> = (0..job.walkers).map(|_| None).collect();
        let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
        for reports in per_thread.drain(..) {
            for (report, panicked) in reports {
                let slot = report.walker;
                if let Some(payload) = panicked {
                    panics.push((slot, payload));
                }
                walkers[slot] = Some(report);
            }
        }
        // Now that every thread has left the barrier protocol, a contained
        // walker panic can be surfaced as the caller's panic — the one of
        // the lowest-numbered walker, for determinism.
        if let Some((_, payload)) = panics.into_iter().min_by_key(|(w, _)| *w) {
            std::panic::resume_unwind(payload);
        }
        let walkers: Vec<WalkerReport> = walkers
            .into_iter()
            .map(|w| w.expect("every walker reports"))
            .collect();

        // A fatal (non-budget) error in any walker fails the job.
        for report in &walkers {
            if let Some(err) = &report.fatal {
                return Err(err.clone());
            }
        }

        let samples = walkers
            .iter()
            .flat_map(|w| w.samples.iter().copied())
            .collect();
        Ok(JobReport {
            samples,
            walkers,
            pool_stats: wnw_access::SocialNetwork::query_stats(&cache),
            elapsed: started.elapsed(),
            threads,
        })
    }
}

/// Builds the sampler stack of one virtual walker: a per-walker metered
/// (and budgeted) view over the shared cache, the spec'd sampler on top,
/// seeded with the walker's own RNG stream.
fn build_walker<'a, N: ThreadedNetwork>(
    cache: &'a CachedNetwork<&'a N>,
    job: &SampleJob,
    shared_history: Option<Arc<SharedWalkHistory>>,
    walker: usize,
) -> WalkerState<'a> {
    let budget = job
        .budget_of(walker)
        .map(QueryBudget)
        .unwrap_or(QueryBudget::UNLIMITED);
    let metered = MeteredNetwork::with_budget(cache, budget);
    let counter = metered.counter_handle();
    let seed = job.seed_of(walker);
    let sampler: Box<dyn Sampler + 'a> = match job.spec {
        SamplerSpec::WalkEstimate { input, config } => {
            let mut sampler = WalkEstimateSampler::new(metered, input, config, seed);
            if let Some(diameter) = job.diameter_estimate {
                sampler = sampler.with_diameter_estimate(diameter);
            }
            if let Some(shared) = shared_history {
                sampler = sampler.with_shared_history(shared);
            }
            Box::new(sampler)
        }
        SamplerSpec::ManyShortRuns { input, config } => {
            Box::new(ManyShortRunsSampler::new(metered, input, config, seed))
        }
        SamplerSpec::OneLongRun { input, config } => {
            Box::new(OneLongRunSampler::new(metered, input, config, seed))
        }
    };
    WalkerState {
        walker,
        quota: job.quota_of(walker),
        sampler,
        counter,
        produced: Vec::new(),
        budget_exhausted: false,
        fatal: None,
        panicked: None,
    }
}

type FinishedWalker = (WalkerReport, Option<Box<dyn std::any::Any + Send>>);

fn finish_walker(state: WalkerState<'_>) -> FinishedWalker {
    (
        WalkerReport {
            walker: state.walker,
            samples: state.produced,
            stats: state.counter.stats(),
            budget_exhausted: state.budget_exhausted,
            fatal: state.fatal,
        },
        state.panicked,
    )
}
