//! The worker-pool scheduler.
//!
//! [`Engine::run`] fans a [`SampleJob`] out across a persistent
//! [`WorkerPool`] — threads spawned once at engine construction, parked
//! between rounds — each lane carrying a share of the job's virtual walkers
//! against one shared, lock-striped [`CachedNetwork`]. The schedule is a
//! sequence of **rounds** with two phases each:
//!
//! ```text
//! round r:  every live walker draws one sample     (reads frozen history)
//!           ── join barrier ──
//!           every walker publishes its new walks   (additive merges)
//! ```
//!
//! Determinism argument, for any thread count:
//!
//! * each walker's RNG stream is a pure function of `job.seed ^ walker_id`;
//! * during a round, a walker reads only (a) the immutable graph through the
//!   cache — a pure function of the node asked, (b) the shared history
//!   *snapshot*, which no one writes until every draw of the round has
//!   joined, and (c) its own pending walks;
//! * after the join barrier, pending walks are merged into the shared
//!   history by adding per-(node, step) counts — commutative and
//!   associative, so the snapshot for round `r + 1` is the same whatever
//!   order walkers flushed in;
//! * budgets are enforced per walker against the walker's own metered view,
//!   so exhaustion is a property of the walker's deterministic query
//!   sequence, not of scheduling.
//!
//! The accepted-sample multiset is therefore identical at 1, 2, or 64
//! threads — only the wall-clock changes. The round loop itself lives in
//! [`JobDriver`] so the multi-job scheduler of
//! `wnw-service` can interleave rounds of many jobs over one pool;
//! [`Engine::run_observed`] adds per-round progress hooks and a cooperative
//! cancellation check on top (see [`EngineObserver`]).

use crate::driver::JobDriver;
use crate::job::SampleJob;
use crate::observer::{EngineObserver, NoopObserver, RoundProgress};
use crate::report::JobReport;
use std::sync::Arc;
use std::time::Instant;
use wnw_access::cached::CachedNetwork;
use wnw_access::interface::ThreadedNetwork;
use wnw_access::Result;
use wnw_runtime::WorkerPool;

/// A handle on a persistent [`WorkerPool`] executing [`SampleJob`]s.
///
/// The pool's threads are spawned once, when the engine is built; every
/// round of every subsequent run reuses them (clones share the same pool).
/// Use [`Engine::with_pool`] to run several engines — or an engine and a
/// `wnw-service` scheduler — over one pool.
#[derive(Debug, Clone)]
pub struct Engine {
    pool: Arc<WorkerPool>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine using all available hardware parallelism.
    pub fn new() -> Self {
        Engine {
            pool: Arc::new(WorkerPool::with_available_parallelism()),
        }
    }

    /// An engine over a fresh pool of a fixed width (1 spawns no worker
    /// threads and runs every job inline — useful as the reproducibility
    /// baseline).
    pub fn with_threads(threads: usize) -> Self {
        Engine {
            pool: Arc::new(WorkerPool::new(threads)),
        }
    }

    /// An engine sharing an existing pool.
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        Engine { pool }
    }

    /// The pool width (OS threads a round's draws are fanned over).
    pub fn threads(&self) -> usize {
        self.pool.width()
    }

    /// The engine's worker pool (for stats, or to share with other
    /// components via [`Engine::with_pool`]).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Runs `job` against `network`, layering a shared
    /// [`CachedNetwork`] over it, and merges every walker's output.
    ///
    /// Errors other than per-walker budget exhaustion (which ends that
    /// walker normally) abort the job and are returned — deterministically,
    /// the fatal error of the lowest-numbered failing walker.
    pub fn run<N: ThreadedNetwork>(&self, network: &N, job: &SampleJob) -> Result<JobReport> {
        self.run_observed(network, job, &mut NoopObserver)
    }

    /// Like [`run`](Self::run), with job-level hooks: `observer` receives
    /// every accepted sample and a consistent progress snapshot per round,
    /// and can stop the job at the next round boundary by returning `true`
    /// from [`cancel_requested`](EngineObserver::cancel_requested) — the
    /// partial report then comes back with
    /// [`cancelled`](JobReport::cancelled) set.
    pub fn run_observed<N: ThreadedNetwork>(
        &self,
        network: &N,
        job: &SampleJob,
        observer: &mut dyn EngineObserver,
    ) -> Result<JobReport> {
        let started = Instant::now();
        let cache = CachedNetwork::new(network);
        let threads = self.pool.width().min(job.walkers.max(1));
        let mut driver = JobDriver::new(&cache, job);
        let mut cancelled = false;
        while !driver.is_done() && !driver.poisoned() {
            if observer.cancel_requested() {
                cancelled = true;
                break;
            }
            driver.step_round(&self.pool);
            driver.drain_new_samples(|walker, record| observer.on_sample(walker, record));
            observer.on_round(&RoundProgress {
                rounds: driver.rounds(),
                live_walkers: driver.live_walkers(),
                samples: driver.samples_collected(),
                requested: driver.requested(),
                budget_consumed: driver.budget_consumed(),
                pool: wnw_access::SocialNetwork::query_stats(&cache),
            });
        }

        let (walkers, panic_payload) = driver.finish();
        // A contained walker panic surfaces as the caller's panic — the one
        // of the lowest-numbered walker, for determinism.
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        // A fatal (non-budget) error in any walker fails the job.
        for report in &walkers {
            if let Some(err) = &report.fatal {
                return Err(err.clone());
            }
        }

        let samples = walkers
            .iter()
            .flat_map(|w| w.samples.iter().copied())
            .collect();
        let degraded = walkers.iter().any(|w| w.degraded.is_some());
        Ok(JobReport {
            samples,
            walkers,
            pool_stats: wnw_access::SocialNetwork::query_stats(&cache),
            elapsed: started.elapsed(),
            threads,
            cancelled,
            degraded,
        })
    }
}
