//! Cross-job walk-history reuse: the engine-side integration of the
//! service-scoped [`HistoryStore`](wnw_core::HistoryStore).
//!
//! Within a job, walkers already cooperate through a job-private
//! [`SharedWalkHistory`](wnw_core::SharedWalkHistory) (see
//! [`HistoryMode`]). This module extends the lever
//! *across* jobs, in the spirit of *Leveraging History for Faster Sampling
//! of Online Social Networks* (Zhou et al.): a [`HistoryPolicy`] chosen per
//! request decides whether a job reads the walks completed prior jobs
//! published, and whether it publishes its own at reap.
//!
//! The determinism contract is layered:
//!
//! * [`HistoryPolicy::Isolated`] (the default) touches nothing — a
//!   request's sample multiset stays thread-count- and co-load-invariant
//!   exactly as before;
//! * under the shared policies, a job snapshots the store **once, at
//!   admission** ([`FrozenHistory`](wnw_core::FrozenHistory) — the
//!   snapshot-on-admit epoch rule), so its results are a pure function of
//!   (job, snapshot): deterministic given an admission order, still
//!   independent of thread count and co-load *between* publications.
//!
//! Reused counts are weighted by a
//! [`ReuseCorrection`](wnw_core::ReuseCorrection); the importance-weighted
//! backward estimator stays unbiased under any such reweighting because the
//! selection distribution keeps full support (its ε floor).

use wnw_core::history::HistoryKey;
use wnw_graph::NodeId;

use crate::job::{HistoryMode, SampleJob};

/// How a request's walk history relates to other jobs', decided at
/// admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryPolicy {
    /// No cross-job coupling (the default): history is cooperative only
    /// *within* the job, never read from or published to the store. Keeps
    /// the per-request multiset invariant under thread count and co-load.
    #[default]
    Isolated,
    /// Read the store's snapshot at admission, publish nothing: the job
    /// profits from prior jobs' walks without extending the store.
    SharedReadOnly,
    /// Read the store's snapshot at admission *and* publish the job's own
    /// merged walks when it is reaped (terminal for any reason — a
    /// cancelled job's partial history is still evidence).
    SharedPublish,
}

impl HistoryPolicy {
    /// Whether jobs under this policy read a store snapshot at admission.
    pub fn reads(&self) -> bool {
        !matches!(self, HistoryPolicy::Isolated)
    }

    /// Whether jobs under this policy publish their walks at reap.
    pub fn publishes(&self) -> bool {
        matches!(self, HistoryPolicy::SharedPublish)
    }

    /// The wire/display label.
    pub fn label(&self) -> &'static str {
        match self {
            HistoryPolicy::Isolated => "isolated",
            HistoryPolicy::SharedReadOnly => "shared_read",
            HistoryPolicy::SharedPublish => "shared_publish",
        }
    }
}

/// The store key a job's walk history lives under, or `None` when the job
/// cannot exchange history at all: only cooperative WALK-ESTIMATE jobs
/// record into a job-shared accumulator (baselines and independent-history
/// jobs keep walker-private histories the driver cannot export), and
/// histories are only exchangeable between walks of the same design from
/// the same starting node.
pub fn history_key_of(start: NodeId, job: &SampleJob) -> Option<HistoryKey> {
    (job.history == HistoryMode::Cooperative && job.spec.uses_shared_history()).then(|| {
        HistoryKey {
            start,
            kind: job.spec.input_kind(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_mcmc::RandomWalkKind;

    #[test]
    fn policy_flags_and_labels() {
        assert_eq!(HistoryPolicy::default(), HistoryPolicy::Isolated);
        assert!(!HistoryPolicy::Isolated.reads());
        assert!(!HistoryPolicy::Isolated.publishes());
        assert!(HistoryPolicy::SharedReadOnly.reads());
        assert!(!HistoryPolicy::SharedReadOnly.publishes());
        assert!(HistoryPolicy::SharedPublish.reads());
        assert!(HistoryPolicy::SharedPublish.publishes());
        assert_eq!(HistoryPolicy::Isolated.label(), "isolated");
        assert_eq!(HistoryPolicy::SharedReadOnly.label(), "shared_read");
        assert_eq!(HistoryPolicy::SharedPublish.label(), "shared_publish");
    }

    #[test]
    fn only_cooperative_walk_estimate_jobs_have_a_key() {
        let start = NodeId(3);
        let we = SampleJob::walk_estimate(RandomWalkKind::MetropolisHastings, 5, 1);
        let key = history_key_of(start, &we).expect("cooperative WE job");
        assert_eq!(key.start, start);
        assert_eq!(key.kind, RandomWalkKind::MetropolisHastings);
        let independent = we.clone().with_history(HistoryMode::Independent);
        assert!(history_key_of(start, &independent).is_none());
        let baseline = SampleJob::baseline(RandomWalkKind::Simple, 5, 1);
        assert!(history_key_of(start, &baseline).is_none());
    }
}
