//! Results of an engine run: merged samples plus per-walker and pool-level
//! query accounting.

use std::time::Duration;
use wnw_access::counter::QueryStats;
use wnw_access::AccessError;
use wnw_graph::NodeId;
use wnw_mcmc::sampler::SampleRecord;

/// What one virtual walker produced.
#[derive(Debug, Clone)]
pub struct WalkerReport {
    /// The walker's id (also its RNG stream index).
    pub walker: usize,
    /// Samples in the order the walker produced them. The `query_cost`
    /// recorded in each sample is the walker's *own* metered cost at that
    /// moment.
    pub samples: Vec<SampleRecord>,
    /// The walker's own query counters.
    pub stats: QueryStats,
    /// Whether the walker stopped because its budget share ran out.
    pub budget_exhausted: bool,
    /// The degradation that stopped this walker, if any: a transient fault,
    /// exhausted retries, or an open circuit breaker (see
    /// [`AccessError::is_degradation`]). Treated like budget exhaustion —
    /// the walker ends, its samples are kept, and the job completes as a
    /// degraded partial instead of failing.
    pub degraded: Option<AccessError>,
    /// A non-budget access error that stopped the walker, if any. A job
    /// whose walkers report one fails as a whole.
    pub fatal: Option<AccessError>,
}

/// The merged result of a [`SampleJob`](crate::SampleJob).
#[derive(Debug, Clone)]
pub struct JobReport {
    /// All accepted samples, concatenated in walker order (walker 0's
    /// samples first). Deterministic for a fixed job, at any thread count.
    pub samples: Vec<SampleRecord>,
    /// Per-walker breakdown, indexed by walker id.
    pub walkers: Vec<WalkerReport>,
    /// The shared cache's counters: `unique_nodes` is the pool's true query
    /// cost (each node charged once no matter how many walkers touched it),
    /// `cache_hits` is how often one walker rode on another's queries.
    pub pool_stats: QueryStats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// OS threads the engine actually used.
    pub threads: usize,
    /// Whether the job was stopped early by a cooperative cancellation
    /// request (see
    /// [`EngineObserver::cancel_requested`](crate::EngineObserver::cancel_requested)).
    /// Samples accepted before the stop are kept.
    pub cancelled: bool,
    /// Whether any walker was stopped by a degradation (transient fault,
    /// exhausted retries, open breaker) rather than finishing cleanly. The
    /// samples collected before the fault are kept — the job is a
    /// *degraded partial*, not a failure.
    pub degraded: bool,
}

impl JobReport {
    /// The sampled node ids, in [`samples`](Self::samples) order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.samples.iter().map(|s| s.node).collect()
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The pool's query cost (the paper's measure): distinct nodes fetched
    /// from the underlying network by *anyone*.
    pub fn query_cost(&self) -> u64 {
        self.pool_stats.unique_nodes
    }

    /// Sum of the walkers' own query costs — what the same walkers would
    /// have paid without the shared cache. The difference to
    /// [`query_cost`](Self::query_cost) is the saving from cache sharing.
    pub fn uncached_query_cost(&self) -> u64 {
        self.walkers.iter().map(|w| w.stats.unique_nodes).sum()
    }

    /// Whether any walker exhausted its budget share.
    pub fn budget_exhausted(&self) -> bool {
        self.walkers.iter().any(|w| w.budget_exhausted)
    }

    /// Number of walkers stopped by a degradation (transient fault,
    /// exhausted retries, open breaker).
    pub fn degraded_walkers(&self) -> usize {
        self.walkers.iter().filter(|w| w.degraded.is_some()).count()
    }

    /// The accepted-sample multiset as a sorted node list — convenient for
    /// comparing runs at different thread counts.
    pub fn sorted_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.nodes();
        nodes.sort_unstable();
        nodes
    }
}
