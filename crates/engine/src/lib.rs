//! # wnw-engine — the concurrent, cache-sharing sampling engine
//!
//! WALK-ESTIMATE is embarrassingly parallel: every accepted sample comes
//! from an independent short forward walk plus backward-walk probability
//! estimation. This crate turns that observation into a production shape —
//! a pool of walkers running concurrently against **one** shared network
//! handle, with the two kinds of state worth sharing made concurrency-safe:
//!
//! * **neighbor lists** — a sharded, lock-striped
//!   [`CachedNetwork`](wnw_access::CachedNetwork) means no walker ever
//!   re-pays the query cost for a node *any* walker has fetched;
//! * **forward-walk history** — a lock-striped
//!   [`SharedWalkHistory`](wnw_core::SharedWalkHistory) lets every walker's
//!   weighted backward sampling (Algorithm 2) profit from everyone's walks.
//!
//! Reproducibility is a first-class requirement: a [`SampleJob`] fans out
//! over *virtual walkers* with per-walker RNG streams (`seed ⊕ walker_id`)
//! and a round-barrier schedule, so for a fixed seed the accepted-sample
//! multiset is identical at any thread count (see [`engine`] for the
//! argument). Query budgets are split across walkers and enforced against
//! per-walker [`MeteredNetwork`](wnw_access::MeteredNetwork) views for the
//! same reason.
//!
//! ```
//! use wnw_access::SimulatedOsn;
//! use wnw_engine::{Engine, SampleJob};
//! use wnw_graph::generators::random::barabasi_albert;
//! use wnw_mcmc::RandomWalkKind;
//!
//! let osn = SimulatedOsn::new(barabasi_albert(500, 3, 7).unwrap());
//! let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 24, 42)
//!     .with_walkers(4)
//!     .with_diameter_estimate(5);
//! let report = Engine::with_threads(2).run(&osn, &job).unwrap();
//! assert_eq!(report.len(), 24);
//! // The pool's query cost counts each node once, however many walkers
//! // touched it.
//! assert!(report.query_cost() <= report.uncached_query_cost());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod engine;
pub mod job;
pub mod observer;
pub mod parallel;
pub mod report;
pub mod reuse;

pub use driver::JobDriver;
pub use engine::Engine;
pub use job::{HistoryMode, SampleJob, SamplerSpec};
pub use observer::{EngineObserver, NoopObserver, RoundProgress, TelemetryObserver};
pub use parallel::scatter_map;
pub use report::{JobReport, WalkerReport};
pub use reuse::{history_key_of, HistoryPolicy};
// The cross-job history-store types, re-exported so service/gateway code can
// name them without depending on `wnw-core` directly.
pub use wnw_core::history::{
    FrozenHistory, HistoryKey, HistoryStore, HistoryStoreStats, ReuseCorrection,
};
// Round execution runs on the persistent pool of `wnw-runtime`; re-exported
// so engine users need not name that crate.
pub use wnw_runtime::{PoolStats, WorkerPool};

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_access::SimulatedOsn;
    use wnw_access::SocialNetwork;
    use wnw_graph::generators::random::barabasi_albert;
    use wnw_mcmc::RandomWalkKind;

    fn osn(n: usize, seed: u64) -> SimulatedOsn {
        SimulatedOsn::new(barabasi_albert(n, 3, seed).unwrap())
    }

    #[test]
    fn collects_requested_samples_across_walkers() {
        let osn = osn(300, 1);
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 22, 5)
            .with_walkers(5)
            .with_diameter_estimate(4);
        let report = Engine::with_threads(2).run(&osn, &job).unwrap();
        assert_eq!(report.len(), 22);
        assert_eq!(report.walkers.len(), 5);
        let per_walker: Vec<usize> = report.walkers.iter().map(|w| w.samples.len()).collect();
        assert_eq!(per_walker, vec![5, 5, 4, 4, 4]);
        assert!(report.query_cost() > 0);
        assert!(!report.budget_exhausted());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let osn = osn(400, 3);
        let job = SampleJob::walk_estimate(RandomWalkKind::MetropolisHastings, 30, 99)
            .with_walkers(6)
            .with_diameter_estimate(4);
        let runs: Vec<JobReport> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                osn.reset_counters();
                Engine::with_threads(t).run(&osn, &job).unwrap()
            })
            .collect();
        // Identical per-walker sample sequences — stronger than multiset
        // equality.
        for later in &runs[1..] {
            for (a, b) in runs[0].walkers.iter().zip(&later.walkers) {
                assert_eq!(a.samples, b.samples, "walker {} diverged", a.walker);
                assert_eq!(a.stats, b.stats, "walker {} stats diverged", a.walker);
            }
            assert_eq!(runs[0].sorted_nodes(), later.sorted_nodes());
            assert_eq!(
                runs[0].pool_stats.unique_nodes,
                later.pool_stats.unique_nodes
            );
        }
    }

    #[test]
    fn cooperative_history_is_deterministic_too() {
        // Same check, explicitly on the cooperative (shared-history) path
        // with the full WE variant, which reads the shared snapshot.
        let osn = osn(250, 11);
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 18, 7)
            .with_walkers(3)
            .with_history(HistoryMode::Cooperative)
            .with_diameter_estimate(4);
        osn.reset_counters();
        let one = Engine::with_threads(1).run(&osn, &job).unwrap();
        osn.reset_counters();
        let many = Engine::with_threads(8).run(&osn, &job).unwrap();
        assert_eq!(one.nodes(), many.nodes());
    }

    #[test]
    fn independent_mode_matches_sequential_sampler() {
        // One walker, independent history: the engine must reproduce the
        // plain single-threaded WalkEstimateSampler exactly.
        use wnw_core::{WalkEstimateConfig, WalkEstimateSampler};
        use wnw_mcmc::collect_samples;

        let osn = osn(300, 17);
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 12, 123)
            .with_walkers(1)
            .with_history(HistoryMode::Independent)
            .with_diameter_estimate(4);
        let report = Engine::with_threads(4).run(&osn, &job).unwrap();

        let reference_osn = osn.clone();
        reference_osn.reset_counters();
        let mut reference = WalkEstimateSampler::new(
            reference_osn,
            RandomWalkKind::Simple,
            WalkEstimateConfig::default(),
            job.seed_of(0),
        )
        .with_diameter_estimate(4);
        let run = collect_samples(&mut reference, 12).unwrap();
        assert_eq!(report.nodes(), run.nodes());
    }

    #[test]
    fn budget_splits_and_stops_walkers() {
        let osn = osn(600, 23);
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 10_000, 31)
            .with_walkers(4)
            .with_budget(240)
            .with_diameter_estimate(4);
        let report = Engine::with_threads(2).run(&osn, &job).unwrap();
        assert!(report.budget_exhausted());
        assert!(report.len() < 10_000);
        for w in &report.walkers {
            assert!(
                w.stats.unique_nodes <= 60,
                "walker {} overspent: {:?}",
                w.walker,
                w.stats
            );
        }
        // Determinism also holds for budgeted jobs.
        osn.reset_counters();
        let again = Engine::with_threads(8).run(&osn, &job).unwrap();
        assert_eq!(report.nodes(), again.nodes());
    }

    #[test]
    fn baseline_jobs_run_and_share_the_cache() {
        let osn = osn(300, 29);
        let job = SampleJob::baseline(RandomWalkKind::Simple, 8, 41).with_walkers(4);
        let report = Engine::with_threads(4).run(&osn, &job).unwrap();
        assert_eq!(report.len(), 8);
        // Walkers all start from the same seed node, so the shared cache
        // must have saved someone something.
        assert!(
            report.pool_stats.cache_hits > 0 || report.query_cost() <= report.uncached_query_cost()
        );
    }

    #[test]
    fn deterministic_even_under_randomized_restrictions() {
        // A RandomSubset restriction makes responses depend on how often a
        // node was fetched; with per-node fetch indices (and the cache
        // freezing first responses) the job must still be thread-count
        // invariant.
        use wnw_access::{NeighborRestriction, SimulatedOsn};
        let graph = barabasi_albert(300, 4, 19).unwrap();
        let network = SimulatedOsn::builder(graph)
            .restriction(NeighborRestriction::RandomSubset { k: 3 })
            .build();
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 12, 77)
            .with_walkers(4)
            .with_diameter_estimate(5);
        network.reset_counters();
        let one = Engine::with_threads(1).run(&network, &job).unwrap();
        network.reset_counters();
        let many = Engine::with_threads(8).run(&network, &job).unwrap();
        assert_eq!(one.nodes(), many.nodes());
        assert_eq!(one.pool_stats.unique_nodes, many.pool_stats.unique_nodes);
    }

    #[test]
    fn walker_panic_propagates_instead_of_deadlocking() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use wnw_access::counter::QueryStats;
        use wnw_access::{Result, SocialNetwork};
        use wnw_graph::NodeId;

        /// Answers normally until the fuse burns, then panics on every call.
        #[derive(Debug)]
        struct ExplodingNetwork {
            inner: SimulatedOsn,
            calls: AtomicU64,
            fuse: u64,
        }
        impl SocialNetwork for ExplodingNetwork {
            fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>> {
                if self.calls.fetch_add(1, Ordering::Relaxed) >= self.fuse {
                    panic!("network exploded");
                }
                self.inner.neighbors(v)
            }
            fn attribute(&self, name: &str, v: NodeId) -> Result<f64> {
                self.inner.attribute(name, v)
            }
            fn seed_node(&self) -> NodeId {
                self.inner.seed_node()
            }
            fn query_stats(&self) -> QueryStats {
                self.inner.query_stats()
            }
            fn reset_counters(&self) {
                self.inner.reset_counters()
            }
        }

        let network = ExplodingNetwork {
            inner: osn(200, 31),
            calls: AtomicU64::new(0),
            fuse: 50,
        };
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 40, 3)
            .with_walkers(4)
            .with_diameter_estimate(4);
        // The panic must reach the caller (not deadlock the barrier, not
        // get swallowed into an Ok report).
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Engine::with_threads(4).run(&network, &job);
        }));
        let payload = caught.expect_err("walker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("network exploded"),
            "unexpected payload: {message}"
        );
    }

    #[test]
    fn observer_sees_every_sample_and_monotone_progress() {
        #[derive(Default)]
        struct Recording {
            samples: Vec<(usize, wnw_mcmc::sampler::SampleRecord)>,
            progress: Vec<RoundProgress>,
        }
        impl EngineObserver for Recording {
            fn on_sample(&mut self, walker: usize, record: &wnw_mcmc::sampler::SampleRecord) {
                self.samples.push((walker, *record));
            }
            fn on_round(&mut self, progress: &RoundProgress) {
                self.progress.push(*progress);
            }
        }

        let osn = osn(300, 41);
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 15, 9)
            .with_walkers(4)
            .with_diameter_estimate(4);
        let mut observer = Recording::default();
        let report = Engine::with_threads(2)
            .run_observed(&osn, &job, &mut observer)
            .unwrap();
        assert!(!report.cancelled);
        // Every accepted sample was streamed, none twice.
        assert_eq!(observer.samples.len(), report.len());
        let mut streamed: Vec<_> = observer.samples.iter().map(|(_, r)| r.node).collect();
        streamed.sort_unstable();
        assert_eq!(streamed, report.sorted_nodes());
        // Progress snapshots are monotone and end at the report totals.
        for pair in observer.progress.windows(2) {
            assert!(pair[1].samples >= pair[0].samples);
            assert!(pair[1].rounds == pair[0].rounds + 1);
            assert!(pair[1].budget_consumed >= pair[0].budget_consumed);
            assert!(pair[1].pool.unique_nodes >= pair[0].pool.unique_nodes);
        }
        let last = observer.progress.last().unwrap();
        assert_eq!(last.samples, report.len());
        assert_eq!(last.requested, 15);
        assert_eq!(last.live_walkers, 0);
        assert_eq!(last.pool, report.pool_stats);
        assert_eq!(last.budget_consumed, report.uncached_query_cost());
        assert!((0.0..=1.0).contains(&last.cache_hit_rate()));
    }

    #[test]
    fn cancellation_stops_at_a_round_boundary() {
        struct CancelAfter {
            rounds_seen: usize,
            limit: usize,
        }
        impl EngineObserver for CancelAfter {
            fn on_round(&mut self, _progress: &RoundProgress) {
                self.rounds_seen += 1;
            }
            fn cancel_requested(&mut self) -> bool {
                self.rounds_seen >= self.limit
            }
        }

        let osn = osn(300, 43);
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 400, 11)
            .with_walkers(4)
            .with_diameter_estimate(4);
        let mut observer = CancelAfter {
            rounds_seen: 0,
            limit: 2,
        };
        let report = Engine::with_threads(2)
            .run_observed(&osn, &job, &mut observer)
            .unwrap();
        assert!(report.cancelled);
        // 4 walkers × 2 rounds: at most 8 samples landed before the stop,
        // and the partial results are kept.
        assert!(report.len() <= 8, "got {} samples", report.len());
        assert!(!report.is_empty());
        assert_eq!(observer.rounds_seen, 2);
    }

    #[test]
    fn shared_cache_never_costs_more_than_independent_walkers() {
        let osn = osn(500, 37);
        let job = SampleJob::walk_estimate(RandomWalkKind::Simple, 40, 53)
            .with_walkers(8)
            .with_diameter_estimate(4);
        let report = Engine::with_threads(8).run(&osn, &job).unwrap();
        assert!(
            report.query_cost() <= report.uncached_query_cost(),
            "pool cost {} must not exceed sum of walker costs {}",
            report.query_cost(),
            report.uncached_query_cost()
        );
        assert!(
            report.pool_stats.cache_hits > 0,
            "walkers should ride on each other's queries"
        );
    }
}
