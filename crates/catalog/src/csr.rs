//! The flat two-array CSR graph — the canonical large-scale substrate.
//!
//! [`CsrGraph`] stores an immutable, simple, undirected graph as exactly two
//! contiguous arrays: `offsets` (one `u64` per node, plus a sentinel) and
//! `neighbors` (one `u32` per directed edge endpoint, each undirected edge
//! appearing twice). That layout is what every serious graph engine
//! converges on, and for good reason:
//!
//! * `degree(v)` is one subtraction, `neighbors(v)` is one contiguous
//!   slice, and `nth_neighbor(v, i)` is one indexed load — the three
//!   operations a random walk performs millions of times;
//! * there are exactly **two** heap allocations however many nodes the
//!   graph has, versus one `Vec` per node in an adjacency-list layout —
//!   no per-node 24-byte headers, no allocator chunk overhead, no
//!   pointer-chasing into scattered heap pages;
//! * the two arrays serialize to disk as-is, which is what makes the
//!   binary [`format`](crate::format) loader a flat copy instead of a
//!   million tiny reconstructions.
//!
//! The in-memory cost is `8(n+1) + 8E` bytes (with `E` undirected edges);
//! the [per-node-Vec baseline](crate::baseline::AdjListGraph) measured by
//! `benches/graph_substrate.rs` pays well over twice that at scale.

use crate::error::CatalogError;
use wnw_graph::{Graph, GraphBuilder, NodeId};

/// An immutable compressed-sparse-row undirected graph.
///
/// Neighbor lists are sorted by node id, and each undirected edge appears
/// in both endpoints' lists. Construct one with [`CsrGraph::from_graph`],
/// [`CsrGraph::from_sorted_edges`], a [`GraphSpec`](crate::GraphSpec), or by
/// [loading a catalog](crate::format::load).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`;
    /// `offsets.len() == node_count + 1` and `offsets[0] == 0`.
    offsets: Vec<u64>,
    /// Concatenated, per-node-sorted neighbor ids.
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Converts any [`wnw_graph::Graph`] (generator output, parsed edge
    /// list, snapshot) into the flat CSR layout. Attributes are not
    /// carried over — catalogs store topology only.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.edge_count());
        let mut acc = 0u64;
        offsets.push(0);
        for v in g.nodes() {
            let list = g.neighbors(v);
            acc += list.len() as u64;
            offsets.push(acc);
            neighbors.extend(list.iter().map(|u| u.0));
        }
        CsrGraph { offsets, neighbors }
    }

    /// Builds a CSR graph from a deduplicated undirected edge list over
    /// `node_count` nodes. Each edge must appear exactly once, in either
    /// orientation; self-loops and out-of-range endpoints are rejected.
    /// Duplicate edges are *not* detected (they would double the edge).
    pub fn from_sorted_edges(
        node_count: usize,
        edges: &[(u32, u32)],
    ) -> Result<Self, CatalogError> {
        let mut degrees = vec![0u64; node_count];
        for &(u, v) in edges {
            if u as usize >= node_count || v as usize >= node_count {
                return Err(CatalogError::InvalidInput(format!(
                    "edge ({u}, {v}) out of range for {node_count} nodes"
                )));
            }
            if u == v {
                return Err(CatalogError::InvalidInput(format!("self-loop at node {u}")));
            }
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..node_count].to_vec();
        let mut neighbors = vec![0u32; acc as usize];
        for &(u, v) in edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..node_count {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            neighbors[lo..hi].sort_unstable();
        }
        Ok(CsrGraph { offsets, neighbors })
    }

    /// Reassembles a CSR graph from raw arrays (the catalog loader's entry
    /// point), validating every structural invariant so the panic-free
    /// accessors below stay honest on untrusted input:
    ///
    /// * `offsets` is non-empty, starts at 0, and is monotone,
    /// * the final offset equals `neighbors.len()`,
    /// * `neighbors.len()` is even (each undirected edge appears twice),
    /// * every neighbor id is a valid node index.
    pub fn from_parts(offsets: Vec<u64>, neighbors: Vec<u32>) -> Result<Self, CatalogError> {
        let corrupt = |detail: String| Err(CatalogError::Corrupt { detail });
        let Some((&first, rest)) = offsets.split_first() else {
            return corrupt("offsets array is empty".into());
        };
        if first != 0 {
            return corrupt(format!("offsets[0] is {first}, expected 0"));
        }
        let mut prev = 0u64;
        for (i, &o) in rest.iter().enumerate() {
            if o < prev {
                return corrupt(format!(
                    "offsets not monotone at node {}: {prev} > {o}",
                    i + 1
                ));
            }
            prev = o;
        }
        if prev != neighbors.len() as u64 {
            return corrupt(format!(
                "final offset {prev} does not match neighbor array length {}",
                neighbors.len()
            ));
        }
        if !neighbors.len().is_multiple_of(2) {
            return corrupt(format!(
                "neighbor array length {} is odd (each undirected edge must appear twice)",
                neighbors.len()
            ));
        }
        let node_count = offsets.len() - 1;
        if let Some(&bad) = neighbors.iter().find(|&&u| u as usize >= node_count) {
            return corrupt(format!(
                "neighbor id {bad} out of range for {node_count} nodes"
            ));
        }
        Ok(CsrGraph { offsets, neighbors })
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Returns `true` if `v` is a valid node of this graph.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    /// Degree `d(v)` — one subtraction, no pointer chase.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The neighbor list `N(v)` as a borrowed contiguous slice of raw node
    /// ids, sorted ascending. Zero-copy: this is the accessor walk engines
    /// should prefer over materializing an owned list.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The `i`-th neighbor of `v` (sorted order), or `None` if `i` is past
    /// the degree — the O(1) walk-step primitive.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn nth_neighbor(&self, v: NodeId, i: usize) -> Option<NodeId> {
        let base = self.offsets[v.index()] as usize;
        if base + i < self.offsets[v.index() + 1] as usize {
            Some(NodeId(self.neighbors[base + i]))
        } else {
            None
        }
    }

    /// An owned copy of `N(v)` as typed [`NodeId`]s — what the
    /// [`SocialNetwork`](wnw_access::SocialNetwork) contract returns.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn fetch_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbor_slice(v).iter().map(|&u| NodeId(u)).collect()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(NodeId(v as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.node_count() as f64
    }

    /// Resident heap bytes of this graph: the two arrays' capacities plus
    /// two allocator chunk headers ([`ALLOC_CHUNK_OVERHEAD`] each). Used by
    /// the substrate bench's bytes-per-edge comparison.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.neighbors.capacity() * std::mem::size_of::<u32>()
            + 2 * ALLOC_CHUNK_OVERHEAD
    }

    /// The raw offsets array (`node_count + 1` entries) — the catalog
    /// writer's view.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw packed neighbor array (`2|E|` entries) — the catalog
    /// writer's view.
    pub fn neighbor_array(&self) -> &[u32] {
        &self.neighbors
    }

    /// Expands back into a [`wnw_graph::Graph`] (for ground-truth metrics
    /// or interop with the experiment harness). O(E log E): the builder
    /// re-sorts the edge list.
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.node_count(), self.edge_count());
        b.ensure_nodes(self.node_count());
        for v in 0..self.node_count() as u32 {
            for &u in self.neighbor_slice(NodeId(v)) {
                if v < u {
                    b.add_edge(v, u);
                }
            }
        }
        b.build()
    }
}

/// Estimated per-allocation overhead charged by `malloc`-style allocators
/// (chunk header plus alignment rounding) — the honest tax every one of an
/// adjacency list's per-node `Vec`s pays and the two-array CSR pays twice
/// in total. Used by both substrates' `resident_bytes` models.
pub const ALLOC_CHUNK_OVERHEAD: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::classic::cycle;
    use wnw_graph::generators::random::barabasi_albert;

    fn path4() -> CsrGraph {
        CsrGraph::from_sorted_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn from_sorted_edges_builds_expected_layout() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbor_slice(NodeId(0)), &[1]);
        assert_eq!(g.neighbor_slice(NodeId(1)), &[0, 2]);
        assert_eq!(g.degree(NodeId(2)), 2);
        assert_eq!(g.nth_neighbor(NodeId(1), 0), Some(NodeId(0)));
        assert_eq!(g.nth_neighbor(NodeId(1), 1), Some(NodeId(2)));
        assert_eq!(g.nth_neighbor(NodeId(1), 2), None);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        assert!(g.contains(NodeId(3)));
        assert!(!g.contains(NodeId(4)));
    }

    #[test]
    fn from_sorted_edges_rejects_bad_input() {
        assert!(matches!(
            CsrGraph::from_sorted_edges(3, &[(0, 3)]),
            Err(CatalogError::InvalidInput(_))
        ));
        assert!(matches!(
            CsrGraph::from_sorted_edges(3, &[(1, 1)]),
            Err(CatalogError::InvalidInput(_))
        ));
    }

    #[test]
    fn from_graph_matches_source_exactly() {
        let src = barabasi_albert(500, 3, 11).unwrap();
        let csr = CsrGraph::from_graph(&src);
        assert_eq!(csr.node_count(), src.node_count());
        assert_eq!(csr.edge_count(), src.edge_count());
        for v in src.nodes() {
            assert_eq!(csr.degree(v), src.degree(v));
            let expected: Vec<u32> = src.neighbors(v).iter().map(|u| u.0).collect();
            assert_eq!(csr.neighbor_slice(v), &expected[..]);
        }
    }

    #[test]
    fn to_graph_roundtrips() {
        let src = barabasi_albert(200, 3, 5).unwrap();
        let back = CsrGraph::from_graph(&src).to_graph();
        assert_eq!(back.node_count(), src.node_count());
        assert_eq!(back.edge_count(), src.edge_count());
        for v in src.nodes() {
            assert_eq!(back.neighbors(v), src.neighbors(v));
        }
    }

    #[test]
    fn from_parts_validates_structure() {
        // Valid: the path graph's own parts.
        let g = path4();
        let rebuilt =
            CsrGraph::from_parts(g.offsets().to_vec(), g.neighbor_array().to_vec()).unwrap();
        assert_eq!(rebuilt, g);

        let corrupt = |offsets: Vec<u64>, neighbors: Vec<u32>| {
            matches!(
                CsrGraph::from_parts(offsets, neighbors),
                Err(CatalogError::Corrupt { .. })
            )
        };
        assert!(corrupt(vec![], vec![]));
        assert!(corrupt(vec![1, 2], vec![0, 0]));
        assert!(corrupt(vec![0, 2, 1], vec![0, 1]));
        assert!(corrupt(vec![0, 4], vec![0, 0]));
        assert!(corrupt(vec![0, 1], vec![0])); // odd neighbor count
        assert!(corrupt(vec![0, 1, 2], vec![0, 7])); // neighbor out of range
    }

    #[test]
    fn empty_graph_degenerates_cleanly() {
        let g = CsrGraph::from_sorted_edges(0, &[]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn fetch_neighbors_copies_typed_ids() {
        let g = CsrGraph::from_graph(&cycle(5));
        assert_eq!(g.fetch_neighbors(NodeId(0)), vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn resident_bytes_counts_both_arrays() {
        let g = path4();
        assert!(g.resident_bytes() >= 5 * 8 + 6 * 4);
    }
}
