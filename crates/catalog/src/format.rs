//! The versioned binary on-disk catalog format (std-only I/O).
//!
//! A catalog file is a [`CsrGraph`] flattened to little-endian bytes with
//! enough integrity metadata to detect truncation, bit rot, and version
//! skew before a single neighbor is trusted:
//!
//! | bytes     | field                                          |
//! |-----------|------------------------------------------------|
//! | 0..8      | magic `b"WNWCATLG"`                            |
//! | 8..12     | format version (`u32` LE, currently 1)         |
//! | 12..20    | node count (`u64` LE)                          |
//! | 20..28    | edge count (`u64` LE, undirected)              |
//! | 28..36    | word-wise FNV-1a64 of the offsets section      |
//! | 36..44    | word-wise FNV-1a64 of the neighbors section    |
//! | 44..52    | byte-wise FNV-1a64 of header bytes 0..44       |
//! | 52..      | offsets: `(node_count + 1) × u64` LE           |
//! | then      | neighbors: `2 × edge_count × u32` LE, then EOF |
//!
//! Section checksums fold one whole element per FNV step (a `u64` per
//! offset, a zero-extended `u32` per neighbor) rather than one byte — an
//! 8× cheaper pass that keeps catalog loads far faster than regeneration.
//!
//! Everything is read through [`CatalogError`] — a damaged file can never
//! panic the loader, and after the checksums pass the arrays still go
//! through [`CsrGraph::from_parts`] so structural invariants hold even
//! against a file whose corruption was itself checksummed.

use crate::csr::CsrGraph;
use crate::error::CatalogError;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// First eight bytes of every catalog file.
pub const MAGIC: [u8; 8] = *b"WNWCATLG";

/// The catalog format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header length in bytes (magic through header checksum).
pub const HEADER_LEN: usize = 52;

/// Bytes converted per chunk when streaming sections to or from disk.
const CHUNK_ELEMS: usize = 8 * 1024;

/// Cap on any single `Vec::with_capacity` taken on a header's word: a
/// lying header can claim 2^60 nodes, and pre-reserving that would abort
/// the process before the truncation check ever runs. Reads past this just
/// grow geometrically.
const MAX_PREALLOC_BYTES: usize = 64 * 1024 * 1024;

/// FNV-1a 64-bit over a byte stream, fed incrementally.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Section checksums fold whole little-endian **words** through the FNV-1a
/// round (xor, multiply) rather than single bytes: one multiply per element
/// keeps the integrity check off the load path's critical nanoseconds at
/// 1M-node scale while still catching any flipped bit in the section.
fn fold_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(Fnv1a::PRIME)
}

fn checksum_u64s(words: &[u64]) -> u64 {
    words
        .iter()
        .fold(Fnv1a::OFFSET_BASIS, |h, &w| fold_word(h, w))
}

fn checksum_u32s(words: &[u32]) -> u64 {
    words
        .iter()
        .fold(Fnv1a::OFFSET_BASIS, |h, &w| fold_word(h, u64::from(w)))
}

/// Serializes `graph` to `writer` in catalog format.
pub fn save_to<W: Write>(graph: &CsrGraph, writer: &mut W) -> Result<(), CatalogError> {
    let offsets = graph.offsets();
    let neighbors = graph.neighbor_array();

    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[12..20].copy_from_slice(&(graph.node_count() as u64).to_le_bytes());
    header[20..28].copy_from_slice(&(graph.edge_count() as u64).to_le_bytes());
    header[28..36].copy_from_slice(&checksum_u64s(offsets).to_le_bytes());
    header[36..44].copy_from_slice(&checksum_u32s(neighbors).to_le_bytes());
    let mut head_sum = Fnv1a::new();
    head_sum.update(&header[0..44]);
    header[44..52].copy_from_slice(&head_sum.finish().to_le_bytes());
    writer.write_all(&header)?;

    let mut buf = Vec::with_capacity(CHUNK_ELEMS * 8);
    for chunk in offsets.chunks(CHUNK_ELEMS) {
        buf.clear();
        for &w in chunk {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    for chunk in neighbors.chunks(CHUNK_ELEMS) {
        buf.clear();
        for &w in chunk {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    writer.flush()?;
    Ok(())
}

/// Serializes `graph` to the file at `path` (created or truncated).
pub fn save(graph: &CsrGraph, path: &Path) -> Result<(), CatalogError> {
    let mut w = BufWriter::new(File::create(path)?);
    save_to(graph, &mut w)
}

/// Total file size in bytes implied by a header's node and edge counts.
fn expected_file_len(node_count: u64, edge_count: u64) -> u64 {
    HEADER_LEN as u64 + (node_count + 1) * 8 + edge_count * 2 * 4
}

/// Reads exactly `buf.len()` bytes, translating a short read into
/// [`CatalogError::Truncated`] with the given expected/consumed totals.
fn read_exact_or_truncated<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    expected: u64,
    consumed: &mut u64,
) -> Result<(), CatalogError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(CatalogError::Truncated {
                    expected,
                    actual: *consumed + filled as u64,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    *consumed += filled as u64;
    Ok(())
}

/// Deserializes a catalog from `reader`, verifying magic, version, all
/// three checksums, exact length, and CSR structural invariants.
pub fn load_from<R: Read>(reader: &mut R) -> Result<CsrGraph, CatalogError> {
    let mut header = [0u8; HEADER_LEN];
    let mut consumed = 0u64;
    read_exact_or_truncated(reader, &mut header, HEADER_LEN as u64, &mut consumed)?;

    let mut magic = [0u8; 8];
    magic.copy_from_slice(&header[0..8]);
    if magic != MAGIC {
        return Err(CatalogError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
    if version != FORMAT_VERSION {
        return Err(CatalogError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut head_sum = Fnv1a::new();
    head_sum.update(&header[0..44]);
    let stored_head = u64::from_le_bytes(header[44..52].try_into().expect("8-byte slice"));
    if head_sum.finish() != stored_head {
        return Err(CatalogError::ChecksumMismatch { section: "header" });
    }

    let node_count = u64::from_le_bytes(header[12..20].try_into().expect("8-byte slice"));
    let edge_count = u64::from_le_bytes(header[20..28].try_into().expect("8-byte slice"));
    let stored_offsets_sum = u64::from_le_bytes(header[28..36].try_into().expect("8-byte slice"));
    let stored_neighbors_sum = u64::from_le_bytes(header[36..44].try_into().expect("8-byte slice"));
    let expected = expected_file_len(node_count, edge_count);

    let offsets_len = node_count + 1;
    let neighbors_len = edge_count * 2;
    let clamp = |elems: u64, width: usize| -> usize {
        let want = elems.saturating_mul(width as u64);
        (want.min(MAX_PREALLOC_BYTES as u64) as usize) / width
    };

    let mut offsets: Vec<u64> = Vec::with_capacity(clamp(offsets_len, 8));
    let mut neighbors: Vec<u32> = Vec::with_capacity(clamp(neighbors_len, 4));
    let mut buf = vec![0u8; CHUNK_ELEMS * 8];
    let mut offsets_sum = Fnv1a::OFFSET_BASIS;
    let mut remaining = offsets_len;
    while remaining > 0 {
        let take = remaining.min(CHUNK_ELEMS as u64) as usize;
        let chunk = &mut buf[..take * 8];
        read_exact_or_truncated(reader, chunk, expected, &mut consumed)?;
        for word in chunk.chunks_exact(8) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
            offsets_sum = fold_word(offsets_sum, w);
            offsets.push(w);
        }
        remaining -= take as u64;
    }
    if offsets_sum != stored_offsets_sum {
        return Err(CatalogError::ChecksumMismatch { section: "offsets" });
    }

    let mut neighbors_sum = Fnv1a::OFFSET_BASIS;
    let mut remaining = neighbors_len;
    while remaining > 0 {
        let take = remaining.min((CHUNK_ELEMS * 2) as u64) as usize;
        let chunk = &mut buf[..take * 4];
        read_exact_or_truncated(reader, chunk, expected, &mut consumed)?;
        for word in chunk.chunks_exact(4) {
            let w = u32::from_le_bytes(word.try_into().expect("4-byte chunk"));
            neighbors_sum = fold_word(neighbors_sum, u64::from(w));
            neighbors.push(w);
        }
        remaining -= take as u64;
    }
    if neighbors_sum != stored_neighbors_sum {
        return Err(CatalogError::ChecksumMismatch {
            section: "neighbors",
        });
    }

    let mut probe = [0u8; 64];
    let extra = loop {
        match reader.read(&mut probe) {
            Ok(0) => break 0,
            Ok(n) => break n as u64,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    };
    if extra > 0 {
        return Err(CatalogError::TrailingBytes { extra });
    }

    CsrGraph::from_parts(offsets, neighbors)
}

/// Loads a catalog from the file at `path`.
pub fn load(path: &Path) -> Result<CsrGraph, CatalogError> {
    let mut r = BufReader::new(File::open(path)?);
    load_from(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::random::barabasi_albert;

    fn sample_csr() -> CsrGraph {
        CsrGraph::from_graph(&barabasi_albert(64, 3, 42).unwrap())
    }

    fn sample_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        save_to(&sample_csr(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample_csr();
        let bytes = sample_bytes();
        assert_eq!(
            bytes.len() as u64,
            expected_file_len(g.node_count() as u64, g.edge_count() as u64)
        );
        let back = load_from(&mut &bytes[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn roundtrip_through_filesystem() {
        let dir = std::env::temp_dir().join(format!("wnwcat-fmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.wnwcat");
        let g = sample_csr();
        save(&g, &path).unwrap();
        assert_eq!(load(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_io() {
        let err = load(Path::new("/nonexistent/dir/none.wnwcat")).unwrap_err();
        assert!(matches!(err, CatalogError::Io(_)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_bytes();
        bytes[0..8].copy_from_slice(b"NOTACATL");
        let err = load_from(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, CatalogError::BadMagic { found } if &found == b"NOTACATL"));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = sample_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal the header checksum so the version check (not the
        // checksum) is what fires.
        let mut sum = Fnv1a::new();
        sum.update(&bytes[0..44]);
        let sealed = sum.finish().to_le_bytes();
        bytes[44..52].copy_from_slice(&sealed);
        let err = load_from(&mut &bytes[..]).unwrap_err();
        assert!(matches!(
            err,
            CatalogError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        ));
    }

    #[test]
    fn tampered_header_fails_its_checksum() {
        let mut bytes = sample_bytes();
        bytes[12] ^= 0x01; // flip a bit in the node count
        let err = load_from(&mut &bytes[..]).unwrap_err();
        assert!(matches!(
            err,
            CatalogError::ChecksumMismatch { section: "header" }
        ));
    }

    #[test]
    fn truncation_is_detected_at_any_cut() {
        let bytes = sample_bytes();
        for cut in [10, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            let err = load_from(&mut &bytes[..cut]).unwrap_err();
            match err {
                CatalogError::Truncated { expected, actual } => {
                    // A cut inside the header reports the header's own
                    // length; after that, the full promised file length.
                    if cut < HEADER_LEN {
                        assert_eq!(expected, HEADER_LEN as u64);
                    } else {
                        assert_eq!(expected, bytes.len() as u64);
                    }
                    assert!(actual <= cut as u64);
                }
                other => panic!("cut {cut}: unexpected error {other}"),
            }
        }
    }

    #[test]
    fn flipped_section_bits_fail_their_checksums() {
        let g = sample_csr();
        let offsets_end = HEADER_LEN + (g.node_count() + 1) * 8;

        let mut bytes = sample_bytes();
        bytes[HEADER_LEN + 4] ^= 0x80;
        let err = load_from(&mut &bytes[..]).unwrap_err();
        assert!(matches!(
            err,
            CatalogError::ChecksumMismatch { section: "offsets" }
        ));

        let mut bytes = sample_bytes();
        bytes[offsets_end + 2] ^= 0x80;
        let err = load_from(&mut &bytes[..]).unwrap_err();
        assert!(matches!(
            err,
            CatalogError::ChecksumMismatch {
                section: "neighbors"
            }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_bytes();
        bytes.extend_from_slice(&[0xAB; 4]);
        let err = load_from(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, CatalogError::TrailingBytes { extra: 4 }));
    }

    #[test]
    fn checksummed_corruption_still_fails_structural_validation() {
        // Craft a file whose checksums are all valid but whose offsets are
        // not monotone — integrity checks pass, from_parts must catch it.
        let offsets: Vec<u64> = vec![0, 2, 1, 4];
        let neighbors: Vec<u32> = vec![1, 2, 0, 0];
        let node_count = (offsets.len() - 1) as u64;
        let edge_count = (neighbors.len() / 2) as u64;

        let mut bytes = Vec::new();
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..20].copy_from_slice(&node_count.to_le_bytes());
        header[20..28].copy_from_slice(&edge_count.to_le_bytes());
        header[28..36].copy_from_slice(&checksum_u64s(&offsets).to_le_bytes());
        header[36..44].copy_from_slice(&checksum_u32s(&neighbors).to_le_bytes());
        let mut sum = Fnv1a::new();
        sum.update(&header[0..44]);
        let sealed = sum.finish().to_le_bytes();
        header[44..52].copy_from_slice(&sealed);
        bytes.extend_from_slice(&header);
        for w in &offsets {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        for w in &neighbors {
            bytes.extend_from_slice(&w.to_le_bytes());
        }

        let err = load_from(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, CatalogError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn lying_huge_header_does_not_preallocate_unbounded() {
        // Header claims 2^56 nodes; the loader must not reserve that much
        // up front, and must report truncation once the stream runs dry.
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..20].copy_from_slice(&(1u64 << 56).to_le_bytes());
        header[20..28].copy_from_slice(&0u64.to_le_bytes());
        header[28..36].copy_from_slice(&0u64.to_le_bytes());
        header[36..44].copy_from_slice(&0u64.to_le_bytes());
        let mut sum = Fnv1a::new();
        sum.update(&header[0..44]);
        let sealed = sum.finish().to_le_bytes();
        header[44..52].copy_from_slice(&sealed);

        let err = load_from(&mut &header[..]).unwrap_err();
        assert!(matches!(err, CatalogError::Truncated { .. }), "{err}");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::from_sorted_edges(0, &[]).unwrap();
        let mut buf = Vec::new();
        save_to(&g, &mut buf).unwrap();
        assert_eq!(load_from(&mut &buf[..]).unwrap(), g);
    }
}
