//! Named, seeded graph specifications and the build-once / load-forever
//! catalog cache.
//!
//! A [`GraphSpec`] fully determines a synthetic graph: model, parameters,
//! node count, and seed. Because generation is seed-deterministic, a spec's
//! catalog file can be built once, cached under [`catalog_dir`], and loaded
//! on every subsequent run — the load is an order of magnitude faster than
//! regeneration at the scales the registry names (see
//! `benches/graph_substrate.rs`). A corrupt, stale, or version-skewed cache
//! file is silently rebuilt, never trusted.

use crate::csr::CsrGraph;
use crate::error::CatalogError;
use crate::format;
use std::path::{Path, PathBuf};
use wnw_graph::generators::random::barabasi_albert;

/// Environment variable overriding the catalog cache directory.
pub const CATALOG_DIR_ENV: &str = "WNW_CATALOG_DIR";

/// The random-graph model a [`GraphSpec`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphModel {
    /// Barabási–Albert preferential attachment with `m` edges per arrival.
    BarabasiAlbert {
        /// Edges attached by each arriving node (also the minimum degree).
        m: usize,
    },
}

/// Where a [`GraphSpec::load_or_build_in`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogSource {
    /// Deserialized from an existing catalog file.
    Loaded,
    /// Generated from the spec (and cached for next time, best-effort).
    Built,
}

/// A fully-determined synthetic graph: name, model, size, and seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    name: String,
    model: GraphModel,
    nodes: usize,
    seed: u64,
}

impl GraphSpec {
    /// A custom spec. Prefer the [registry](Self::builtin) names for
    /// anything benchmarks or tests will want to share.
    pub fn new(name: impl Into<String>, model: GraphModel, nodes: usize, seed: u64) -> Self {
        GraphSpec {
            name: name.into(),
            model,
            nodes,
            seed,
        }
    }

    /// The built-in registry: the standard sizes benchmarks and the
    /// testbed share. Seeds are fixed so every checkout generates
    /// byte-identical catalogs.
    pub fn builtin() -> Vec<GraphSpec> {
        vec![
            GraphSpec::new(
                "ba_10k",
                GraphModel::BarabasiAlbert { m: 3 },
                10_000,
                0x0B17_0001,
            ),
            GraphSpec::new(
                "ba_50k",
                GraphModel::BarabasiAlbert { m: 3 },
                50_000,
                0x0B17_0002,
            ),
            GraphSpec::new(
                "ba_100k",
                GraphModel::BarabasiAlbert { m: 3 },
                100_000,
                0x0B17_0003,
            ),
            GraphSpec::new(
                "ba_1m",
                GraphModel::BarabasiAlbert { m: 3 },
                1_000_000,
                0x0B17_0004,
            ),
        ]
    }

    /// Looks up a registry spec by name (`"ba_100k"`, `"ba_1m"`, ...).
    pub fn named(name: &str) -> Option<GraphSpec> {
        Self::builtin().into_iter().find(|s| s.name == name)
    }

    /// The spec's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The random-graph model and its parameters.
    pub fn model(&self) -> GraphModel {
        self.model
    }

    /// Number of nodes the generated graph will have.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the graph from scratch (no cache involved).
    pub fn build(&self) -> Result<CsrGraph, CatalogError> {
        let g = match self.model {
            GraphModel::BarabasiAlbert { m } => barabasi_albert(self.nodes, m, self.seed)?,
        };
        Ok(CsrGraph::from_graph(&g))
    }

    /// The cache file name for this spec, versioned with the format.
    pub fn file_name(&self) -> String {
        format!("{}-v{}.wnwcat", self.name, format::FORMAT_VERSION)
    }

    /// The cache path for this spec under `dir`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(self.file_name())
    }

    /// Loads this spec's catalog from the default [`catalog_dir`], building
    /// (and caching) it on any miss. See
    /// [`load_or_build_in`](Self::load_or_build_in).
    pub fn load_or_build(&self) -> Result<(CsrGraph, CatalogSource), CatalogError> {
        self.load_or_build_in(&catalog_dir())
    }

    /// Loads this spec's catalog from `dir` if a valid cache file exists,
    /// otherwise generates the graph and caches it (best-effort, atomic
    /// rename; a failed save is not an error — the graph is still
    /// returned). A cache file that is damaged in any way, or whose node
    /// count no longer matches the spec, is rebuilt rather than trusted.
    pub fn load_or_build_in(&self, dir: &Path) -> Result<(CsrGraph, CatalogSource), CatalogError> {
        let path = self.path_in(dir);
        if path.is_file() {
            if let Ok(g) = format::load(&path) {
                if g.node_count() == self.nodes {
                    return Ok((g, CatalogSource::Loaded));
                }
            }
        }
        let g = self.build()?;
        let _ = self.try_cache(&g, dir, &path);
        Ok((g, CatalogSource::Built))
    }

    /// Writes `g` to `path` via a temp file + rename so concurrent readers
    /// never observe a half-written catalog.
    fn try_cache(&self, g: &CsrGraph, dir: &Path, path: &Path) -> Result<(), CatalogError> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".{}.tmp-{}", self.file_name(), std::process::id()));
        format::save(g, &tmp)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            std::fs::remove_file(&tmp).ok();
        })?;
        Ok(())
    }
}

/// The catalog cache directory: `$WNW_CATALOG_DIR` if set and non-empty,
/// else `target/catalogs/` under the workspace root.
pub fn catalog_dir() -> PathBuf {
    match std::env::var_os(CATALOG_DIR_ENV) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/catalogs"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wnwcat-spec-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn registry_names_resolve() {
        for name in ["ba_10k", "ba_50k", "ba_100k", "ba_1m"] {
            let spec = GraphSpec::named(name).unwrap();
            assert_eq!(spec.name(), name);
            assert!(matches!(spec.model(), GraphModel::BarabasiAlbert { m: 3 }));
        }
        assert!(GraphSpec::named("no_such_graph").is_none());
        assert_eq!(GraphSpec::named("ba_1m").unwrap().nodes(), 1_000_000);
    }

    #[test]
    fn build_is_seed_deterministic() {
        let spec = GraphSpec::new("tiny", GraphModel::BarabasiAlbert { m: 2 }, 300, 77);
        assert_eq!(spec.build().unwrap(), spec.build().unwrap());
    }

    #[test]
    fn load_or_build_builds_then_loads() {
        let dir = temp_dir("cache");
        let spec = GraphSpec::new("cache_test", GraphModel::BarabasiAlbert { m: 2 }, 400, 5);

        let (g1, src1) = spec.load_or_build_in(&dir).unwrap();
        assert_eq!(src1, CatalogSource::Built);
        assert!(spec.path_in(&dir).is_file());

        let (g2, src2) = spec.load_or_build_in(&dir).unwrap();
        assert_eq!(src2, CatalogSource::Loaded);
        assert_eq!(g1, g2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_is_rebuilt_not_trusted() {
        let dir = temp_dir("corrupt");
        let spec = GraphSpec::new("corrupt_test", GraphModel::BarabasiAlbert { m: 2 }, 200, 8);
        let (g1, _) = spec.load_or_build_in(&dir).unwrap();

        // Stomp the cache file with garbage.
        std::fs::write(spec.path_in(&dir), b"garbage, not a catalog").unwrap();
        let (g2, src) = spec.load_or_build_in(&dir).unwrap();
        assert_eq!(src, CatalogSource::Built);
        assert_eq!(g1, g2);
        // And the stomped file was repaired in passing.
        let (_, src3) = spec.load_or_build_in(&dir).unwrap();
        assert_eq!(src3, CatalogSource::Loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_node_count_triggers_rebuild() {
        let dir = temp_dir("stale");
        let smaller = GraphSpec::new("stale_test", GraphModel::BarabasiAlbert { m: 2 }, 150, 3);
        let bigger = GraphSpec::new("stale_test", GraphModel::BarabasiAlbert { m: 2 }, 250, 3);
        smaller.load_or_build_in(&dir).unwrap();

        // Same name, different node count: cache must not be trusted.
        let (g, src) = bigger.load_or_build_in(&dir).unwrap();
        assert_eq!(src, CatalogSource::Built);
        assert_eq!(g.node_count(), 250);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_name_carries_format_version() {
        let spec = GraphSpec::named("ba_10k").unwrap();
        assert_eq!(
            spec.file_name(),
            format!("ba_10k-v{}.wnwcat", format::FORMAT_VERSION)
        );
    }
}
