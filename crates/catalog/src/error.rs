//! Typed errors for catalog construction and I/O.
//!
//! Every way a catalog file can disappoint — missing, truncated, the wrong
//! format, the wrong version, bit-rotted, or structurally impossible — maps
//! to its own [`CatalogError`] variant, so callers can distinguish "rebuild
//! the cache" conditions from programming errors. Loading never panics.

use std::fmt;
use std::io;
use wnw_graph::GraphError;

/// Errors produced by CSR construction and catalog serialization.
#[derive(Debug)]
pub enum CatalogError {
    /// An underlying I/O error (file missing, permission denied, ...).
    Io(io::Error),
    /// The file does not start with the catalog magic bytes — it is not a
    /// catalog at all.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file is a catalog, but written by an unknown format version.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The file ended before the sections the header promised.
    Truncated {
        /// Total bytes the header implies the file should hold.
        expected: u64,
        /// Bytes actually available.
        actual: u64,
    },
    /// The file holds data beyond the sections the header describes.
    TrailingBytes {
        /// Number of unexpected extra bytes (at least; counting stops early).
        extra: u64,
    },
    /// A section's checksum does not match its contents (bit rot, torn
    /// write, or manual tampering).
    ChecksumMismatch {
        /// Which section failed: `"header"`, `"offsets"`, or `"neighbors"`.
        section: &'static str,
    },
    /// The sections decoded cleanly but describe an impossible CSR layout
    /// (non-monotone offsets, out-of-range neighbor, mismatched counts).
    Corrupt {
        /// Human-readable description of the structural violation.
        detail: String,
    },
    /// The caller handed a constructor invalid input (edge endpoint out of
    /// range, self-loop, ...). Unlike [`Corrupt`](Self::Corrupt) this is an
    /// API-misuse report, not a file-integrity one.
    InvalidInput(String),
    /// A generator error while building the graph a spec describes.
    Graph(GraphError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog i/o error: {e}"),
            CatalogError::BadMagic { found } => {
                write!(f, "not a catalog file (magic bytes {found:02x?})")
            }
            CatalogError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported catalog version {found} (this build reads version {supported})"
            ),
            CatalogError::Truncated { expected, actual } => write!(
                f,
                "catalog truncated: header promises {expected} bytes, found {actual}"
            ),
            CatalogError::TrailingBytes { extra } => {
                write!(f, "catalog has {extra} unexpected trailing bytes")
            }
            CatalogError::ChecksumMismatch { section } => {
                write!(f, "catalog {section} section failed its checksum")
            }
            CatalogError::Corrupt { detail } => write!(f, "catalog is corrupt: {detail}"),
            CatalogError::InvalidInput(detail) => write!(f, "invalid input: {detail}"),
            CatalogError::Graph(e) => write!(f, "graph generation failed: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Io(e) => Some(e),
            CatalogError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CatalogError {
    fn from(e: io::Error) -> Self {
        CatalogError::Io(e)
    }
}

impl From<GraphError> for CatalogError {
    fn from(e: GraphError) -> Self {
        CatalogError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(CatalogError::BadMagic {
            found: *b"PNG\0\0\0\0\0"
        }
        .to_string()
        .contains("magic"));
        assert!(CatalogError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains('9'));
        assert!(CatalogError::Truncated {
            expected: 100,
            actual: 60
        }
        .to_string()
        .contains("100"));
        assert!(CatalogError::TrailingBytes { extra: 4 }
            .to_string()
            .contains("trailing"));
        assert!(CatalogError::ChecksumMismatch { section: "offsets" }
            .to_string()
            .contains("offsets"));
        assert!(CatalogError::Corrupt {
            detail: "offsets not monotone".into()
        }
        .to_string()
        .contains("monotone"));
        assert!(CatalogError::InvalidInput("self-loop".into())
            .to_string()
            .contains("self-loop"));
    }

    #[test]
    fn io_and_graph_errors_convert_and_source() {
        let e: CatalogError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(e.to_string().contains("missing"));
        assert!(std::error::Error::source(&e).is_some());

        let e: CatalogError = GraphError::InvalidGeneratorParameters("m >= n".into()).into();
        assert!(e.to_string().contains("m >= n"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
