//! The [`SocialNetwork`] adapter that puts a [`CsrGraph`] behind the
//! restricted query interface.
//!
//! [`CatalogNetwork`] is the catalog substrate's answer to
//! [`SimulatedOsn`](wnw_access::SimulatedOsn): the engine, service, gateway,
//! and loadgen testbed all take `N: SocialNetwork`, so swapping the
//! per-node-Vec simulator for a CSR catalog is a one-line change at the
//! composition site — nothing above the access layer notices. Queries are
//! metered by the same [`QueryCounter`] (unique-node cost, budgets,
//! attribute reads) as every other backend.

use crate::csr::CsrGraph;
use std::sync::Arc;
use wnw_access::{AccessError, QueryBudget, QueryCounter, QueryStats, SocialNetwork};
use wnw_graph::NodeId;

/// A metered [`SocialNetwork`] backed by an immutable [`CsrGraph`].
///
/// Cloning is cheap and shares the graph and the query counter, so several
/// samplers can draw from one metered session — the same sharing contract
/// as [`SimulatedOsn`](wnw_access::SimulatedOsn).
#[derive(Debug, Clone)]
pub struct CatalogNetwork {
    graph: Arc<CsrGraph>,
    counter: Arc<QueryCounter>,
    seed_node: NodeId,
}

impl CatalogNetwork {
    /// Wraps `graph` with an unlimited budget and node 0 as the seed.
    pub fn new(graph: CsrGraph) -> Self {
        Self::from_arc(Arc::new(graph))
    }

    /// Wraps an already-shared graph (e.g. one catalog serving several
    /// independently-metered networks) with an unlimited budget.
    pub fn from_arc(graph: Arc<CsrGraph>) -> Self {
        CatalogNetwork {
            graph,
            counter: Arc::new(QueryCounter::unlimited()),
            seed_node: NodeId(0),
        }
    }

    /// Chooses the node returned by [`SocialNetwork::seed_node`].
    pub fn with_seed_node(mut self, v: NodeId) -> Self {
        self.seed_node = v;
        self
    }

    /// Replaces the counter with a fresh one enforcing `budget`.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.counter = Arc::new(QueryCounter::with_budget(budget));
        self
    }

    /// The underlying CSR graph (ground-truth computations only — samplers
    /// must not touch this).
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The shared query counter.
    pub fn counter(&self) -> &QueryCounter {
        &self.counter
    }
}

impl SocialNetwork for CatalogNetwork {
    fn neighbors(&self, v: NodeId) -> wnw_access::Result<Vec<NodeId>> {
        if !self.graph.contains(v) {
            return Err(AccessError::UnknownNode(v));
        }
        self.counter.record_neighbor_query(v)?;
        Ok(self.graph.fetch_neighbors(v))
    }

    fn degree(&self, v: NodeId) -> wnw_access::Result<usize> {
        if !self.graph.contains(v) {
            return Err(AccessError::UnknownNode(v));
        }
        // Same charge as a neighbors() fetch (the interface returns the
        // full list), but CSR answers without materializing it.
        self.counter.record_neighbor_query(v)?;
        Ok(self.graph.degree(v))
    }

    fn attribute(&self, name: &str, v: NodeId) -> wnw_access::Result<f64> {
        if !self.graph.contains(v) {
            return Err(AccessError::UnknownNode(v));
        }
        // Catalogs store topology only; attribute-bearing experiments use
        // SimulatedOsn over a full Graph.
        Err(AccessError::UnknownAttribute(name.to_string()))
    }

    fn seed_node(&self) -> NodeId {
        self.seed_node
    }

    fn query_stats(&self) -> QueryStats {
        self.counter.stats()
    }

    fn reset_counters(&self) {
        self.counter.reset();
    }

    fn node_count_hint(&self) -> Option<usize> {
        Some(self.graph.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::classic::cycle;

    fn cycle_net(n: usize) -> CatalogNetwork {
        CatalogNetwork::new(CsrGraph::from_graph(&cycle(n)))
    }

    #[test]
    fn neighbors_are_metered_with_unique_node_cost() {
        let net = cycle_net(6);
        assert_eq!(
            net.neighbors(NodeId(0)).unwrap(),
            vec![NodeId(1), NodeId(5)]
        );
        assert_eq!(net.query_cost(), 1);
        net.neighbors(NodeId(0)).unwrap();
        assert_eq!(net.query_cost(), 1); // revisit is free
        assert_eq!(net.degree(NodeId(1)).unwrap(), 2);
        assert_eq!(net.query_cost(), 2);
        assert_eq!(net.query_stats().api_calls, 3);
    }

    #[test]
    fn unknown_node_is_rejected_not_panicked() {
        let net = cycle_net(3);
        assert_eq!(
            net.neighbors(NodeId(9)).unwrap_err(),
            AccessError::UnknownNode(NodeId(9))
        );
        assert!(net.degree(NodeId(9)).is_err());
        assert_eq!(net.query_cost(), 0);
    }

    #[test]
    fn budget_is_enforced() {
        let net = cycle_net(10).with_budget(QueryBudget(2));
        net.neighbors(NodeId(0)).unwrap();
        net.neighbors(NodeId(1)).unwrap();
        assert!(matches!(
            net.neighbors(NodeId(2)),
            Err(AccessError::BudgetExhausted { budget: 2 })
        ));
        // Already-paid nodes stay readable.
        assert!(net.neighbors(NodeId(0)).is_ok());
    }

    #[test]
    fn attributes_are_absent_by_contract() {
        let net = cycle_net(4);
        assert!(matches!(
            net.attribute("stars", NodeId(1)),
            Err(AccessError::UnknownAttribute(_))
        ));
        assert!(matches!(
            net.attribute("stars", NodeId(99)),
            Err(AccessError::UnknownNode(_))
        ));
    }

    #[test]
    fn clones_share_graph_and_counter() {
        let net = cycle_net(5).with_seed_node(NodeId(3));
        let other = net.clone();
        net.neighbors(NodeId(0)).unwrap();
        other.neighbors(NodeId(1)).unwrap();
        assert_eq!(net.query_cost(), 2);
        assert_eq!(other.query_cost(), 2);
        assert_eq!(other.seed_node(), NodeId(3));
        assert_eq!(net.node_count_hint(), Some(5));
        net.reset_counters();
        assert_eq!(other.query_cost(), 0);
    }
}
