//! The per-node-`Vec` adjacency baseline the CSR substrate is measured
//! against.
//!
//! [`AdjListGraph`] is the layout `wnw-graph`'s builders accumulate into and
//! the one most quick graph implementations reach for: one heap-allocated
//! `Vec<u32>` per node. It is deliberately kept in-tree — not as a second
//! production substrate, but as the honest yardstick for
//! `benches/graph_substrate.rs`: every per-node `Vec` costs a 24-byte
//! header, an allocator chunk (~16 bytes of bookkeeping), and whatever slack
//! geometric growth left behind, and every neighbor access chases a pointer
//! into a scattered heap page. The bench quantifies exactly how much of that
//! tax [`CsrGraph`] removes.

use crate::csr::{CsrGraph, ALLOC_CHUNK_OVERHEAD};
use wnw_graph::{Graph, NodeId};

/// Heap bytes of a `Vec<T>`'s header on a 64-bit target (ptr, len, cap).
const VEC_HEADER_BYTES: usize = 24;

/// An undirected graph stored as one `Vec<u32>` neighbor list per node —
/// the allocation-heavy layout the CSR substrate replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjListGraph {
    lists: Vec<Vec<u32>>,
}

impl AdjListGraph {
    /// Builds the adjacency-list form of `g` by pushing one edge at a time,
    /// the way an incremental generator or streaming loader would — so the
    /// per-node `Vec`s grow geometrically and carry realistic slack
    /// capacity rather than a hindsight-perfect exact fit.
    pub fn from_graph(g: &Graph) -> Self {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                if v.0 < u.0 {
                    lists[v.index()].push(u.0);
                    lists[u.index()].push(v.0);
                }
            }
        }
        for list in &mut lists {
            list.sort_unstable();
        }
        AdjListGraph { lists }
    }

    /// Builds the adjacency-list form of a CSR graph (same incremental-push
    /// policy as [`from_graph`](Self::from_graph)).
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
        for v in 0..g.node_count() as u32 {
            for &u in g.neighbor_slice(NodeId(v)) {
                if v < u {
                    lists[v as usize].push(u);
                    lists[u as usize].push(v);
                }
            }
        }
        for list in &mut lists {
            list.sort_unstable();
        }
        AdjListGraph { lists }
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.lists.len()
    }

    /// Number of undirected edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.lists.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Degree `d(v)`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.lists[v.index()].len()
    }

    /// The neighbor list `N(v)` as a borrowed slice, sorted ascending.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbor_slice(&self, v: NodeId) -> &[u32] {
        &self.lists[v.index()]
    }

    /// The `i`-th neighbor of `v`, or `None` past the degree.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn nth_neighbor(&self, v: NodeId, i: usize) -> Option<NodeId> {
        self.lists[v.index()].get(i).map(|&u| NodeId(u))
    }

    /// An owned copy of `N(v)` as typed [`NodeId`]s — the
    /// [`SocialNetwork`](wnw_access::SocialNetwork) contract's return shape
    /// and the baseline query path the substrate bench measures.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn fetch_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.lists[v.index()].iter().map(|&u| NodeId(u)).collect()
    }

    /// Resident heap bytes under the documented allocation model: the
    /// outer `Vec`'s header, chunk overhead, and capacity, plus — per
    /// node — a 24-byte inner-`Vec` header (stored inline in the outer
    /// array), the inner capacity in bytes, and one
    /// [`ALLOC_CHUNK_OVERHEAD`] per non-empty list. This is the number the
    /// substrate bench divides by `|E|` to get bytes/edge.
    pub fn resident_bytes(&self) -> usize {
        let outer =
            VEC_HEADER_BYTES + ALLOC_CHUNK_OVERHEAD + self.lists.capacity() * VEC_HEADER_BYTES;
        let inner: usize = self
            .lists
            .iter()
            .map(|l| {
                if l.capacity() == 0 {
                    0
                } else {
                    l.capacity() * std::mem::size_of::<u32>() + ALLOC_CHUNK_OVERHEAD
                }
            })
            .sum();
        outer + inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnw_graph::generators::random::barabasi_albert;

    #[test]
    fn matches_source_graph_topology() {
        let src = barabasi_albert(300, 3, 7).unwrap();
        let adj = AdjListGraph::from_graph(&src);
        assert_eq!(adj.node_count(), src.node_count());
        assert_eq!(adj.edge_count(), src.edge_count());
        for v in src.nodes() {
            assert_eq!(adj.degree(v), src.degree(v));
            let expected: Vec<u32> = src.neighbors(v).iter().map(|u| u.0).collect();
            assert_eq!(adj.neighbor_slice(v), &expected[..]);
        }
    }

    #[test]
    fn from_csr_and_from_graph_agree() {
        let src = barabasi_albert(200, 2, 9).unwrap();
        let csr = CsrGraph::from_graph(&src);
        assert_eq!(AdjListGraph::from_csr(&csr), AdjListGraph::from_graph(&src));
    }

    #[test]
    fn accessors_behave() {
        let src = barabasi_albert(50, 2, 1).unwrap();
        let adj = AdjListGraph::from_graph(&src);
        let v = NodeId(10);
        assert_eq!(
            adj.nth_neighbor(v, 0),
            Some(NodeId(adj.neighbor_slice(v)[0]))
        );
        assert_eq!(adj.nth_neighbor(v, adj.degree(v)), None);
        let owned = adj.fetch_neighbors(v);
        assert_eq!(owned.len(), adj.degree(v));
    }

    #[test]
    fn resident_bytes_exceeds_csr_at_scale() {
        let src = barabasi_albert(5_000, 3, 3).unwrap();
        let adj = AdjListGraph::from_graph(&src);
        let csr = CsrGraph::from_graph(&src);
        // The whole point of the substrate: per-node Vecs pay headers,
        // chunk overhead, and growth slack that the two-array CSR doesn't.
        assert!(adj.resident_bytes() > 2 * csr.resident_bytes());
    }
}
