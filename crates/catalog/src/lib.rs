//! # wnw-catalog
//!
//! The large-scale graph substrate for the *"Walk, Not Wait"* (Nazi et al.,
//! VLDB 2015) reproduction: an immutable CSR graph, a versioned binary
//! on-disk catalog format, and a registry of named seeded graphs that are
//! generated once and loaded per run.
//!
//! The ROADMAP's north star is millions of users; per-node `Vec` adjacency
//! stops being honest long before that, because allocator headers, chunk
//! overhead, and pointer-chasing dominate both memory and query latency.
//! This crate supplies:
//!
//! * [`CsrGraph`] — the flat two-array compressed-sparse-row graph
//!   (`offsets: Vec<u64>`, `neighbors: Vec<u32>`), with O(1)
//!   [`degree`](CsrGraph::degree), zero-copy
//!   [`neighbor_slice`](CsrGraph::neighbor_slice), and the
//!   [`nth_neighbor`](CsrGraph::nth_neighbor) walk-step primitive; built
//!   from sorted edge lists or any [`wnw_graph`] generator output;
//! * [`mod@format`] — the `WNWCATLG` binary catalog format (magic, versioned
//!   header, FNV-1a-checksummed little-endian sections, std-only I/O) with
//!   [`save`](format::save)/[`load`](format::load); every way a file can be
//!   damaged maps to a typed [`CatalogError`], never a panic;
//! * [`GraphSpec`] — named, seeded graph specifications (`ba_100k`,
//!   `ba_1m`, ...) with a build-once cache under `target/catalogs/` (or
//!   `$WNW_CATALOG_DIR`), so large graphs are loaded in milliseconds
//!   instead of regenerated per run;
//! * [`CatalogNetwork`] — a metered
//!   [`SocialNetwork`](wnw_access::SocialNetwork) adapter, so the engine,
//!   service, gateway, and loadgen testbed run on a catalog unchanged;
//! * [`AdjListGraph`] — the per-node-`Vec` baseline kept in-tree as the
//!   yardstick for `benches/graph_substrate.rs`.
//!
//! # Quick example
//!
//! ```
//! use wnw_catalog::{CatalogNetwork, CsrGraph, GraphSpec, GraphModel};
//! use wnw_access::SocialNetwork;
//! use wnw_graph::NodeId;
//!
//! let spec = GraphSpec::new("demo", GraphModel::BarabasiAlbert { m: 2 }, 500, 42);
//! let csr = spec.build().unwrap();
//! assert_eq!(csr.node_count(), 500);
//!
//! let net = CatalogNetwork::new(csr);
//! let neighbors = net.neighbors(NodeId(0)).unwrap();
//! assert!(!neighbors.is_empty());
//! assert_eq!(net.query_cost(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod baseline;
pub mod csr;
pub mod error;
pub mod format;
pub mod spec;

pub use backend::CatalogNetwork;
pub use baseline::AdjListGraph;
pub use csr::CsrGraph;
pub use error::CatalogError;
pub use spec::{catalog_dir, CatalogSource, GraphModel, GraphSpec, CATALOG_DIR_ENV};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CatalogError>;
