//! The [`WorkerPool`] implementation: parked workers, a shared round queue,
//! and the completion barrier.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One unit of round work: a closure run exactly once, on whichever lane
/// (worker or caller) claims it first.
pub type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Point-in-time counters describing a pool's lifetime so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads spawned at pool startup (`width - 1`). Constant for
    /// the pool's whole life — the zero-spawn guarantee is that this never
    /// grows, however many rounds run.
    pub workers: u64,
    /// Rounds fanned out over the workers (two or more tasks on a pool of
    /// width ≥ 2).
    pub rounds_dispatched: u64,
    /// Rounds executed entirely inline on the calling thread — single-task
    /// rounds (1-walker jobs, jobs wound down to their last live walker)
    /// and every round of a width-1 pool. These pay no synchronization at
    /// all.
    pub spawnless_rounds: u64,
    /// Times a parked worker woke up and found round work (at most
    /// `workers` per dispatched round; fewer when the caller drains the
    /// queue before a worker gets scheduled).
    pub worker_wakeups: u64,
}

/// The queue one round's tasks are claimed from, plus the barrier state.
struct RoundQueue {
    /// Bumped once per dispatched round; lets a worker count its wakeup
    /// once per round even when it claims several tasks.
    epoch: u64,
    /// This round's tasks; a claimed slot is `None`.
    tasks: Vec<Option<Task<'static>>>,
    /// Next unclaimed index.
    next: usize,
    /// Tasks not yet *finished* (claimed-but-running or unclaimed).
    pending: usize,
    /// Payload of the lowest-indexed panicking task of the round.
    panic: Option<(usize, Box<dyn Any + Send>)>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<RoundQueue>,
    /// Workers park here between rounds.
    work_ready: Condvar,
    /// The submitting caller parks here until `pending == 0`.
    round_done: Condvar,
    rounds_dispatched: AtomicU64,
    spawnless_rounds: AtomicU64,
    worker_wakeups: AtomicU64,
}

/// Ignore lock poisoning: the queue's invariants are maintained under the
/// lock only by panic-free bookkeeping (tasks themselves run *outside* the
/// lock, under `catch_unwind`), so a poisoned mutex still holds consistent
/// state. This matches the poison-robust locking style used across the
/// workspace.
fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// A persistent pool of parked worker threads executing batches of
/// independent tasks with a **round barrier**: [`run_round`] /
/// [`round`](WorkerPool::round) return only after every task of the batch
/// has finished. See the [crate docs](crate) for the full model.
///
/// A pool of `width` executes up to `width` tasks concurrently: `width - 1`
/// parked workers plus the calling thread, which participates in its own
/// rounds instead of sleeping. Concurrent *dispatched* rounds from
/// different threads are serialized behind a gate — the shared task queue
/// only ever holds one round. Inline fast-path rounds (single task, or a
/// width-1 pool) run entirely on their caller and skip the gate, so they
/// may overlap a dispatched round in wall-clock time; since every task
/// only touches the data it is handed, this is invisible to results.
/// Tasks must not submit rounds to the pool they run on (a nested
/// dispatched round would deadlock behind its own caller); run nested work
/// on a separate (typically width-1) pool, as the experiment harness does
/// for pooled repetitions.
///
/// [`run_round`]: WorkerPool::run_round
pub struct WorkerPool {
    shared: Arc<Shared>,
    width: usize,
    workers: Vec<JoinHandle<()>>,
    /// Serializes whole dispatched rounds across concurrent callers.
    round_gate: Mutex<()>,
}

impl WorkerPool {
    /// Builds a pool of `width` lanes (clamped to at least 1), spawning
    /// `width - 1` worker threads **now** — the only spawns the pool ever
    /// performs. A width-1 pool spawns nothing and runs every round inline.
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(RoundQueue {
                epoch: 0,
                tasks: Vec::new(),
                next: 0,
                pending: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            round_done: Condvar::new(),
            rounds_dispatched: AtomicU64::new(0),
            spawnless_rounds: AtomicU64::new(0),
            worker_wakeups: AtomicU64::new(0),
        });
        let workers = (1..width)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wnw-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            width,
            workers,
            round_gate: Mutex::new(()),
        }
    }

    /// A pool as wide as the available hardware parallelism.
    pub fn with_available_parallelism() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The pool's lane count (worker threads + the participating caller).
    pub fn width(&self) -> usize {
        self.width
    }

    /// A snapshot of the pool's counters (lock-free reads).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers.len() as u64,
            rounds_dispatched: self.shared.rounds_dispatched.load(Ordering::Relaxed),
            spawnless_rounds: self.shared.spawnless_rounds.load(Ordering::Relaxed),
            worker_wakeups: self.shared.worker_wakeups.load(Ordering::Relaxed),
        }
    }

    /// Runs one round: applies `f` to every item, fanned over the pool's
    /// lanes in contiguous chunks, returning only when all items are done
    /// (the round barrier). Which lane processes which chunk is invisible to
    /// the result — `f` only ever touches the item it is handed.
    ///
    /// Single-item batches and width-1 pools run inline on the caller with
    /// no synchronization (the spawnless fast path). If `f` panics, the
    /// panic of the lowest-indexed item propagates to the caller — after
    /// the barrier on the dispatched path, immediately (skipping later
    /// items) on the inline path.
    pub fn round<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        if items.is_empty() {
            return;
        }
        if self.width == 1 || items.len() == 1 {
            self.shared.spawnless_rounds.fetch_add(1, Ordering::Relaxed);
            for item in items {
                f(item);
            }
            return;
        }
        let lanes = self.width.min(items.len());
        let per_lane = items.len().div_ceil(lanes);
        let f = &f;
        let tasks: Vec<Task<'_>> = items
            .chunks_mut(per_lane)
            .map(|chunk| {
                Box::new(move || {
                    for item in chunk {
                        f(item);
                    }
                }) as Task<'_>
            })
            .collect();
        self.dispatch(tasks);
    }

    /// Runs one round of heterogeneous tasks. Same barrier, fast path, and
    /// panic semantics as [`round`](Self::round), but each task is its own
    /// closure — used when the batch is not a uniform map over a slice.
    pub fn run_round<'env>(&self, tasks: Vec<Task<'env>>) {
        if tasks.is_empty() {
            return;
        }
        if self.width == 1 || tasks.len() == 1 {
            self.shared.spawnless_rounds.fetch_add(1, Ordering::Relaxed);
            for task in tasks {
                task();
            }
            return;
        }
        self.dispatch(tasks);
    }

    /// Fans `tasks` over the workers and the calling thread, blocking until
    /// every task has run (and resuming the lowest-indexed panic, if any).
    fn dispatch<'env>(&self, tasks: Vec<Task<'env>>) {
        debug_assert!(self.width > 1 && tasks.len() > 1);
        // One dispatched round at a time: the queue below is single-round
        // state, and the barrier must see only its own tasks.
        let _gate = lock(&self.round_gate);
        // SAFETY-critical invariant: the erased tasks must not outlive this
        // call. `dispatch` returns only after `pending == 0`, i.e. every
        // task has been executed and dropped — there is no early return
        // between enqueue and the barrier wait, and the waits themselves
        // cannot fail (lock poisoning is absorbed by `lock`/`wait`).
        let erased: Vec<Option<Task<'static>>> =
            tasks.into_iter().map(|t| Some(erase(t))).collect();
        let total = erased.len();
        {
            let mut queue = lock(&self.shared.queue);
            queue.epoch = queue.epoch.wrapping_add(1);
            queue.tasks = erased;
            queue.next = 0;
            queue.pending = total;
            queue.panic = None;
        }
        self.shared
            .rounds_dispatched
            .fetch_add(1, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
        // The caller is a lane too: claim tasks until the queue is empty,
        // so a round never waits on a worker the OS has not scheduled yet.
        loop {
            let (index, task) = {
                let mut queue = lock(&self.shared.queue);
                if queue.next >= queue.tasks.len() {
                    break;
                }
                let index = queue.next;
                queue.next += 1;
                let task = queue.tasks[index].take().expect("unclaimed task present");
                (index, task)
            };
            run_task(&self.shared, index, task);
        }
        // The barrier: tasks the workers claimed may still be running.
        let panic = {
            let mut queue = lock(&self.shared.queue);
            while queue.pending > 0 {
                queue = wait(&self.shared.round_done, queue);
            }
            queue.tasks.clear();
            queue.panic.take()
        };
        drop(_gate);
        if let Some((_, payload)) = panic {
            resume_unwind(payload);
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for WorkerPool {
    /// Parks no ghost threads: signals shutdown and joins every worker.
    fn drop(&mut self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Erases a round task's borrow lifetime so it can sit in the pool's
/// `'static` queue.
///
/// # Safety
///
/// Sound only because [`WorkerPool::dispatch`] does not return until every
/// enqueued task has been executed and dropped (the round barrier), so the
/// erased closure — and everything it borrows from the caller's stack — is
/// gone before the borrows it captures can expire. This is the same
/// contract scoped-thread APIs enforce with a join; the barrier is our
/// join. Panic payloads cannot smuggle borrows out: `panic_any` requires a
/// `'static` payload.
#[allow(unsafe_code)]
fn erase<'env>(task: Task<'env>) -> Task<'static> {
    // SAFETY: see the function docs — the barrier in `dispatch` outlives
    // every use of the erased closure. `Box<dyn FnOnce() + Send>` has the
    // same layout for any trait-object lifetime bound.
    unsafe { std::mem::transmute::<Task<'env>, Task<'static>>(task) }
}

/// Runs one claimed task outside the lock, then updates the barrier.
fn run_task(shared: &Shared, index: usize, task: Task<'static>) {
    let outcome = catch_unwind(AssertUnwindSafe(task));
    let mut queue = lock(&shared.queue);
    if let Err(payload) = outcome {
        let keep = match &queue.panic {
            None => true,
            Some((lowest, _)) => index < *lowest,
        };
        if keep {
            queue.panic = Some((index, payload));
        }
    }
    queue.pending -= 1;
    if queue.pending == 0 {
        shared.round_done.notify_all();
    }
}

/// A worker: park until a round arrives, claim tasks until the queue
/// drains, park again. Exits when the pool shuts down.
fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (index, task) = {
            let mut queue = lock(&shared.queue);
            loop {
                if queue.next < queue.tasks.len() {
                    break;
                }
                if queue.shutdown {
                    return;
                }
                queue = wait(&shared.work_ready, queue);
            }
            if queue.epoch != seen_epoch {
                seen_epoch = queue.epoch;
                shared.worker_wakeups.fetch_add(1, Ordering::Relaxed);
            }
            let index = queue.next;
            queue.next += 1;
            let task = queue.tasks[index].take().expect("unclaimed task present");
            (index, task)
        };
        run_task(shared, index, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn width_one_pool_runs_inline_and_spawns_nothing() {
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let mut items = vec![0u8; 5];
        pool.round(&mut items, |x| {
            assert_eq!(std::thread::current().id(), caller);
            *x += 1;
        });
        assert_eq!(items, vec![1; 5]);
        let stats = pool.stats();
        assert_eq!(stats.workers, 0);
        assert_eq!(stats.rounds_dispatched, 0);
        assert_eq!(stats.spawnless_rounds, 1);
        assert_eq!(stats.worker_wakeups, 0);
    }

    #[test]
    fn single_task_rounds_stay_on_the_caller_even_on_wide_pools() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let mut items = vec![0u64];
        pool.round(&mut items, |x| {
            assert_eq!(std::thread::current().id(), caller);
            *x = 7;
        });
        assert_eq!(items, vec![7]);
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.rounds_dispatched, 0);
        assert_eq!(stats.spawnless_rounds, 1);
        assert_eq!(stats.worker_wakeups, 0);
    }

    #[test]
    fn dispatched_round_runs_every_task_exactly_once_before_returning() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let mut items: Vec<u64> = (0..64).collect();
        pool.round(&mut items, |x| {
            hits.fetch_add(1, Ordering::Relaxed);
            *x *= 2;
        });
        // The barrier: by the time `round` returns, all effects are visible.
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(items, (0..64).map(|x| x * 2).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.rounds_dispatched, 1);
        assert_eq!(stats.spawnless_rounds, 0);
        assert!(
            stats.worker_wakeups <= stats.workers,
            "at most one wakeup per worker per round: {stats:?}"
        );
    }

    #[test]
    fn many_rounds_reuse_the_same_workers() {
        let pool = WorkerPool::new(3);
        let before = pool.stats().workers;
        for round in 0..50 {
            let mut items = vec![round as u64; 6];
            pool.round(&mut items, |x| {
                *x += 1;
            });
        }
        let stats = pool.stats();
        assert_eq!(stats.workers, before, "worker count never grows");
        assert_eq!(stats.rounds_dispatched, 50);
        assert!(stats.worker_wakeups <= 50 * stats.workers);
    }

    #[test]
    fn run_round_executes_heterogeneous_tasks() {
        let pool = WorkerPool::new(2);
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        pool.run_round(vec![
            Box::new(|| {
                a.store(1, Ordering::Relaxed);
            }),
            Box::new(|| {
                b.store(2, Ordering::Relaxed);
            }),
        ]);
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(b.load(Ordering::Relaxed), 2);
        assert_eq!(pool.stats().rounds_dispatched, 1);
    }

    #[test]
    fn empty_rounds_are_free() {
        let pool = WorkerPool::new(4);
        pool.round(&mut Vec::<u8>::new(), |_| {});
        pool.run_round(Vec::new());
        assert_eq!(
            pool.stats(),
            PoolStats {
                workers: 3,
                ..PoolStats::default()
            }
        );
    }

    #[test]
    fn panicking_task_does_not_break_the_barrier() {
        let pool = WorkerPool::new(4);
        let survivors = AtomicUsize::new(0);
        let mut items: Vec<usize> = (0..8).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.round(&mut items, |i| {
                if *i == 3 {
                    panic!("task 3 exploded");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = outcome.expect_err("panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(message, "task 3 exploded");
        // Every other task still ran: the barrier completed the round.
        assert_eq!(survivors.load(Ordering::Relaxed), 7);
        // The pool is healthy afterwards.
        let mut again = vec![0u64; 4];
        pool.round(&mut again, |x| {
            *x = 9;
        });
        assert_eq!(again, vec![9; 4]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        // One task per lane so both panicking chunks are distinct tasks.
        let pool = WorkerPool::new(4);
        for _ in 0..8 {
            let mut items: Vec<usize> = (0..4).collect();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                pool.round(&mut items, |i| {
                    if *i == 1 {
                        panic!("one");
                    }
                    if *i == 2 {
                        panic!("two");
                    }
                });
            }));
            let payload = outcome.expect_err("panic must propagate");
            let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(message, "one", "deterministically the lowest task index");
        }
    }

    #[test]
    fn concurrent_callers_serialize_rounds() {
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let mut items = vec![1usize; 5];
                        pool.round(&mut items, |x| {
                            total.fetch_add(*x, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 3 * 20 * 5);
        assert_eq!(pool.stats().rounds_dispatched, 60);
    }

    #[test]
    fn borrowed_state_survives_the_round() {
        // The lifetime-erasure contract exercised directly: tasks borrow the
        // caller's stack, and the barrier returns them before `round` does.
        let pool = WorkerPool::new(3);
        let local = [1u64, 2, 3, 4, 5, 6];
        let sum = AtomicU64::new(0);
        let mut indices: Vec<usize> = (0..local.len()).collect();
        pool.round(&mut indices, |i| {
            sum.fetch_add(local[*i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn width_is_clamped_and_reported() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.width(), 1);
        assert_eq!(pool.stats().workers, 0);
        assert_eq!(WorkerPool::new(5).width(), 5);
        assert!(WorkerPool::with_available_parallelism().width() >= 1);
    }
}
