//! # wnw-runtime — persistent round-barrier worker pool
//!
//! The engine's schedule is a sequence of **rounds**: a batch of independent
//! tasks (one per live walker, or one per repetition chunk) that must *all*
//! complete before the next phase may start. Before this crate, every such
//! round spawned and joined fresh OS threads through [`std::thread::scope`]
//! — a service interleaving many jobs paid thread-creation cost on every
//! round of every job. [`WorkerPool`] replaces that with threads spawned
//! **once**: `width - 1` parked workers plus the calling thread execute each
//! round's batch, and a condition-variable barrier makes `run_round` return
//! only after every task of the round has finished. After pool startup, the
//! hot path never calls `thread::spawn` again.
//!
//! Design points, in the order they matter:
//!
//! * **Barrier-precise.** A round's tasks are claimed from one shared queue
//!   (no work stealing); the submitting call blocks until the last task
//!   completes. Phase semantics are exactly those of the scoped-spawn code
//!   it replaces, so the engine's determinism argument — per-request sample
//!   multisets invariant to pool width and co-load — carries over verbatim:
//!   the pool decides only *where* a task runs, never what it computes.
//! * **Inline fast path.** A width-1 pool spawns no threads at all, and any
//!   round with a single task runs on the caller — a 1-walker job, or a job
//!   winding down to its last live walker, never touches the workers. These
//!   rounds are counted in [`PoolStats::spawnless_rounds`].
//! * **Panic containment.** Every task runs under `catch_unwind`; a
//!   panicking task never breaks the barrier. After the round completes, the
//!   payload of the lowest-indexed panicking task is resumed on the caller
//!   (lowest for determinism, mirroring the engine's per-walker rule).
//! * **Instrumented.** [`PoolStats`] counts dispatched vs spawnless rounds
//!   and worker wakeups, surfaced by `wnw-service` through
//!   `ServiceMetricsSnapshot` and the gateway's `GET /v1/metrics`.
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use wnw_runtime::WorkerPool;
//!
//! let pool = WorkerPool::new(4); // 3 parked workers + the caller
//! let hits = AtomicUsize::new(0);
//! let mut items = vec![0u64; 8];
//! pool.round(&mut items, |x| {
//!     *x += 1;
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! // The barrier guarantees every task ran before `round` returned.
//! assert_eq!(hits.load(Ordering::Relaxed), 8);
//! assert_eq!(pool.stats().rounds_dispatched, 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod pool;

pub use pool::{PoolStats, Task, WorkerPool};
