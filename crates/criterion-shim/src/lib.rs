//! A minimal, dependency-free benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this drop-in: the dev-dependency is declared as
//! `criterion = { package = "wnw-criterion-shim", path = ... }`, which lets
//! every bench keep its `use criterion::{criterion_group, ...}` lines
//! unchanged. It is not a statistics engine — it runs each routine for the
//! configured sample count (bounded by the measurement time) and prints the
//! minimum, median, and mean wall-clock time per iteration. Swap the
//! dependency for the real crate when building with network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export used by benches to defeat constant folding. `std::hint` is
/// enough for the coarse timing this shim does.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Accepted for API compatibility; this shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (routine invocations) per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim has a single sampling mode.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target: self.sample_size,
        };
        f(&mut bencher);
        let mut times = bencher.samples;
        if times.is_empty() {
            eprintln!("  {}/{id}: no samples", self.name);
            return;
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        eprintln!(
            "  {}/{id}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
            self.name,
            times.len()
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Sampling modes, accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Criterion's automatic choice.
    Auto,
    /// One iteration per sample.
    Flat,
    /// Linearly increasing iteration counts.
    Linear,
}

/// Timer handle passed to the closure of a benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    target: usize,
}

impl Bencher {
    /// Times `routine` repeatedly — once per sample, until the sample target
    /// or the time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for _ in 0..self.target {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(200));
        let mut runs = 0;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn macros_compose() {
        fn bench(c: &mut Criterion) {
            c.benchmark_group("m")
                .sample_size(1)
                .bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, bench);
        benches();
    }
}
